//! Binary PPM (P6) import/export.
//!
//! The one image format every viewer understands — handy for eyeballing
//! synthetic samples and codec artifacts (`RasterImage::to_ppm` →
//! `display out.ppm`).

use crate::{ImageError, RasterImage};

/// Serializes the image as binary PPM (P6, maxval 255).
pub fn to_ppm(img: &RasterImage) -> Vec<u8> {
    let header = format!("P6\n{} {}\n255\n", img.width(), img.height());
    let mut out = Vec::with_capacity(header.len() + img.raw_len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(img.as_raw());
    out
}

/// Errors from PPM parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PpmError {
    /// Missing `P6` magic.
    BadMagic,
    /// Header fields missing or malformed.
    BadHeader,
    /// Only maxval 255 is supported.
    UnsupportedMaxval(u32),
    /// Pixel data shorter than the header promises.
    Truncated,
    /// Image construction failed (dimension overflow).
    Image(ImageError),
}

impl std::fmt::Display for PpmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PpmError::BadMagic => write!(f, "not a binary PPM (missing P6 magic)"),
            PpmError::BadHeader => write!(f, "malformed PPM header"),
            PpmError::UnsupportedMaxval(v) => write!(f, "unsupported PPM maxval {v}"),
            PpmError::Truncated => write!(f, "PPM pixel data truncated"),
            PpmError::Image(e) => write!(f, "invalid PPM dimensions: {e}"),
        }
    }
}

impl std::error::Error for PpmError {}

/// Parses a binary PPM (P6, maxval 255), tolerating comments and arbitrary
/// whitespace in the header.
///
/// # Errors
///
/// Returns a [`PpmError`] describing the first defect.
pub fn from_ppm(data: &[u8]) -> Result<RasterImage, PpmError> {
    if data.len() < 2 || &data[..2] != b"P6" {
        return Err(PpmError::BadMagic);
    }
    let mut pos = 2usize;
    let mut fields = [0u32; 3];
    for field in &mut fields {
        *field = parse_header_int(data, &mut pos)?;
    }
    let [width, height, maxval] = fields;
    if maxval != 255 {
        return Err(PpmError::UnsupportedMaxval(maxval));
    }
    // Exactly one whitespace byte separates the header from pixel data.
    pos += 1;
    let len = (width as usize)
        .checked_mul(height as usize)
        .and_then(|p| p.checked_mul(3))
        .ok_or(PpmError::BadHeader)?;
    let pixels = data.get(pos..pos + len).ok_or(PpmError::Truncated)?;
    RasterImage::from_raw(width, height, pixels.to_vec()).map_err(PpmError::Image)
}

/// Reads one whitespace/comment-delimited decimal integer.
fn parse_header_int(data: &[u8], pos: &mut usize) -> Result<u32, PpmError> {
    // Skip whitespace and comment lines.
    loop {
        match data.get(*pos) {
            Some(b) if b.is_ascii_whitespace() => *pos += 1,
            Some(b'#') => {
                while let Some(&b) = data.get(*pos) {
                    *pos += 1;
                    if b == b'\n' {
                        break;
                    }
                }
            }
            Some(_) => break,
            None => return Err(PpmError::BadHeader),
        }
    }
    let start = *pos;
    while data.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if *pos == start || *pos - start > 9 {
        return Err(PpmError::BadHeader);
    }
    std::str::from_utf8(&data[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or(PpmError::BadHeader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthSpec;
    use crate::Rgb;

    #[test]
    fn roundtrip() {
        let img = SynthSpec::new(33, 21).complexity(0.6).render(4);
        let ppm = to_ppm(&img);
        assert_eq!(from_ppm(&ppm).unwrap(), img);
    }

    #[test]
    fn header_format() {
        let img = RasterImage::filled(2, 3, Rgb::new(1, 2, 3));
        let ppm = to_ppm(&img);
        assert!(ppm.starts_with(b"P6\n2 3\n255\n"));
        assert_eq!(ppm.len(), 11 + 18);
    }

    #[test]
    fn comments_are_skipped() {
        let mut data = b"P6\n# made by a test\n2 1\n# another\n255\n".to_vec();
        data.extend_from_slice(&[9, 8, 7, 6, 5, 4]);
        let img = from_ppm(&data).unwrap();
        assert_eq!((img.width(), img.height()), (2, 1));
        assert_eq!(img.pixel(0, 0), Rgb::new(9, 8, 7));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(from_ppm(b"P5\n1 1\n255\nxxx"), Err(PpmError::BadMagic));
        assert_eq!(from_ppm(b"P6\n1 1\n65535\n"), Err(PpmError::UnsupportedMaxval(65535)));
        assert_eq!(from_ppm(b"P6\n2 2\n255\nxx"), Err(PpmError::Truncated));
        assert_eq!(from_ppm(b"P6\n\n"), Err(PpmError::BadHeader));
    }

    #[test]
    fn fuzz_never_panics() {
        let mut state = 7u64;
        for len in 0..120usize {
            let buf: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33) as u8
                })
                .collect();
            let _ = from_ppm(&buf);
        }
    }
}
