//! Image quality metrics: MSE and PSNR.
//!
//! Used throughout the workspace's tests to bound codec reconstruction
//! error, and by anyone tuning `codec` quality/subsampling trade-offs.

use crate::RasterImage;

/// Mean squared error between two images of identical dimensions.
///
/// # Panics
///
/// Panics when the dimensions differ.
pub fn mse(a: &RasterImage, b: &RasterImage) -> f64 {
    assert_eq!((a.width(), a.height()), (b.width(), b.height()), "mse requires equal dimensions");
    let sum: u64 = a
        .as_raw()
        .iter()
        .zip(b.as_raw().iter())
        .map(|(&x, &y)| {
            let d = i64::from(x) - i64::from(y);
            (d * d) as u64
        })
        .sum();
    sum as f64 / a.raw_len() as f64
}

/// Peak signal-to-noise ratio in decibels; `f64::INFINITY` for identical
/// images.
///
/// # Panics
///
/// Panics when the dimensions differ.
pub fn psnr(a: &RasterImage, b: &RasterImage) -> f64 {
    let e = mse(a, b);
    if e == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / e).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthSpec;
    use crate::Rgb;

    #[test]
    fn identical_images_have_infinite_psnr() {
        let img = SynthSpec::new(32, 32).complexity(0.5).render(1);
        assert_eq!(mse(&img, &img), 0.0);
        assert_eq!(psnr(&img, &img), f64::INFINITY);
    }

    #[test]
    fn known_mse() {
        let a = RasterImage::filled(4, 4, Rgb::gray(100));
        let b = RasterImage::filled(4, 4, Rgb::gray(110));
        assert_eq!(mse(&a, &b), 100.0);
        let p = psnr(&a, &b);
        assert!((p - 28.13).abs() < 0.01, "psnr {p}");
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn dimension_mismatch_panics() {
        let a = RasterImage::filled(4, 4, Rgb::BLACK);
        let b = RasterImage::filled(4, 5, Rgb::BLACK);
        let _ = mse(&a, &b);
    }

    #[test]
    fn psnr_orders_quality() {
        // Higher codec quality must yield higher PSNR.
        let img = SynthSpec::new(64, 64).complexity(0.5).render(3);
        let lo = codec_roundtrip(&img, 30);
        let hi = codec_roundtrip(&img, 95);
        assert!(psnr(&img, &hi) > psnr(&img, &lo));
    }

    // Local helper to avoid a dev-dependency cycle: inline re-encode via the
    // public codec API is not available here (imagery is below codec), so we
    // emulate lossy reconstruction with quantization noise.
    fn codec_roundtrip(img: &RasterImage, quality: u8) -> RasterImage {
        // Coarser quantization for lower quality.
        let step = (105 - i32::from(quality)).max(1) as f32 / 10.0;
        let data = img
            .as_raw()
            .iter()
            .map(|&v| ((f32::from(v) / step).round() * step).clamp(0.0, 255.0) as u8)
            .collect();
        RasterImage::from_raw(img.width(), img.height(), data).expect("same dims")
    }
}
