use std::fmt;

/// Errors produced by image construction and geometric operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImageError {
    /// The requested dimensions are zero or would overflow the buffer size.
    InvalidDimensions {
        /// Requested width in pixels.
        width: u32,
        /// Requested height in pixels.
        height: u32,
    },
    /// The provided pixel buffer does not match `width * height * 3`.
    BufferSizeMismatch {
        /// Number of bytes the caller provided.
        got: usize,
        /// Number of bytes required by the dimensions.
        expected: usize,
    },
    /// A crop rectangle does not fit inside the source image.
    CropOutOfBounds {
        /// The offending rectangle.
        rect: crate::Rect,
        /// Source image width.
        width: u32,
        /// Source image height.
        height: u32,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::InvalidDimensions { width, height } => {
                write!(f, "invalid image dimensions {width}x{height}")
            }
            ImageError::BufferSizeMismatch { got, expected } => {
                write!(f, "pixel buffer has {got} bytes, expected {expected}")
            }
            ImageError::CropOutOfBounds { rect, width, height } => {
                write!(f, "crop rectangle {rect:?} does not fit in {width}x{height} image")
            }
        }
    }
}

impl std::error::Error for ImageError {}
