//! Raster images, float tensors, and synthetic image generation.
//!
//! This crate is the lowest substrate of the SOPHON reproduction. It provides:
//!
//! * [`RasterImage`] — an 8-bit interleaved RGB raster with the geometric
//!   operations the preprocessing pipeline needs (crop, bilinear resize,
//!   horizontal flip).
//! * [`Tensor`] — a CHW `f32` tensor, the output format of `ToTensor` /
//!   `Normalize`.
//! * [`synth`] — deterministic synthetic image generators with a tunable
//!   *complexity* knob. Complexity controls high-frequency content, which in
//!   turn controls how well the `codec` crate's DCT codec compresses the
//!   image; this is what makes per-sample encoded sizes realistically varied.
//!
//! # Example
//!
//! ```
//! use imagery::{synth::SynthSpec, RasterImage};
//!
//! let spec = SynthSpec::new(640, 480).complexity(0.5);
//! let img: RasterImage = spec.render(42);
//! assert_eq!((img.width(), img.height()), (640, 480));
//! let cropped = img.crop(imagery::Rect::new(10, 10, 224, 224)).unwrap();
//! let resized = cropped.resize_bilinear(224, 224);
//! assert_eq!(resized.raw_len(), 224 * 224 * 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjust;
mod color;
mod error;
mod geometry;
mod image;
pub mod metrics;
pub mod ppm;
pub mod synth;
mod tensor;

pub use color::Rgb;
pub use error::ImageError;
pub use geometry::Rect;
pub use image::RasterImage;
pub use tensor::{Tensor, IMAGENET_MEAN, IMAGENET_STD};

/// Number of color channels in every image and tensor in this workspace.
pub const CHANNELS: usize = 3;
