/// An axis-aligned rectangle in pixel coordinates.
///
/// Used to describe crop regions. The rectangle is anchored at `(x, y)` (top
/// left) and spans `width × height` pixels.
///
/// ```
/// use imagery::Rect;
/// let r = Rect::new(4, 8, 100, 50);
/// assert_eq!(r.area(), 5000);
/// assert!(r.fits_in(200, 100));
/// assert!(!r.fits_in(100, 50));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Left edge, in pixels from the image's left border.
    pub x: u32,
    /// Top edge, in pixels from the image's top border.
    pub y: u32,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl Rect {
    /// Creates a rectangle anchored at `(x, y)` spanning `width × height`.
    pub const fn new(x: u32, y: u32, width: u32, height: u32) -> Self {
        Rect { x, y, width, height }
    }

    /// A rectangle covering an entire `width × height` image.
    pub const fn full(width: u32, height: u32) -> Self {
        Rect { x: 0, y: 0, width, height }
    }

    /// Area in pixels.
    pub fn area(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// Returns `true` when the rectangle lies fully inside a `width × height`
    /// image (and is non-empty).
    pub fn fits_in(&self, width: u32, height: u32) -> bool {
        self.width > 0
            && self.height > 0
            && self.x.checked_add(self.width).is_some_and(|r| r <= width)
            && self.y.checked_add(self.height).is_some_and(|b| b <= height)
    }

    /// Aspect ratio (width / height) as `f64`.
    ///
    /// Returns `f64::INFINITY` for zero-height rectangles.
    pub fn aspect_ratio(&self) -> f64 {
        f64::from(self.width) / f64::from(self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_covers_image() {
        let r = Rect::full(640, 480);
        assert!(r.fits_in(640, 480));
        assert_eq!(r.area(), 640 * 480);
    }

    #[test]
    fn empty_rect_never_fits() {
        assert!(!Rect::new(0, 0, 0, 10).fits_in(100, 100));
        assert!(!Rect::new(0, 0, 10, 0).fits_in(100, 100));
    }

    #[test]
    fn out_of_bounds_detected() {
        assert!(!Rect::new(90, 0, 20, 10).fits_in(100, 100));
        assert!(!Rect::new(0, 95, 10, 10).fits_in(100, 100));
        // Overflowing coordinates must not panic.
        assert!(!Rect::new(u32::MAX, 0, 2, 2).fits_in(100, 100));
    }

    #[test]
    fn aspect_ratio_simple() {
        assert_eq!(Rect::new(0, 0, 200, 100).aspect_ratio(), 2.0);
    }
}
