/// An 8-bit RGB color value.
///
/// `Rgb` is a plain value type used when reading or writing single pixels and
/// when specifying fill colors for the synthetic generators.
///
/// ```
/// use imagery::Rgb;
/// let c = Rgb::new(10, 20, 30);
/// assert_eq!(c.luma(), (10 * 299 + 20 * 587 + 30 * 114) / 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// Pure black, the default fill color.
    pub const BLACK: Rgb = Rgb { r: 0, g: 0, b: 0 };
    /// Pure white.
    pub const WHITE: Rgb = Rgb { r: 255, g: 255, b: 255 };

    /// Creates a color from its three channels.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Creates a gray value with all three channels equal.
    pub const fn gray(v: u8) -> Self {
        Rgb { r: v, g: v, b: v }
    }

    /// Integer Rec. 601 luma approximation in `0..=255`.
    pub fn luma(self) -> u32 {
        (u32::from(self.r) * 299 + u32::from(self.g) * 587 + u32::from(self.b) * 114) / 1000
    }

    /// Linear interpolation between `self` and `other`; `t` is clamped to `[0, 1]`.
    pub fn lerp(self, other: Rgb, t: f32) -> Rgb {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| -> u8 {
            (f32::from(a) + (f32::from(b) - f32::from(a)) * t).round() as u8
        };
        Rgb::new(mix(self.r, other.r), mix(self.g, other.g), mix(self.b, other.b))
    }
}

impl From<[u8; 3]> for Rgb {
    fn from(v: [u8; 3]) -> Self {
        Rgb::new(v[0], v[1], v[2])
    }
}

impl From<Rgb> for [u8; 3] {
    fn from(c: Rgb) -> Self {
        [c.r, c.g, c.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luma_extremes() {
        assert_eq!(Rgb::BLACK.luma(), 0);
        assert_eq!(Rgb::WHITE.luma(), 255);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Rgb::new(0, 100, 200);
        let b = Rgb::new(255, 0, 50);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn lerp_clamps() {
        let a = Rgb::BLACK;
        let b = Rgb::WHITE;
        assert_eq!(a.lerp(b, -3.0), a);
        assert_eq!(a.lerp(b, 7.0), b);
    }

    #[test]
    fn array_roundtrip() {
        let c = Rgb::new(1, 2, 3);
        let arr: [u8; 3] = c.into();
        assert_eq!(Rgb::from(arr), c);
    }

    #[test]
    fn gray_is_uniform() {
        let g = Rgb::gray(77);
        assert_eq!((g.r, g.g, g.b), (77, 77, 77));
    }
}
