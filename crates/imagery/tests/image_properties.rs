//! Property tests for the imagery primitives.

use imagery::synth::{Pattern, SynthSpec};
use imagery::{metrics, ppm, RasterImage, Rect, Tensor};
use proptest::prelude::*;

fn arb_image() -> impl Strategy<Value = RasterImage> {
    (1u32..120, 1u32..120, 0f64..=1.0, any::<u64>(), 0u8..4).prop_map(|(w, h, c, seed, pat)| {
        let pattern = match pat {
            0 => Pattern::Gradient,
            1 => Pattern::Stripes,
            2 => Pattern::Checker,
            _ => Pattern::Radial,
        };
        SynthSpec::new(w, h).complexity(c).pattern(pattern).render(seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Flip is an involution for arbitrary content.
    #[test]
    fn flip_involution(img in arb_image()) {
        prop_assert_eq!(img.flip_horizontal().flip_horizontal(), img);
    }

    /// Cropping then the raw length always matches the rectangle.
    #[test]
    fn crop_size_exact(img in arb_image()) {
        let w = img.width();
        let h = img.height();
        let rect = Rect::new(0, 0, w.div_ceil(2), h.div_ceil(2));
        let cropped = img.crop(rect).unwrap();
        prop_assert_eq!(cropped.raw_len() as u64, rect.area() * 3);
    }

    /// Resizing to any target yields exactly the target's raw length, and a
    /// second resize back keeps values within the valid byte range (trivially
    /// true, but exercises the interpolator across shapes).
    #[test]
    fn resize_dimensions_exact(img in arb_image(), tw in 1u32..96, th in 1u32..96) {
        let out = img.resize_bilinear(tw, th);
        prop_assert_eq!((out.width(), out.height()), (tw, th));
        prop_assert_eq!(out.raw_len(), tw as usize * th as usize * 3);
    }

    /// PPM roundtrips bit-exactly for arbitrary images.
    #[test]
    fn ppm_roundtrip(img in arb_image()) {
        prop_assert_eq!(ppm::from_ppm(&ppm::to_ppm(&img)).unwrap(), img);
    }

    /// Tensor serialization roundtrips bit-exactly.
    #[test]
    fn tensor_bytes_roundtrip(img in arb_image()) {
        let t = Tensor::from_image(&img);
        let back = Tensor::from_le_bytes(t.width(), t.height(), &t.to_le_bytes()).unwrap();
        prop_assert_eq!(back, t);
    }

    /// PSNR is symmetric and identical images score infinitely.
    #[test]
    fn psnr_symmetry(img in arb_image(), seed in any::<u64>()) {
        let other = SynthSpec::new(img.width(), img.height()).complexity(0.5).render(seed);
        prop_assert_eq!(metrics::mse(&img, &other), metrics::mse(&other, &img));
        prop_assert_eq!(metrics::psnr(&img, &img), f64::INFINITY);
    }

    /// Photometric adjustments preserve dimensions and the identity factor
    /// is (near-)lossless.
    #[test]
    fn adjustments_well_behaved(img in arb_image(), factor in 0.0f32..2.0) {
        for out in [
            img.adjust_brightness(factor),
            img.adjust_saturation(factor),
            img.adjust_contrast(factor),
            img.to_grayscale(),
        ] {
            prop_assert_eq!((out.width(), out.height()), (img.width(), img.height()));
        }
        let identity = img.adjust_brightness(1.0);
        prop_assert_eq!(identity, img.clone());
    }

    /// Grayscale is idempotent (up to rounding of the already-gray values).
    #[test]
    fn grayscale_idempotent(img in arb_image()) {
        let once = img.to_grayscale();
        let twice = once.to_grayscale();
        for (a, b) in once.as_raw().iter().zip(twice.as_raw().iter()) {
            prop_assert!(a.abs_diff(*b) <= 1);
        }
    }
}
