//! Mel filterbank and log-mel spectrogram features.

use serde::{Deserialize, Serialize};

use crate::fft::{power_spectrum, FftError};
use crate::Waveform;

/// Errors from mel feature extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MelError {
    /// A filterbank needs at least one filter.
    ZeroMels,
    /// The FFT size must be a power of two.
    BadFftSize {
        /// The rejected size.
        n_fft: usize,
    },
    /// A sample rate of zero makes the Nyquist limit undefined.
    ZeroSampleRate,
    /// A hop of zero would never advance between frames.
    ZeroHop,
    /// The waveform is shorter than one analysis frame.
    FrameTooShort {
        /// Samples available.
        len: usize,
        /// Samples one frame needs.
        n_fft: usize,
    },
    /// The FFT kernel rejected a frame.
    Fft(FftError),
}

impl std::fmt::Display for MelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MelError::ZeroMels => write!(f, "need at least one mel filter"),
            MelError::BadFftSize { n_fft } => {
                write!(f, "n_fft must be a power of two, got {n_fft}")
            }
            MelError::ZeroSampleRate => write!(f, "sample rate must be positive"),
            MelError::ZeroHop => write!(f, "hop must be positive"),
            MelError::FrameTooShort { len, n_fft } => {
                write!(f, "waveform of {len} samples is shorter than one {n_fft}-sample frame")
            }
            MelError::Fft(e) => write!(f, "FFT failed: {e}"),
        }
    }
}

impl std::error::Error for MelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MelError::Fft(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FftError> for MelError {
    fn from(e: FftError) -> MelError {
        MelError::Fft(e)
    }
}

/// Hz → mel (HTK convention).
pub fn hz_to_mel(hz: f64) -> f64 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Mel → Hz (HTK convention).
pub fn mel_to_hz(mel: f64) -> f64 {
    700.0 * (10f64.powf(mel / 2595.0) - 1.0)
}

/// Triangular mel filterbank: `n_mels` filters over `n_fft/2 + 1` bins.
///
/// # Errors
///
/// [`MelError`] for degenerate parameters (zero filters, zero rate, `n_fft`
/// not a power of two).
pub fn filterbank(
    n_mels: usize,
    n_fft: usize,
    sample_rate: u32,
) -> Result<Vec<Vec<f64>>, MelError> {
    if n_mels == 0 {
        return Err(MelError::ZeroMels);
    }
    if !n_fft.is_power_of_two() {
        return Err(MelError::BadFftSize { n_fft });
    }
    if sample_rate == 0 {
        return Err(MelError::ZeroSampleRate);
    }
    let n_bins = n_fft / 2 + 1;
    let f_max = f64::from(sample_rate) / 2.0;
    let mel_max = hz_to_mel(f_max);
    // n_mels + 2 equally spaced mel points.
    let points: Vec<f64> =
        (0..n_mels + 2).map(|i| mel_to_hz(mel_max * i as f64 / (n_mels + 1) as f64)).collect();
    let bin_of = |hz: f64| hz / f_max * (n_bins - 1) as f64;
    Ok((0..n_mels)
        .map(|m| {
            let (lo, mid, hi) = (bin_of(points[m]), bin_of(points[m + 1]), bin_of(points[m + 2]));
            (0..n_bins)
                .map(|b| {
                    let b = b as f64;
                    if b < lo || b > hi {
                        0.0
                    } else if b <= mid {
                        (b - lo) / (mid - lo).max(1e-9)
                    } else {
                        (hi - b) / (hi - mid).max(1e-9)
                    }
                })
                .collect()
        })
        .collect())
}

/// A log-mel spectrogram: `n_mels × frames` features, stored frame-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Spectrogram {
    n_mels: usize,
    frames: usize,
    data: Vec<f32>,
}

impl Spectrogram {
    /// Number of mel bands.
    pub fn n_mels(&self) -> usize {
        self.n_mels
    }

    /// Number of time frames.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Byte size when transferred (`4` bytes per value).
    pub fn byte_len(&self) -> usize {
        self.data.len() * 4
    }

    /// The value at `(mel, frame)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn get(&self, mel: usize, frame: usize) -> f32 {
        assert!(mel < self.n_mels && frame < self.frames);
        self.data[frame * self.n_mels + mel]
    }

    /// Flat frame-major values.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Standardizes all values in place to zero mean, unit variance.
    pub fn normalize(&mut self) {
        let n = self.data.len() as f64;
        let mean = self.data.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
        let var = self.data.iter().map(|&v| (f64::from(v) - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt().max(1e-9);
        for v in &mut self.data {
            *v = ((f64::from(*v) - mean) / std) as f32;
        }
    }
}

/// Computes the log-mel spectrogram of a waveform.
///
/// Frames of `n_fft` samples advance by `hop`; each frame is Hann-windowed,
/// transformed, pooled through the mel filterbank, and log-compressed.
///
/// # Errors
///
/// [`MelError`] for degenerate parameters or a waveform shorter than one
/// frame.
pub fn mel_spectrogram(
    w: &Waveform,
    n_fft: usize,
    hop: usize,
    n_mels: usize,
) -> Result<Spectrogram, MelError> {
    if hop == 0 {
        return Err(MelError::ZeroHop);
    }
    if w.len() < n_fft {
        return Err(MelError::FrameTooShort { len: w.len(), n_fft });
    }
    let bank = filterbank(n_mels, n_fft, w.sample_rate())?;
    let window: Vec<f64> = (0..n_fft)
        .map(|i| 0.5 - 0.5 * (2.0 * std::f64::consts::PI * i as f64 / (n_fft - 1) as f64).cos())
        .collect();
    let n_frames = (w.len() - n_fft) / hop + 1;
    let mut data = Vec::with_capacity(n_frames * n_mels);
    let samples = w.samples();
    let mut frame_buf = vec![0f64; n_fft];
    for f in 0..n_frames {
        let start = f * hop;
        for (i, b) in frame_buf.iter_mut().enumerate() {
            *b = f64::from(samples[start + i]) / 32768.0 * window[i];
        }
        let spec = power_spectrum(&frame_buf)?;
        for filt in &bank {
            let energy: f64 = filt.iter().zip(spec.iter()).map(|(a, b)| a * b).sum();
            data.push((energy + 1e-10).ln() as f32);
        }
    }
    Ok(Spectrogram { n_mels, frames: n_frames, data })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthAudioSpec;

    #[test]
    fn mel_scale_roundtrips() {
        for hz in [0.0, 100.0, 1000.0, 8000.0] {
            assert!((mel_to_hz(hz_to_mel(hz)) - hz).abs() < 1e-6);
        }
    }

    #[test]
    fn filterbank_covers_spectrum() {
        let bank = filterbank(40, 512, 16_000).unwrap();
        assert_eq!(bank.len(), 40);
        assert_eq!(bank[0].len(), 257);
        // Every filter has some mass; interior bins are covered by some filter.
        for (m, filt) in bank.iter().enumerate() {
            assert!(filt.iter().sum::<f64>() > 0.0, "filter {m} empty");
        }
        let coverage: Vec<f64> = (0..257).map(|b| bank.iter().map(|f| f[b]).sum::<f64>()).collect();
        let uncovered = coverage[2..250].iter().filter(|&&c| c == 0.0).count();
        assert!(uncovered < 5, "{uncovered} interior bins uncovered");
    }

    #[test]
    fn spectrogram_shape_and_size() {
        let w = SynthAudioSpec::new(16_000, 1.0).render(1); // 16 000 samples
        let s = mel_spectrogram(&w, 512, 256, 64).unwrap();
        assert_eq!(s.n_mels(), 64);
        assert_eq!(s.frames(), (16_000 - 512) / 256 + 1);
        assert_eq!(s.byte_len(), s.n_mels() * s.frames() * 4);
        // Feature bytes are far below PCM bytes — the audio pipeline's
        // SOPHON opportunity.
        assert!(s.byte_len() < w.byte_len());
    }

    #[test]
    fn tone_lights_up_the_right_band() {
        // 1 kHz tone at 16 kHz: energy in the filter whose center is nearest
        // 1 kHz, not in the top band.
        let sr = 16_000u32;
        let samples: Vec<i16> = (0..16_000)
            .map(|i| {
                ((2.0 * std::f64::consts::PI * 1000.0 * i as f64 / f64::from(sr)).sin() * 20_000.0)
                    as i16
            })
            .collect();
        let w = Waveform::new(sr, samples);
        let s = mel_spectrogram(&w, 512, 256, 40).unwrap();
        // Average each band over time.
        let band_energy: Vec<f64> =
            (0..40).map(|m| (0..s.frames()).map(|f| f64::from(s.get(m, f))).sum::<f64>()).collect();
        let peak =
            band_energy.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        // 1 kHz = mel 999.9; with 40 bands to 8 kHz Nyquist (mel 2840), the
        // peak lands in the lower third.
        assert!((8..20).contains(&peak), "peak band {peak}");
    }

    #[test]
    fn normalize_standardizes() {
        let w = SynthAudioSpec::new(8_000, 0.5).render(2);
        let mut s = mel_spectrogram(&w, 256, 128, 32).unwrap();
        s.normalize();
        let n = s.as_slice().len() as f64;
        let mean: f64 = s.as_slice().iter().map(|&v| f64::from(v)).sum::<f64>() / n;
        let var: f64 =
            s.as_slice().iter().map(|&v| f64::from(v).powi(2)).sum::<f64>() / n - mean * mean;
        assert!(mean.abs() < 1e-3, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-2, "var {var}");
    }

    #[test]
    fn degenerate_parameters_are_typed_errors() {
        let w = SynthAudioSpec::new(8_000, 0.5).render(2);
        assert_eq!(filterbank(0, 512, 16_000).unwrap_err(), MelError::ZeroMels);
        assert_eq!(filterbank(40, 500, 16_000).unwrap_err(), MelError::BadFftSize { n_fft: 500 });
        assert_eq!(filterbank(40, 512, 0).unwrap_err(), MelError::ZeroSampleRate);
        assert_eq!(mel_spectrogram(&w, 256, 0, 32).unwrap_err(), MelError::ZeroHop);
        assert_eq!(
            mel_spectrogram(&w, 8_192, 128, 32).unwrap_err(),
            MelError::FrameTooShort { len: w.len(), n_fft: 8_192 }
        );
        // FftError converts (and chains as a source) through MelError.
        let e = MelError::from(crate::fft::FftError::NotPowerOfTwo { len: 100 });
        assert_eq!(e, MelError::Fft(crate::fft::FftError::NotPowerOfTwo { len: 100 }));
        assert!(std::error::Error::source(&e).is_some());
    }
}
