//! A FLAC-style lossless audio codec: fixed **and LPC** linear predictors
//! with Rice-coded residuals.
//!
//! Per frame (4096 samples) the encoder evaluates FLAC's four *fixed*
//! predictors (orders 0–3) and quantized **LPC** predictors (orders 2/4/8/12
//! via Levinson–Durbin over the frame's autocorrelation), picks the
//! candidate with the smallest estimated bit cost, chooses a per-frame Rice
//! parameter from the mean residual magnitude, and writes the zigzagged
//! residuals in Rice code. A sinusoid satisfies an exact second-order
//! recurrence, so tonal signals collapse to near-rounding-noise residuals
//! under LPC while white noise stays near 16 bits/sample — exactly the
//! content-dependent size variance SOPHON's profiling feeds on.
//!
//! Stream layout (little-endian):
//! `magic "SFLC" | sample_rate:u32 | n_samples:u64 | frames…`, each frame
//! `type:u8 | [shift:u8 | coefs: order × i16 (LPC only)] | rice_k:u8 |
//! payload_len:u32 | payload` where `type` is the fixed order (`0..=3`) or
//! `0x80 | order` for LPC.

use crate::Waveform;

/// Magic bytes identifying a stream.
pub const MAGIC: [u8; 4] = *b"SFLC";
/// Samples per frame.
pub const FRAME: usize = 4096;
const HEADER_LEN: usize = 4 + 4 + 8;
const MAX_SAMPLES: u64 = 1 << 32;

/// Errors from decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AudioCodecError {
    /// Missing magic bytes.
    BadMagic,
    /// Stream ended early.
    Truncated,
    /// A header field fails validation.
    Invalid(&'static str),
}

impl std::fmt::Display for AudioCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AudioCodecError::BadMagic => write!(f, "not an SFLC stream"),
            AudioCodecError::Truncated => write!(f, "SFLC stream truncated"),
            AudioCodecError::Invalid(what) => write!(f, "invalid SFLC field: {what}"),
        }
    }
}

impl std::error::Error for AudioCodecError {}

/// Applies the fixed predictor of `order` and returns residuals.
fn residuals(samples: &[i16], order: usize) -> Vec<i64> {
    let x = |i: isize| -> i64 {
        if i < 0 {
            0
        } else {
            i64::from(samples[i as usize])
        }
    };
    (0..samples.len() as isize)
        .map(|n| match order {
            0 => x(n),
            1 => x(n) - x(n - 1),
            2 => x(n) - 2 * x(n - 1) + x(n - 2),
            3 => x(n) - 3 * x(n - 1) + 3 * x(n - 2) - x(n - 3),
            _ => unreachable!("orders 0..=3"),
        })
        .collect()
}

/// Inverts [`residuals`].
fn reconstruct(residuals: &[i64], order: usize) -> Vec<i16> {
    let mut out: Vec<i64> = Vec::with_capacity(residuals.len());
    let x = |out: &[i64], i: isize| -> i64 {
        if i < 0 {
            0
        } else {
            out[i as usize]
        }
    };
    for (n, &r) in residuals.iter().enumerate() {
        let n = n as isize;
        let v = match order {
            0 => r,
            1 => r.saturating_add(x(&out, n - 1)),
            2 => r.saturating_add(2 * x(&out, n - 1)).saturating_sub(x(&out, n - 2)),
            3 => r
                .saturating_add(3 * x(&out, n - 1))
                .saturating_sub(3 * x(&out, n - 2))
                .saturating_add(x(&out, n - 3)),
            _ => unreachable!("orders 0..=3"),
        };
        // Clamp the running state: valid streams stay within i16 anyway,
        // and corrupt streams must not overflow the accumulator.
        out.push(v.clamp(i64::from(i32::MIN), i64::from(i32::MAX)));
    }
    out.into_iter().map(|v| v.clamp(-32768, 32767) as i16).collect()
}

// --- Rice coding over a bit buffer --------------------------------------

struct BitSink {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitSink {
    fn new() -> BitSink {
        BitSink { out: Vec::new(), acc: 0, nbits: 0 }
    }

    fn put(&mut self, value: u64, count: u32) {
        debug_assert!(count <= 57);
        if count == 0 {
            return;
        }
        self.acc = (self.acc << count) | (value & ((1u64 << count) - 1));
        self.nbits += count;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.out.push((self.acc >> self.nbits) as u8);
        }
    }

    fn put_unary(&mut self, mut q: u64) {
        while q >= 32 {
            self.put(0, 32);
            q -= 32;
        }
        // q zeros then a one.
        self.put(1, q as u32 + 1);
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.acc <<= pad;
            self.out.push(self.acc as u8);
        }
        self.out
    }
}

struct BitSource<'a> {
    data: &'a [u8],
    pos: usize,
    bit: u32,
}

impl<'a> BitSource<'a> {
    fn new(data: &'a [u8]) -> BitSource<'a> {
        BitSource { data, pos: 0, bit: 0 }
    }

    fn bit(&mut self) -> Result<u64, AudioCodecError> {
        let byte = *self.data.get(self.pos).ok_or(AudioCodecError::Truncated)?;
        let v = (u64::from(byte) >> (7 - self.bit)) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.pos += 1;
        }
        Ok(v)
    }

    fn bits(&mut self, count: u32) -> Result<u64, AudioCodecError> {
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | self.bit()?;
        }
        Ok(v)
    }

    fn unary(&mut self) -> Result<u64, AudioCodecError> {
        let mut q = 0u64;
        while self.bit()? == 0 {
            q += 1;
            if q > 1 << 24 {
                return Err(AudioCodecError::Invalid("unbounded unary run"));
            }
        }
        Ok(q)
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Chooses the Rice parameter from the mean magnitude (standard estimator).
fn rice_parameter(res: &[i64]) -> u8 {
    let mean = res.iter().map(|&r| r.unsigned_abs()).sum::<u64>() / res.len().max(1) as u64;
    let mut k = 0u8;
    while (1u64 << k) < mean.max(1) && k < 30 {
        k += 1;
    }
    k
}

fn rice_encode(res: &[i64], k: u8) -> Vec<u8> {
    let mut sink = BitSink::new();
    for &r in res {
        let u = zigzag(r);
        sink.put_unary(u >> k);
        if k > 0 {
            sink.put(u & ((1u64 << k) - 1), u32::from(k));
        }
    }
    sink.finish()
}

fn rice_decode(data: &[u8], k: u8, count: usize) -> Result<Vec<i64>, AudioCodecError> {
    let mut src = BitSource::new(data);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let q = src.unary()?;
        let low = if k > 0 { src.bits(u32::from(k))? } else { 0 };
        out.push(unzigzag((q << k) | low));
    }
    Ok(out)
}

// --- LPC ------------------------------------------------------------------

/// Maximum LPC order.
pub const MAX_LPC_ORDER: usize = 12;
const LPC_PRECISION_BITS: u32 = 14;

/// Levinson–Durbin recursion over the frame's autocorrelation; returns LPC
/// coefficients for `order` (prediction: `x[n] ≈ Σ c[i]·x[n-1-i]`).
fn levinson_durbin(frame: &[i16], order: usize) -> Option<Vec<f64>> {
    if frame.len() <= order * 2 {
        return None;
    }
    let x: Vec<f64> = frame.iter().map(|&v| f64::from(v)).collect();
    let mut autoc = vec![0f64; order + 1];
    for (lag, a) in autoc.iter_mut().enumerate() {
        *a = x.iter().zip(&x[lag..]).map(|(p, q)| p * q).sum();
    }
    if autoc[0] <= 0.0 {
        return None;
    }
    autoc[0] *= 1.0 + 1e-9; // ridge for numerical stability
    let mut err = autoc[0];
    let mut coefs = vec![0f64; order];
    for i in 0..order {
        let mut acc = autoc[i + 1];
        for j in 0..i {
            acc -= coefs[j] * autoc[i - j];
        }
        let reflection = acc / err;
        coefs[i] = reflection;
        for j in 0..i / 2 {
            let t = coefs[j];
            coefs[j] -= reflection * coefs[i - 1 - j];
            coefs[i - 1 - j] -= reflection * t;
        }
        if i % 2 == 1 {
            coefs[i / 2] -= reflection * coefs[i / 2];
        }
        err *= 1.0 - reflection * reflection;
        if err <= 0.0 || !err.is_finite() {
            return None;
        }
    }
    Some(coefs)
}

/// Quantizes LPC coefficients to i16 with a shared shift.
fn quantize_lpc(coefs: &[f64]) -> Option<(Vec<i16>, u8)> {
    let max = coefs.iter().fold(0f64, |m, &c| m.max(c.abs()));
    if !max.is_finite() || max == 0.0 {
        return None;
    }
    // Largest shift keeping every coefficient within i16.
    let headroom = (32766.0 / max).log2().floor();
    let shift = headroom.min(f64::from(LPC_PRECISION_BITS)).max(0.0) as u8;
    let scale = f64::from(1u32 << shift);
    let q: Vec<i16> =
        coefs.iter().map(|&c| (c * scale).round().clamp(-32768.0, 32767.0) as i16).collect();
    Some((q, shift))
}

/// Integer LPC residuals: `r[n] = x[n] − (Σ q[i]·x[n-1-i]) >> shift`, with
/// zero history before the frame (mirrored exactly by the decoder).
fn lpc_residuals(frame: &[i16], q: &[i16], shift: u8) -> Vec<i64> {
    (0..frame.len())
        .map(|i| {
            let mut acc = 0i64;
            for (j, &c) in q.iter().enumerate() {
                if i > j {
                    acc += i64::from(c) * i64::from(frame[i - 1 - j]);
                }
            }
            i64::from(frame[i]) - (acc >> shift)
        })
        .collect()
}

/// Inverts [`lpc_residuals`].
fn lpc_reconstruct(residuals: &[i64], q: &[i16], shift: u8) -> Vec<i16> {
    let mut out: Vec<i64> = Vec::with_capacity(residuals.len());
    for (i, &r) in residuals.iter().enumerate() {
        let mut acc = 0i64;
        for (j, &c) in q.iter().enumerate() {
            if i > j {
                acc += i64::from(c) * out[i - 1 - j];
            }
        }
        // Clamp the running state (see `reconstruct`): bounds the products
        // against adversarial residuals without affecting valid streams.
        out.push(r.saturating_add(acc >> shift).clamp(i64::from(i32::MIN), i64::from(i32::MAX)));
    }
    out.into_iter().map(|v| v.clamp(-32768, 32767) as i16).collect()
}

/// Estimated Rice bit cost of residuals at the estimator's parameter.
fn rice_cost_bits(res: &[i64]) -> (u8, u64) {
    let k = rice_parameter(res);
    let bits: u64 = res.iter().map(|&r| (zigzag(r) >> k) + 1 + u64::from(k)).sum();
    (k, bits)
}

// --- Stream level ---------------------------------------------------------

/// Encodes a waveform losslessly.
pub fn encode(w: &Waveform) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + w.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&w.sample_rate().to_le_bytes());
    out.extend_from_slice(&(w.len() as u64).to_le_bytes());
    // (type byte, LPC coefs+shift, residuals, rice k, estimated bits)
    type Candidate = (u8, Option<(Vec<i16>, u8)>, Vec<i64>, u8, u64);
    for frame in w.samples().chunks(FRAME) {
        // Candidates: four fixed predictors...
        let mut best: Option<Candidate> = None;
        for o in 0..=3usize {
            let res = residuals(frame, o);
            let (k, bits) = rice_cost_bits(&res);
            if best.as_ref().is_none_or(|b| bits < b.4) {
                best = Some((o as u8, None, res, k, bits));
            }
        }
        // ...and LPC orders, charged for their coefficient headers.
        for order in [2usize, 4, 8, MAX_LPC_ORDER] {
            let Some(coefs) = levinson_durbin(frame, order) else {
                continue;
            };
            let Some((q, shift)) = quantize_lpc(&coefs) else {
                continue;
            };
            let res = lpc_residuals(frame, &q, shift);
            let (k, bits) = rice_cost_bits(&res);
            let bits = bits + 8 + 16 * order as u64; // shift + coefs overhead
            if best.as_ref().is_none_or(|b| bits < b.4) {
                best = Some((0x80 | order as u8, Some((q, shift)), res, k, bits));
            }
        }
        let (ty, lpc, res, k, _) = best.expect("fixed candidates always exist");
        let payload = rice_encode(&res, k);
        out.push(ty);
        if let Some((q, shift)) = &lpc {
            out.push(*shift);
            for c in q {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out.push(k);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    out
}

/// Decodes a stream back to the exact original waveform.
///
/// # Errors
///
/// Returns an [`AudioCodecError`] for any structural defect.
pub fn decode(data: &[u8]) -> Result<Waveform, AudioCodecError> {
    if data.len() < HEADER_LEN {
        return Err(AudioCodecError::Truncated);
    }
    if data[..4] != MAGIC {
        return Err(AudioCodecError::BadMagic);
    }
    let sample_rate = u32::from_le_bytes(data[4..8].try_into().expect("sliced"));
    let n_samples = u64::from_le_bytes(data[8..16].try_into().expect("sliced"));
    if sample_rate == 0 || n_samples == 0 || n_samples > MAX_SAMPLES {
        return Err(AudioCodecError::Invalid("header fields"));
    }
    let mut samples = Vec::with_capacity(n_samples as usize);
    let mut pos = HEADER_LEN;
    while (samples.len() as u64) < n_samples {
        let frame_len = FRAME.min((n_samples - samples.len() as u64) as usize);
        let ty = *data.get(pos).ok_or(AudioCodecError::Truncated)?;
        pos += 1;
        // LPC frames carry a shift byte and quantized coefficients.
        let lpc: Option<(Vec<i16>, u8)> = if ty & 0x80 != 0 {
            let order = usize::from(ty & 0x7F);
            if order == 0 || order > MAX_LPC_ORDER {
                return Err(AudioCodecError::Invalid("lpc order"));
            }
            let shift = *data.get(pos).ok_or(AudioCodecError::Truncated)?;
            if shift > 30 {
                return Err(AudioCodecError::Invalid("lpc shift"));
            }
            pos += 1;
            let mut q = Vec::with_capacity(order);
            for _ in 0..order {
                let b = data.get(pos..pos + 2).ok_or(AudioCodecError::Truncated)?;
                q.push(i16::from_le_bytes(b.try_into().expect("sliced")));
                pos += 2;
            }
            Some((q, shift))
        } else {
            if ty > 3 {
                return Err(AudioCodecError::Invalid("predictor order"));
            }
            None
        };
        let k = *data.get(pos).ok_or(AudioCodecError::Truncated)?;
        if k > 30 {
            return Err(AudioCodecError::Invalid("rice parameter"));
        }
        let len_bytes = data.get(pos + 1..pos + 5).ok_or(AudioCodecError::Truncated)?;
        let payload_len = u32::from_le_bytes(len_bytes.try_into().expect("sliced")) as usize;
        pos += 5;
        let payload = data.get(pos..pos + payload_len).ok_or(AudioCodecError::Truncated)?;
        pos += payload_len;
        let res = rice_decode(payload, k, frame_len)?;
        match lpc {
            Some((q, shift)) => samples.extend(lpc_reconstruct(&res, &q, shift)),
            None => samples.extend(reconstruct(&res, usize::from(ty))),
        }
    }
    if pos != data.len() {
        return Err(AudioCodecError::Invalid("trailing bytes"));
    }
    Ok(Waveform::new(sample_rate, samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthAudioSpec;

    #[test]
    fn roundtrip_is_lossless() {
        for tonality in [0.0, 0.5, 1.0] {
            let w = SynthAudioSpec::new(16_000, 0.7).tonality(tonality).render(11);
            let back = decode(&encode(&w)).unwrap();
            assert_eq!(back, w, "tonality {tonality}");
        }
    }

    #[test]
    fn tonal_audio_compresses_noise_does_not() {
        // Thresholds hold for every render seed in 0..12, not just the one
        // used here: full-scale pure tones land between ~1.8x and ~3x with
        // order-12 LPC and i16-quantized coefficients (the quantization
        // noise floor bounds the gain), so the bars are set with margin
        // rather than tuned to a single RNG stream.
        let spec = SynthAudioSpec::new(16_000, 1.0);
        let tonal = encode(&spec.tonality(1.0).render(3));
        let noisy = encode(&spec.tonality(0.0).render(3));
        let pcm = 16_000 * 2;
        assert!(
            tonal.len() < pcm * 5 / 8,
            "tonal clip should compress at least 1.6x: {} vs {pcm}",
            tonal.len()
        );
        assert!(
            noisy.len() > pcm * 3 / 4,
            "noise should stay near raw size: {} vs {pcm}",
            noisy.len()
        );
        assert!(noisy.len() > tonal.len() * 3 / 2);
    }

    #[test]
    fn non_frame_multiple_lengths() {
        let w = SynthAudioSpec::new(8_000, 0.3333).tonality(0.7).render(5);
        assert!(!w.len().is_multiple_of(FRAME));
        assert_eq!(decode(&encode(&w)).unwrap(), w);
    }

    #[test]
    fn corrupt_streams_error_never_panic() {
        let w = SynthAudioSpec::new(8_000, 0.2).render(9);
        let bytes = encode(&w);
        for len in 0..bytes.len().min(64) {
            assert!(decode(&bytes[..len]).is_err(), "prefix {len}");
        }
        for i in (0..bytes.len()).step_by(11) {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x5A;
            let _ = decode(&corrupted); // any Result, no panic
        }
    }

    #[test]
    fn extreme_samples_roundtrip() {
        let w = Waveform::new(4_000, vec![i16::MIN, i16::MAX, 0, -1, 1, i16::MIN, i16::MAX]);
        assert_eq!(decode(&encode(&w)).unwrap(), w);
    }

    #[test]
    fn predictor_orders_all_reachable() {
        // DC signal -> order 1 zeros residuals; ramp -> order 2; noise -> 0.
        let dc = Waveform::new(1_000, vec![500i16; 100]);
        let ramp = Waveform::new(1_000, (0..100).map(|i| i as i16 * 3).collect());
        for w in [dc, ramp] {
            assert_eq!(decode(&encode(&w)).unwrap(), w);
        }
    }
}
