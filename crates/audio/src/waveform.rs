use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Errors from waveform construction and slicing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WaveformError {
    /// A sample rate of zero makes duration undefined.
    ZeroSampleRate,
    /// A waveform must carry at least one sample.
    EmptySamples,
    /// A resample target rate of zero is degenerate.
    ZeroTargetRate,
    /// A requested window does not fit in the waveform.
    WindowOutOfRange {
        /// First sample of the window.
        offset: usize,
        /// Requested window length (zero is also rejected).
        len: usize,
        /// Samples actually available.
        available: usize,
    },
}

impl std::fmt::Display for WaveformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaveformError::ZeroSampleRate => write!(f, "sample rate must be positive"),
            WaveformError::EmptySamples => write!(f, "waveform must be non-empty"),
            WaveformError::ZeroTargetRate => write!(f, "resample target rate must be positive"),
            WaveformError::WindowOutOfRange { offset, len, available } => write!(
                f,
                "window out of range: {len} samples at offset {offset} from {available} available"
            ),
        }
    }
}

impl std::error::Error for WaveformError {}

/// A mono PCM waveform with 16-bit samples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Waveform {
    sample_rate: u32,
    samples: Vec<i16>,
}

impl Waveform {
    /// Wraps samples at a rate.
    ///
    /// # Panics
    ///
    /// Panics when `sample_rate` is zero or `samples` is empty; use
    /// [`Waveform::try_new`] to handle untrusted dimensions.
    pub fn new(sample_rate: u32, samples: Vec<i16>) -> Waveform {
        Waveform::try_new(sample_rate, samples).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor for untrusted dimensions.
    ///
    /// # Errors
    ///
    /// [`WaveformError::ZeroSampleRate`] / [`WaveformError::EmptySamples`]
    /// for degenerate inputs.
    pub fn try_new(sample_rate: u32, samples: Vec<i16>) -> Result<Waveform, WaveformError> {
        if sample_rate == 0 {
            return Err(WaveformError::ZeroSampleRate);
        }
        if samples.is_empty() {
            return Err(WaveformError::EmptySamples);
        }
        Ok(Waveform { sample_rate, samples })
    }

    /// Samples per second.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// The PCM samples.
    pub fn samples(&self) -> &[i16] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the waveform is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration in seconds.
    pub fn duration_seconds(&self) -> f64 {
        self.samples.len() as f64 / f64::from(self.sample_rate)
    }

    /// Raw PCM byte size (2 bytes/sample) — what an un-offloaded loader
    /// would move once decoded.
    pub fn byte_len(&self) -> usize {
        self.samples.len() * 2
    }

    /// Linear-interpolation resample to `target_rate`.
    ///
    /// # Errors
    ///
    /// [`WaveformError::ZeroTargetRate`] when `target_rate` is zero.
    pub fn resample(&self, target_rate: u32) -> Result<Waveform, WaveformError> {
        if target_rate == 0 {
            return Err(WaveformError::ZeroTargetRate);
        }
        if target_rate == self.sample_rate {
            return Ok(self.clone());
        }
        let ratio = f64::from(self.sample_rate) / f64::from(target_rate);
        let out_len = ((self.samples.len() as f64) / ratio).floor().max(1.0) as usize;
        let samples = (0..out_len)
            .map(|i| {
                let pos = i as f64 * ratio;
                let i0 = pos.floor() as usize;
                let i1 = (i0 + 1).min(self.samples.len() - 1);
                let frac = pos - i0 as f64;
                let v =
                    f64::from(self.samples[i0]) * (1.0 - frac) + f64::from(self.samples[i1]) * frac;
                v.round().clamp(-32768.0, 32767.0) as i16
            })
            .collect();
        Ok(Waveform { sample_rate: target_rate, samples })
    }

    /// The window of `len` samples starting at `offset`.
    ///
    /// # Errors
    ///
    /// [`WaveformError::WindowOutOfRange`] when the window exceeds the
    /// waveform or `len` is zero.
    pub fn window(&self, offset: usize, len: usize) -> Result<Waveform, WaveformError> {
        let available = self.samples.len();
        if len == 0 || offset.checked_add(len).is_none_or(|end| end > available) {
            return Err(WaveformError::WindowOutOfRange { offset, len, available });
        }
        Ok(Waveform {
            sample_rate: self.sample_rate,
            samples: self.samples[offset..offset + len].to_vec(),
        })
    }
}

/// Deterministic synthetic audio: a sum of harmonics plus noise.
///
/// `tonality` in `[0, 1]` is the audio analogue of the image generator's
/// complexity knob, inverted: 1.0 is a clean harmonic tone (the lossless
/// codec's residuals collapse, tiny encoded size), 0.0 is white noise
/// (incompressible).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthAudioSpec {
    sample_rate: u32,
    duration_seconds: f64,
    tonality: f64,
    amplitude: f64,
}

impl SynthAudioSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics for zero rate or non-positive duration.
    pub fn new(sample_rate: u32, duration_seconds: f64) -> SynthAudioSpec {
        assert!(sample_rate > 0, "sample rate must be positive");
        assert!(
            duration_seconds.is_finite() && duration_seconds > 0.0,
            "duration must be positive"
        );
        SynthAudioSpec { sample_rate, duration_seconds, tonality: 0.5, amplitude: 1.0 }
    }

    /// Sets the tonality in `[0, 1]` (clamped).
    #[must_use]
    pub fn tonality(mut self, t: f64) -> SynthAudioSpec {
        self.tonality = t.clamp(0.0, 1.0);
        self
    }

    /// Sets the overall amplitude in `[0, 1]` (clamped; 1.0 = full scale).
    /// Quiet clips compress dramatically better — silence is the best
    /// compressor's friend.
    #[must_use]
    pub fn amplitude(mut self, a: f64) -> SynthAudioSpec {
        self.amplitude = a.clamp(0.0, 1.0);
        self
    }

    /// Renders the waveform deterministically from `seed`.
    pub fn render(&self, seed: u64) -> Waveform {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4155_4449_4f21);
        let n = (self.duration_seconds * f64::from(self.sample_rate)).round().max(1.0) as usize;
        // Natural-ish spectra: low fundamentals with 1/h^2 harmonic rolloff,
        // which linear prediction captures well (as it does real speech).
        let fundamental = rng.gen_range(70.0..350.0);
        let harmonics: Vec<(f64, f64, f64)> = (1..=5)
            .map(|h| {
                (
                    fundamental * f64::from(h),
                    rng.gen_range(0.5..1.0) / f64::from(h * h),
                    rng.gen_range(0.0..std::f64::consts::TAU),
                )
            })
            .collect();
        let tone_amp = self.tonality;
        let noise_amp = 1.0 - self.tonality;
        let dt = 1.0 / f64::from(self.sample_rate);
        let samples = (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                let tone: f64 = harmonics
                    .iter()
                    .map(|&(f, a, p)| a * (std::f64::consts::TAU * f * t + p).sin())
                    .sum();
                let noise: f64 = rng.gen_range(-1.0..1.0);
                let v = 0.5 * self.amplitude * (tone_amp * tone + noise_amp * noise);
                (v.clamp(-1.0, 1.0) * 32767.0) as i16
            })
            .collect();
        Waveform { sample_rate: self.sample_rate, samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic() {
        let spec = SynthAudioSpec::new(16_000, 0.5).tonality(0.8);
        assert_eq!(spec.render(3), spec.render(3));
        assert_ne!(spec.render(3), spec.render(4));
    }

    #[test]
    fn duration_and_bytes() {
        let w = SynthAudioSpec::new(16_000, 2.0).render(1);
        assert_eq!(w.len(), 32_000);
        assert_eq!(w.byte_len(), 64_000);
        assert!((w.duration_seconds() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn resample_halves_and_doubles() {
        let w = SynthAudioSpec::new(32_000, 1.0).tonality(1.0).render(2);
        let down = w.resample(16_000).unwrap();
        assert_eq!(down.sample_rate(), 16_000);
        assert!((down.len() as f64 - 16_000.0).abs() <= 1.0);
        let same = w.resample(32_000).unwrap();
        assert_eq!(same, w);
    }

    #[test]
    fn window_extracts_exact_slice() {
        let w = SynthAudioSpec::new(8_000, 1.0).render(5);
        let win = w.window(100, 256).unwrap();
        assert_eq!(win.len(), 256);
        assert_eq!(win.samples()[0], w.samples()[100]);
    }

    #[test]
    fn degenerate_shapes_are_typed_errors() {
        let w = SynthAudioSpec::new(8_000, 0.1).render(5);
        let avail = w.len();
        assert_eq!(
            w.window(0, avail + 1).unwrap_err(),
            WaveformError::WindowOutOfRange { offset: 0, len: avail + 1, available: avail }
        );
        assert_eq!(
            w.window(3, 0).unwrap_err(),
            WaveformError::WindowOutOfRange { offset: 3, len: 0, available: avail }
        );
        assert_eq!(w.resample(0).unwrap_err(), WaveformError::ZeroTargetRate);
        assert_eq!(Waveform::try_new(0, vec![1]).unwrap_err(), WaveformError::ZeroSampleRate);
        assert_eq!(Waveform::try_new(8_000, vec![]).unwrap_err(), WaveformError::EmptySamples);
        assert!(w.window(0, avail + 1).unwrap_err().to_string().contains("window out of range"));
    }

    #[test]
    fn tonality_controls_spectral_shape() {
        // A pure tone has far lower sample-to-sample variation than noise.
        let tv = |w: &Waveform| -> f64 {
            w.samples()
                .windows(2)
                .map(|p| f64::from(p[1]) - f64::from(p[0]))
                .map(f64::abs)
                .sum::<f64>()
                / w.len() as f64
        };
        let tonal = SynthAudioSpec::new(16_000, 0.5).tonality(1.0).render(7);
        let noisy = SynthAudioSpec::new(16_000, 0.5).tonality(0.0).render(7);
        assert!(tv(&noisy) > tv(&tonal) * 2.0);
    }
}
