use crate::mel::Spectrogram;
use crate::Waveform;

/// A clip at some stage of the audio pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum AudioData {
    /// Rice-coded lossless bytes (the stored form).
    Encoded(Vec<u8>),
    /// Decoded 16-bit PCM.
    Pcm(Waveform),
    /// Log-mel features.
    Features(Spectrogram),
}

impl AudioData {
    /// Exact size in bytes when transferred.
    pub fn byte_len(&self) -> u64 {
        match self {
            AudioData::Encoded(b) => b.len() as u64,
            AudioData::Pcm(w) => w.byte_len() as u64,
            AudioData::Features(s) => s.byte_len() as u64,
        }
    }

    /// Borrows the PCM, when at that stage.
    pub fn as_pcm(&self) -> Option<&Waveform> {
        match self {
            AudioData::Pcm(w) => Some(w),
            _ => None,
        }
    }

    /// Borrows the features, when at that stage.
    pub fn as_features(&self) -> Option<&Spectrogram> {
        match self {
            AudioData::Features(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthAudioSpec;

    #[test]
    fn byte_len_matches_stage() {
        let w = SynthAudioSpec::new(8_000, 0.5).render(1);
        assert_eq!(AudioData::Pcm(w.clone()).byte_len(), w.byte_len() as u64);
        let enc = crate::codec::encode(&w);
        assert_eq!(AudioData::Encoded(enc.clone()).byte_len(), enc.len() as u64);
        let s = crate::mel::mel_spectrogram(&w, 256, 128, 32).unwrap();
        assert_eq!(AudioData::Features(s.clone()).byte_len(), s.byte_len() as u64);
    }
}
