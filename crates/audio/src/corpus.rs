//! Synthetic audio corpora.
//!
//! Clip durations are log-normal (speech-command-like: most clips a few
//! seconds, a long tail), tonality is a truncated normal, and source rates
//! mix common values — enough variety that SOPHON's per-clip decisions
//! genuinely differ.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{codec, AudioData, SynthAudioSpec, Waveform};

/// A deterministic synthetic audio corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct AudioDatasetSpec {
    /// Corpus seed.
    pub seed: u64,
    /// Number of clips.
    pub len: u64,
    /// Median clip duration in seconds.
    pub median_seconds: f64,
    /// Log-space duration spread.
    pub sigma: f64,
    /// Mean tonality.
    pub tonality_mean: f64,
}

/// Per-clip metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClipRecord {
    /// Clip index.
    pub id: u64,
    /// Source sample rate in Hz.
    pub sample_rate: u32,
    /// Duration in seconds.
    pub duration_seconds: f64,
    /// Tonality in `[0, 1]`.
    pub tonality: f64,
    /// Amplitude in `[0, 1]` (quiet clips compress far better).
    pub amplitude: f64,
}

impl AudioDatasetSpec {
    /// A speech-like corpus: median 3 s clips, moderate tonality.
    pub fn speech_like(len: u64, seed: u64) -> AudioDatasetSpec {
        AudioDatasetSpec { seed, len, median_seconds: 3.0, sigma: 0.5, tonality_mean: 0.45 }
    }

    /// Per-clip metadata.
    ///
    /// # Panics
    ///
    /// Panics when `id >= len`.
    pub fn record(&self, id: u64) -> ClipRecord {
        assert!(id < self.len, "clip {id} out of range");
        let mut rng = StdRng::seed_from_u64(
            self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ id.wrapping_mul(0xd6e8_feb8_6659_fd93),
        );
        let z: f64 = {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let duration = (self.median_seconds * (z * self.sigma).exp()).clamp(0.5, 20.0);
        let tonality = (self.tonality_mean + rng.gen_range(-0.35..0.35)).clamp(0.0, 1.0);
        // ~20% of clips are quiet (hushed speech, room tone): these compress
        // below their feature size and are SOPHON's keep-raw cases.
        let amplitude =
            if rng.gen_bool(0.2) { rng.gen_range(0.03..0.15) } else { rng.gen_range(0.5..1.0) };
        let sample_rate =
            *[16_000u32, 22_050, 44_100].get(rng.gen_range(0..3usize)).expect("three rates");
        ClipRecord { id, sample_rate, duration_seconds: duration, tonality, amplitude }
    }

    /// All records.
    pub fn records(&self) -> impl Iterator<Item = ClipRecord> + '_ {
        (0..self.len).map(|id| self.record(id))
    }

    /// Renders clip `id`'s waveform.
    pub fn waveform(&self, id: u64) -> Waveform {
        let r = self.record(id);
        SynthAudioSpec::new(r.sample_rate, r.duration_seconds)
            .tonality(r.tonality)
            .amplitude(r.amplitude)
            .render(self.seed ^ id.wrapping_mul(0x2545_f491_4f6c_dd1d))
    }

    /// Renders and losslessly encodes clip `id` (the stored form).
    pub fn materialize(&self, id: u64) -> AudioData {
        AudioData::Encoded(codec::encode(&self.waveform(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_deterministic_and_bounded() {
        let ds = AudioDatasetSpec::speech_like(100, 5);
        for r in ds.records() {
            assert_eq!(ds.record(r.id), r);
            assert!((0.5..=20.0).contains(&r.duration_seconds));
            assert!((0.0..=1.0).contains(&r.tonality));
            assert!((0.0..=1.0).contains(&r.amplitude));
            assert!([16_000, 22_050, 44_100].contains(&r.sample_rate));
        }
    }

    #[test]
    fn corpus_has_duration_variety() {
        let ds = AudioDatasetSpec::speech_like(200, 7);
        let durations: Vec<f64> = ds.records().map(|r| r.duration_seconds).collect();
        let min = durations.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = durations.iter().cloned().fold(0.0, f64::max);
        assert!(max > min * 3.0, "durations too uniform: {min}..{max}");
    }

    #[test]
    fn materialized_clips_decode() {
        let ds = AudioDatasetSpec::speech_like(4, 9);
        for id in 0..4 {
            let AudioData::Encoded(bytes) = ds.materialize(id) else { panic!("encoded") };
            let w = codec::decode(&bytes).unwrap();
            assert_eq!(w.sample_rate(), ds.record(id).sample_rate);
        }
    }
}
