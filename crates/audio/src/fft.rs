//! Iterative radix-2 complex FFT.
//!
//! Small, allocation-light, and exactly what a mel front-end needs. Sizes
//! must be powers of two; the mel op pads its frames accordingly.

/// A complex number (re, im).
pub type Complex = (f64, f64);

/// In-place radix-2 decimation-in-time FFT.
///
/// # Panics
///
/// Panics when `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT size must be a power of two, got {n}");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2usize;
    while len <= n {
        let angle = -2.0 * std::f64::consts::PI / len as f64;
        let (w_re, w_im) = (angle.cos(), angle.sin());
        for start in (0..n).step_by(len) {
            let (mut cur_re, mut cur_im) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (a_re, a_im) = data[start + k];
                let (b_re, b_im) = data[start + k + len / 2];
                let t_re = b_re * cur_re - b_im * cur_im;
                let t_im = b_re * cur_im + b_im * cur_re;
                data[start + k] = (a_re + t_re, a_im + t_im);
                data[start + k + len / 2] = (a_re - t_re, a_im - t_im);
                let next_re = cur_re * w_re - cur_im * w_im;
                cur_im = cur_re * w_im + cur_im * w_re;
                cur_re = next_re;
            }
        }
        len <<= 1;
    }
}

/// Power spectrum (|X_k|²) of a real frame, returning `n/2 + 1` bins.
///
/// # Panics
///
/// Panics when `frame.len()` is not a power of two.
pub fn power_spectrum(frame: &[f64]) -> Vec<f64> {
    let mut data: Vec<Complex> = frame.iter().map(|&v| (v, 0.0)).collect();
    fft_in_place(&mut data);
    data[..frame.len() / 2 + 1].iter().map(|&(re, im)| re * re + im * im).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive DFT for cross-checking.
    fn dft(data: &[Complex]) -> Vec<Complex> {
        let n = data.len();
        (0..n)
            .map(|k| {
                let mut acc = (0.0, 0.0);
                for (j, &(re, im)) in data.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    let (c, s) = (ang.cos(), ang.sin());
                    acc.0 += re * c - im * s;
                    acc.1 += re * s + im * c;
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let mut data: Vec<Complex> = (0..64)
            .map(|i| (((i * 37 + 11) % 17) as f64 - 8.0, ((i * 13) % 7) as f64 - 3.0))
            .collect();
        let expected = dft(&data);
        fft_in_place(&mut data);
        for (a, b) in data.iter().zip(expected.iter()) {
            assert!((a.0 - b.0).abs() < 1e-9, "{a:?} vs {b:?}");
            assert!((a.1 - b.1).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 256;
        let k0 = 19usize;
        let frame: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).sin())
            .collect();
        let spec = power_spectrum(&frame);
        let peak = spec.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(peak, k0);
        let total: f64 = spec.iter().sum();
        assert!(spec[k0] / total > 0.95, "energy leaked: {}", spec[k0] / total);
    }

    #[test]
    fn parseval_holds() {
        let frame: Vec<f64> = (0..128).map(|i| ((i as f64) * 0.37).sin() * 3.0).collect();
        let time_energy: f64 = frame.iter().map(|v| v * v).sum();
        let mut data: Vec<Complex> = frame.iter().map(|&v| (v, 0.0)).collect();
        fft_in_place(&mut data);
        let freq_energy: f64 = data.iter().map(|&(re, im)| re * re + im * im).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut d = vec![(0.0, 0.0); 100];
        fft_in_place(&mut d);
    }

    #[test]
    fn size_one_is_identity() {
        let mut d = vec![(5.0, -2.0)];
        fft_in_place(&mut d);
        assert_eq!(d, vec![(5.0, -2.0)]);
    }
}
