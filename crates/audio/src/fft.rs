//! Iterative radix-2 complex FFT.
//!
//! Small, allocation-light, and exactly what a mel front-end needs. Sizes
//! must be powers of two; the mel op pads its frames accordingly.

/// A complex number (re, im).
pub type Complex = (f64, f64);

/// Errors from the FFT kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FftError {
    /// Radix-2 decimation needs a power-of-two size.
    NotPowerOfTwo {
        /// The rejected length.
        len: usize,
    },
}

impl std::fmt::Display for FftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FftError::NotPowerOfTwo { len } => {
                write!(f, "FFT size must be a power of two, got {len}")
            }
        }
    }
}

impl std::error::Error for FftError {}

/// In-place radix-2 decimation-in-time FFT.
///
/// # Errors
///
/// [`FftError::NotPowerOfTwo`] when `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex]) -> Result<(), FftError> {
    let n = data.len();
    if !n.is_power_of_two() {
        return Err(FftError::NotPowerOfTwo { len: n });
    }
    if n <= 1 {
        return Ok(());
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2usize;
    while len <= n {
        let angle = -2.0 * std::f64::consts::PI / len as f64;
        let (w_re, w_im) = (angle.cos(), angle.sin());
        for start in (0..n).step_by(len) {
            let (mut cur_re, mut cur_im) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (a_re, a_im) = data[start + k];
                let (b_re, b_im) = data[start + k + len / 2];
                let t_re = b_re * cur_re - b_im * cur_im;
                let t_im = b_re * cur_im + b_im * cur_re;
                data[start + k] = (a_re + t_re, a_im + t_im);
                data[start + k + len / 2] = (a_re - t_re, a_im - t_im);
                let next_re = cur_re * w_re - cur_im * w_im;
                cur_im = cur_re * w_im + cur_im * w_re;
                cur_re = next_re;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// Power spectrum (|X_k|²) of a real frame, returning `n/2 + 1` bins.
///
/// # Errors
///
/// [`FftError::NotPowerOfTwo`] when `frame.len()` is not a power of two.
pub fn power_spectrum(frame: &[f64]) -> Result<Vec<f64>, FftError> {
    let mut data: Vec<Complex> = frame.iter().map(|&v| (v, 0.0)).collect();
    fft_in_place(&mut data)?;
    Ok(data[..frame.len() / 2 + 1].iter().map(|&(re, im)| re * re + im * im).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive DFT for cross-checking.
    fn dft(data: &[Complex]) -> Vec<Complex> {
        let n = data.len();
        (0..n)
            .map(|k| {
                let mut acc = (0.0, 0.0);
                for (j, &(re, im)) in data.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    let (c, s) = (ang.cos(), ang.sin());
                    acc.0 += re * c - im * s;
                    acc.1 += re * s + im * c;
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let mut data: Vec<Complex> = (0..64)
            .map(|i| (((i * 37 + 11) % 17) as f64 - 8.0, ((i * 13) % 7) as f64 - 3.0))
            .collect();
        let expected = dft(&data);
        fft_in_place(&mut data).unwrap();
        for (a, b) in data.iter().zip(expected.iter()) {
            assert!((a.0 - b.0).abs() < 1e-9, "{a:?} vs {b:?}");
            assert!((a.1 - b.1).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 256;
        let k0 = 19usize;
        let frame: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).sin())
            .collect();
        let spec = power_spectrum(&frame).unwrap();
        let peak = spec.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(peak, k0);
        let total: f64 = spec.iter().sum();
        assert!(spec[k0] / total > 0.95, "energy leaked: {}", spec[k0] / total);
    }

    #[test]
    fn parseval_holds() {
        let frame: Vec<f64> = (0..128).map(|i| ((i as f64) * 0.37).sin() * 3.0).collect();
        let time_energy: f64 = frame.iter().map(|v| v * v).sum();
        let mut data: Vec<Complex> = frame.iter().map(|&v| (v, 0.0)).collect();
        fft_in_place(&mut data).unwrap();
        let freq_energy: f64 = data.iter().map(|&(re, im)| re * re + im * im).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-9);
    }

    #[test]
    fn non_power_of_two_is_a_typed_error() {
        let mut d = vec![(0.0, 0.0); 100];
        let err = fft_in_place(&mut d).unwrap_err();
        assert_eq!(err, FftError::NotPowerOfTwo { len: 100 });
        assert!(err.to_string().contains("power of two"));
        assert_eq!(power_spectrum(&[0.0; 100]).unwrap_err(), FftError::NotPowerOfTwo { len: 100 });
    }

    #[test]
    fn size_one_is_identity() {
        let mut d = vec![(5.0, -2.0)];
        fft_in_place(&mut d).unwrap();
        assert_eq!(d, vec![(5.0, -2.0)]);
    }
}
