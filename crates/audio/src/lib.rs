//! Audio-domain substrate for SOPHON.
//!
//! The paper's future work plans to "study a wider variety of DL training
//! workloads across various domains". This crate demonstrates that SOPHON's
//! decision machinery is *domain-agnostic*: everything the engine consumes
//! is a [`pipeline::SampleProfile`] — per-stage byte sizes and CPU costs —
//! so a completely different preprocessing pipeline plugs in untouched.
//!
//! The audio pipeline mirrors a speech/audio-classification loader:
//!
//! 1. **Decode** — Rice-coded lossless bytes → 16-bit PCM ([`codec`], a
//!    FLAC-style fixed-predictor + Rice-residual coder whose output size is
//!    genuinely content-dependent: tonal clips compress far better than
//!    noisy ones);
//! 2. **Resample** — to the model's rate (linear interpolation);
//! 3. **RandomCrop** — a random fixed-length window (epoch-varying, keyed
//!    like the image pipeline's augmentations);
//! 4. **MelSpectrogram** — radix-2 FFT ([`fft`]) → mel filterbank
//!    ([`mel`]) → log power, the classic feature front-end;
//! 5. **Normalize** — per-clip standardization.
//!
//! The size profile differs from images in an instructive way: the mel
//! spectrogram is *smaller* than the PCM it came from, so for most clips
//! the minimum lies at the **end** of the pipeline — SOPHON offloads the
//! whole front-end to storage — while strongly tonal clips are smallest in
//! their compressed form and stay un-offloaded. Same engine, opposite
//! split structure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod corpus;
mod data;
pub mod fft;
pub mod mel;
mod ops;
mod profile;
mod waveform;

pub use corpus::{AudioDatasetSpec, ClipRecord};
pub use data::AudioData;
pub use ops::{AudioOp, AudioPipeline, AudioPipelineError};
pub use profile::{profile_clip, AUDIO_OP_LABELS};
pub use waveform::{SynthAudioSpec, Waveform, WaveformError};
