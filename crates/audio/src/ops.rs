//! The audio preprocessing operations and pipeline, with split execution.
//!
//! Mirrors the image pipeline's contract: each op is a pure function of its
//! input and a per-`(sample, epoch, op)` augmentation stream, so any prefix
//! can run near storage and any suffix on the compute node with bit-exact
//! results.

use pipeline::{AugmentRng, SampleKey, SplitPoint};

use crate::codec::AudioCodecError;
use crate::mel::{mel_spectrogram, MelError};
use crate::waveform::WaveformError;
use crate::AudioData;

/// An audio preprocessing operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AudioOp {
    /// Rice-coded bytes → PCM.
    Decode,
    /// Linear resample to a target rate.
    Resample {
        /// Target sample rate in Hz.
        to_hz: u32,
    },
    /// Random fixed-length window (epoch-varying augmentation). Clips
    /// shorter than the window are kept whole.
    RandomCrop {
        /// Window length in milliseconds.
        millis: u32,
    },
    /// PCM → log-mel features.
    MelSpectrogram {
        /// FFT size (power of two).
        n_fft: u16,
        /// Hop between frames.
        hop: u16,
        /// Mel bands.
        n_mels: u16,
    },
    /// Per-clip feature standardization.
    Normalize,
}

impl AudioOp {
    /// Whether this op draws from the augmentation stream (its output
    /// varies per epoch).
    pub fn is_random(self) -> bool {
        matches!(self, AudioOp::RandomCrop { .. })
    }

    /// Short name for traces and profiles.
    pub fn name(self) -> &'static str {
        match self {
            AudioOp::Decode => "audio_decode",
            AudioOp::Resample { .. } => "resample",
            AudioOp::RandomCrop { .. } => "random_crop",
            AudioOp::MelSpectrogram { .. } => "mel_spectrogram",
            AudioOp::Normalize => "normalize_features",
        }
    }

    /// Applies the operation.
    ///
    /// # Errors
    ///
    /// Returns [`AudioPipelineError`] on stage mismatches or decode
    /// failures.
    pub fn apply(
        self,
        data: AudioData,
        rng: &mut AugmentRng,
    ) -> Result<AudioData, AudioPipelineError> {
        match (self, data) {
            (AudioOp::Decode, AudioData::Encoded(bytes)) => {
                Ok(AudioData::Pcm(crate::codec::decode(&bytes)?))
            }
            (AudioOp::Resample { to_hz }, AudioData::Pcm(w)) => {
                Ok(AudioData::Pcm(w.resample(to_hz)?))
            }
            (AudioOp::RandomCrop { millis }, AudioData::Pcm(w)) => {
                let want = (u64::from(millis) * u64::from(w.sample_rate()) / 1000) as usize;
                if want == 0 || want >= w.len() {
                    return Ok(AudioData::Pcm(w));
                }
                let offset = rng.next_below((w.len() - want + 1) as u64) as usize;
                Ok(AudioData::Pcm(w.window(offset, want)?))
            }
            (AudioOp::MelSpectrogram { n_fft, hop, n_mels }, AudioData::Pcm(w)) => {
                Ok(AudioData::Features(mel_spectrogram(
                    &w,
                    usize::from(n_fft),
                    usize::from(hop),
                    usize::from(n_mels),
                )?))
            }
            (AudioOp::Normalize, AudioData::Features(mut s)) => {
                s.normalize();
                Ok(AudioData::Features(s))
            }
            (op, data) => Err(AudioPipelineError::StageMismatch {
                op,
                got: match data {
                    AudioData::Encoded(_) => "encoded",
                    AudioData::Pcm(_) => "pcm",
                    AudioData::Features(_) => "features",
                },
            }),
        }
    }
}

/// Errors from the audio pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AudioPipelineError {
    /// An op received data of the wrong stage.
    StageMismatch {
        /// The failing op.
        op: AudioOp,
        /// The stage it received.
        got: &'static str,
    },
    /// Decoding the stored bytes failed.
    Codec(AudioCodecError),
    /// A waveform kernel (resample/window) rejected its parameters.
    Waveform(WaveformError),
    /// Mel feature extraction failed.
    Mel(MelError),
    /// A split exceeds the pipeline length.
    SplitOutOfRange {
        /// Requested split.
        split: usize,
        /// Pipeline length.
        len: usize,
    },
}

impl std::fmt::Display for AudioPipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AudioPipelineError::StageMismatch { op, got } => {
                write!(f, "op {op:?} cannot consume {got} data")
            }
            AudioPipelineError::Codec(e) => write!(f, "audio decode failed: {e}"),
            AudioPipelineError::Waveform(e) => write!(f, "waveform op failed: {e}"),
            AudioPipelineError::Mel(e) => write!(f, "mel extraction failed: {e}"),
            AudioPipelineError::SplitOutOfRange { split, len } => {
                write!(f, "split {split} out of range for {len}-op pipeline")
            }
        }
    }
}

impl std::error::Error for AudioPipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AudioPipelineError::Codec(e) => Some(e),
            AudioPipelineError::Waveform(e) => Some(e),
            AudioPipelineError::Mel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AudioCodecError> for AudioPipelineError {
    fn from(e: AudioCodecError) -> Self {
        AudioPipelineError::Codec(e)
    }
}

impl From<WaveformError> for AudioPipelineError {
    fn from(e: WaveformError) -> Self {
        AudioPipelineError::Waveform(e)
    }
}

impl From<MelError> for AudioPipelineError {
    fn from(e: MelError) -> Self {
        AudioPipelineError::Mel(e)
    }
}

/// An ordered audio pipeline with split execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AudioPipeline {
    ops: Vec<AudioOp>,
}

impl AudioPipeline {
    /// Builds a pipeline from ops.
    pub fn new(ops: Vec<AudioOp>) -> AudioPipeline {
        AudioPipeline { ops }
    }

    /// The standard speech front-end: Decode → Resample(16 kHz) →
    /// RandomCrop(2 s) → MelSpectrogram(512/256/64) → Normalize.
    pub fn standard_train() -> AudioPipeline {
        AudioPipeline::new(vec![
            AudioOp::Decode,
            AudioOp::Resample { to_hz: 16_000 },
            AudioOp::RandomCrop { millis: 2_000 },
            AudioOp::MelSpectrogram { n_fft: 512, hop: 256, n_mels: 64 },
            AudioOp::Normalize,
        ])
    }

    /// The operations, in order.
    pub fn ops(&self) -> &[AudioOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    fn run_range(
        &self,
        mut data: AudioData,
        range: std::ops::Range<usize>,
        key: SampleKey,
    ) -> Result<AudioData, AudioPipelineError> {
        for idx in range {
            let mut rng = AugmentRng::for_op(key, idx);
            data = self.ops[idx].apply(data, &mut rng)?;
        }
        Ok(data)
    }

    /// Runs the whole pipeline.
    ///
    /// # Errors
    ///
    /// Propagates the first op failure.
    pub fn run(&self, data: AudioData, key: SampleKey) -> Result<AudioData, AudioPipelineError> {
        self.run_range(data, 0..self.ops.len(), key)
    }

    /// Runs only the offloaded prefix.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range splits; propagates op failures.
    pub fn run_prefix(
        &self,
        data: AudioData,
        split: SplitPoint,
        key: SampleKey,
    ) -> Result<AudioData, AudioPipelineError> {
        self.check(split)?;
        self.run_range(data, 0..split.offloaded_ops(), key)
    }

    /// Runs the remaining suffix.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range splits; propagates op failures.
    pub fn run_suffix(
        &self,
        data: AudioData,
        split: SplitPoint,
        key: SampleKey,
    ) -> Result<AudioData, AudioPipelineError> {
        self.check(split)?;
        self.run_range(data, split.offloaded_ops()..self.ops.len(), key)
    }

    fn check(&self, split: SplitPoint) -> Result<(), AudioPipelineError> {
        if split.offloaded_ops() > self.ops.len() {
            return Err(AudioPipelineError::SplitOutOfRange {
                split: split.offloaded_ops(),
                len: self.ops.len(),
            });
        }
        Ok(())
    }
}

impl pipeline::Modality for AudioPipeline {
    fn modality_name(&self) -> &'static str {
        "audio"
    }

    fn op_count(&self) -> usize {
        self.ops.len()
    }

    fn op_name(&self, idx: usize) -> &'static str {
        self.ops[idx].name()
    }

    fn op_is_random(&self, idx: usize) -> bool {
        self.ops[idx].is_random()
    }

    fn stage_supports_reencode(&self, _stage: usize) -> bool {
        // PCM and mel intermediates have no lossy re-encode pass; the
        // selective-compression planner is a no-op for audio.
        false
    }

    fn resize_off_split(&self) -> SplitPoint {
        // The size-reducing op analogous to the image crop is the random
        // window: Resize-Off offloads everything up to and including it.
        self.ops
            .iter()
            .position(|op| matches!(op, AudioOp::RandomCrop { .. }))
            .map(|i| SplitPoint::new(i + 1))
            .unwrap_or(SplitPoint::NONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthAudioSpec;

    fn encoded(seed: u64, tonality: f64) -> AudioData {
        let w = SynthAudioSpec::new(22_050, 3.0).tonality(tonality).render(seed);
        AudioData::Encoded(crate::codec::encode(&w))
    }

    #[test]
    fn full_pipeline_produces_features() {
        let out =
            AudioPipeline::standard_train().run(encoded(1, 0.6), SampleKey::new(9, 1, 0)).unwrap();
        let s = out.as_features().unwrap();
        assert_eq!(s.n_mels(), 64);
        // 2 s at 16 kHz with 512/256: (32000-512)/256+1 = 124 frames.
        assert_eq!(s.frames(), 124);
    }

    #[test]
    fn split_equals_unsplit_everywhere() {
        let spec = AudioPipeline::standard_train();
        let key = SampleKey::new(4, 7, 3);
        let full = spec.run(encoded(2, 0.5), key).unwrap();
        for split in 0..=spec.len() {
            let split = SplitPoint::new(split);
            let mid = spec.run_prefix(encoded(2, 0.5), split, key).unwrap();
            let out = spec.run_suffix(mid, split, key).unwrap();
            assert_eq!(out, full, "split {split:?} diverged");
        }
    }

    #[test]
    fn crops_vary_per_epoch() {
        let spec = AudioPipeline::standard_train();
        let a = spec.run(encoded(3, 0.5), SampleKey::new(1, 5, 0)).unwrap();
        let b = spec.run(encoded(3, 0.5), SampleKey::new(1, 5, 1)).unwrap();
        assert_ne!(a, b, "augmentation must vary across epochs");
    }

    #[test]
    fn stage_mismatch_reported() {
        let mut rng = AugmentRng::for_sample(0, 0, 0);
        let err = AudioOp::Normalize.apply(encoded(1, 0.5), &mut rng).unwrap_err();
        assert!(matches!(err, AudioPipelineError::StageMismatch { .. }));
    }

    #[test]
    fn short_clip_skips_crop() {
        let w = SynthAudioSpec::new(16_000, 0.5).render(8); // 0.5 s < 2 s crop
        let spec = AudioPipeline::standard_train();
        let out = spec
            .run(AudioData::Encoded(crate::codec::encode(&w)), SampleKey::new(0, 0, 0))
            .unwrap();
        assert!(out.as_features().is_some());
    }

    #[test]
    fn modality_impl_matches_pipeline_structure() {
        use pipeline::Modality;
        let spec = AudioPipeline::standard_train();
        let m: &dyn Modality = &spec;
        assert_eq!(m.modality_name(), "audio");
        assert_eq!(m.op_count(), 5);
        assert_eq!(m.op_name(0), "audio_decode");
        // Only the random window is epoch-varying: the cacheable prefix
        // is Decode + Resample, and Resize-Off splits after the crop.
        assert_eq!(m.deterministic_prefix_ops(), 2);
        assert!(m.split_is_epoch_stable(SplitPoint::new(2)));
        assert!(!m.split_is_epoch_stable(SplitPoint::new(3)));
        assert_eq!(m.resize_off_split(), SplitPoint::new(3));
        for stage in 0..=5 {
            assert!(!m.stage_supports_reencode(stage), "audio never re-encodes");
        }
    }

    #[test]
    fn out_of_range_split_rejected() {
        let spec = AudioPipeline::standard_train();
        let err = spec
            .run_prefix(encoded(1, 0.5), SplitPoint::new(9), SampleKey::new(0, 0, 0))
            .unwrap_err();
        assert!(matches!(err, AudioPipelineError::SplitOutOfRange { split: 9, len: 5 }));
    }
}
