//! Bridging the audio pipeline into SOPHON's generic profile model.
//!
//! The decision engine never inspects *which* operations a profile's stages
//! represent — only their output sizes and CPU costs
//! ([`pipeline::SampleProfile`] exposes exactly that). So an audio clip's
//! measured stages slot straight in; the `OpKind` labels carried by
//! [`pipeline::StageMeasurement`] are **nominal placeholders** (documented
//! in [`AUDIO_OP_LABELS`]) chosen only so existing tooling prints something
//! sensible.

use pipeline::{AugmentRng, OpKind, SampleKey, SampleProfile, StageMeasurement};

use crate::ops::AudioPipelineError;
use crate::{AudioData, AudioOp, AudioPipeline};

/// The nominal [`OpKind`] label used for each audio op inside a generic
/// profile, in the standard pipeline's order. Labels are for display only;
/// the engine is label-agnostic.
pub const AUDIO_OP_LABELS: [(AudioOp, OpKind); 5] = [
    (AudioOp::Decode, OpKind::Decode),
    (AudioOp::Resample { to_hz: 16_000 }, OpKind::Resize { size: 16_000 }),
    (AudioOp::RandomCrop { millis: 2_000 }, OpKind::RandomResizedCrop { size: 2_000 }),
    (AudioOp::MelSpectrogram { n_fft: 512, hop: 256, n_mels: 64 }, OpKind::ToTensor),
    (AudioOp::Normalize, OpKind::Normalize),
];

fn label_for(op: AudioOp) -> OpKind {
    match op {
        AudioOp::Decode => OpKind::Decode,
        AudioOp::Resample { to_hz } => OpKind::Resize { size: to_hz.max(1) },
        AudioOp::RandomCrop { millis } => OpKind::RandomResizedCrop { size: millis.max(1) },
        AudioOp::MelSpectrogram { .. } => OpKind::ToTensor,
        AudioOp::Normalize => OpKind::Normalize,
    }
}

/// Analytic per-sample CPU costs for audio ops, in seconds — the audio
/// analogue of [`pipeline::CostModel`], calibrated to scalar-DSP rates.
fn op_seconds(op: AudioOp, in_samples: u64, in_bytes: u64, out_values: u64) -> f64 {
    let ns = match op {
        // Rice decoding: ~6 ns per encoded byte + 4 ns per produced sample.
        AudioOp::Decode => in_bytes as f64 * 6.0 + out_values as f64 * 4.0,
        // Linear resampling: ~8 ns per output sample.
        AudioOp::Resample { .. } => out_values as f64 * 8.0,
        // Cropping is a copy.
        AudioOp::RandomCrop { .. } => out_values as f64 * 1.0,
        // FFT front-end: ~60 ns per input sample (n log n amortized + mel).
        AudioOp::MelSpectrogram { .. } => in_samples as f64 * 60.0,
        AudioOp::Normalize => out_values as f64 * 4.0,
    };
    ns * 1e-9
}

/// Measures one clip through an audio pipeline, producing a generic
/// [`SampleProfile`] the SOPHON engine consumes unmodified.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn profile_clip(
    spec: &AudioPipeline,
    data: AudioData,
    key: SampleKey,
) -> Result<SampleProfile, AudioPipelineError> {
    let raw_bytes = data.byte_len();
    let mut stages = Vec::with_capacity(spec.len());
    let mut current = data;
    for (idx, &op) in spec.ops().iter().enumerate() {
        let mut rng = AugmentRng::for_op(key, idx);
        let in_bytes = current.byte_len();
        let in_samples = match &current {
            AudioData::Pcm(w) => w.len() as u64,
            AudioData::Encoded(_) => 0,
            AudioData::Features(s) => s.as_slice().len() as u64,
        };
        let output = op.apply(current, &mut rng)?;
        let out_values = match &output {
            AudioData::Pcm(w) => w.len() as u64,
            AudioData::Features(s) => s.as_slice().len() as u64,
            AudioData::Encoded(b) => b.len() as u64,
        };
        stages.push(StageMeasurement {
            op: label_for(op),
            out_bytes: output.byte_len(),
            seconds: op_seconds(op, in_samples, in_bytes, out_values),
        });
        current = output;
    }
    Ok(SampleProfile { sample_id: key.sample_id, raw_bytes, stages })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{codec, SynthAudioSpec};

    fn profile(tonality: f64, seconds: f64, seed: u64) -> SampleProfile {
        let w = SynthAudioSpec::new(22_050, seconds).tonality(tonality).render(seed);
        profile_clip(
            &AudioPipeline::standard_train(),
            AudioData::Encoded(codec::encode(&w)),
            SampleKey::new(1, seed, 0),
        )
        .unwrap()
    }

    #[test]
    fn noisy_long_clips_minimize_at_features() {
        // A noisy 5 s clip: encoded ≈ PCM size; the 2 s crop + mel features
        // are far smaller, so the minimum sits at the end of the pipeline —
        // SOPHON would offload the whole front-end.
        let p = profile(0.1, 5.0, 3);
        let (stage, size) = p.min_stage();
        assert!(stage >= 4, "min stage {stage}");
        assert!(size < p.raw_bytes / 4);
        assert!(p.efficiency() > 0.0);
    }

    #[test]
    fn quiet_tonal_clips_stay_raw() {
        // A quiet, highly tonal clip (LPC residuals near zero) compresses
        // below its mel-feature size: raw is minimal, no offloading — the
        // audio analogue of the paper's "Sample B".
        let w = crate::SynthAudioSpec::new(22_050, 1.5).tonality(1.0).amplitude(0.12).render(3);
        let p = profile_clip(
            &AudioPipeline::standard_train(),
            AudioData::Encoded(codec::encode(&w)),
            SampleKey::new(1, 3, 0),
        )
        .unwrap();
        assert_eq!(
            p.min_stage().0,
            0,
            "sizes: {:?}",
            (0..=5).map(|s| p.size_at(s)).collect::<Vec<_>>()
        );
        assert_eq!(p.efficiency(), 0.0);
    }

    #[test]
    fn stage_sizes_follow_the_audio_structure() {
        let p = profile(0.5, 3.0, 9);
        // Decode: PCM at 22.05 kHz x 3 s x 2 B.
        assert_eq!(p.size_at(1), 2 * 66_150);
        // Resample to 16 kHz.
        assert_eq!(p.size_at(2), 2 * 48_000);
        // Crop to 2 s.
        assert_eq!(p.size_at(3), 2 * 32_000);
        // Mel: 124 frames x 64 mels x 4 B.
        assert_eq!(p.size_at(4), 124 * 64 * 4);
        assert_eq!(p.size_at(5), p.size_at(4));
        // Costs are positive and the FFT dominates.
        let mel_cost = p.stages[3].seconds;
        assert!(p.stages.iter().all(|s| s.seconds > 0.0));
        assert!(mel_cost > p.stages[2].seconds);
    }

    #[test]
    fn profiles_are_deterministic() {
        assert_eq!(profile(0.4, 2.5, 7), profile(0.4, 2.5, 7));
    }
}
