//! The unified stage-graph simulation core.
//!
//! Every simulator in this crate — single-node ([`crate::simulate_epoch`]),
//! traced, cached, and fleet ([`crate::simulate_fleet_epoch`]) — is one
//! configuration of the same machine: an epoch is a set of samples routed
//! through a graph of FIFO resource stages,
//!
//! ```text
//!            per node n:                        shared:
//! sample i ─▶ read[n] ─▶ storage CPU[n] ─▶ link[n] ─▶ compute CPU ─▶ GPU
//! ```
//!
//! with a bounded prefetch window gating stage entry (the loader may not
//! fetch batch `b` before batch `b - prefetch_batches` leaves the GPU) and
//! a pluggable [`SampleRouting`] deciding which node serves each sample.
//! The two-node paper testbed is the degenerate graph (one node, every
//! sample routed to it); the fleet model is the general one (N nodes,
//! replica failover with kill thresholds and per-node straggler speeds).
//!
//! CPU stages that a configuration does not provision are represented
//! explicitly as [`CpuStage::Unused`] rather than as phantom 1-core pools:
//! routing work to an unused stage is a typed error
//! ([`crate::SimError::NoStorageCores`] /
//! [`crate::SimError::NoComputeCores`]), and an unused stage reports zero
//! busy seconds.
//!
//! [`run_stage_graph`] is deterministic and purely virtual-time; the public
//! wrappers in `sim.rs`, `cache.rs`, `training.rs`, and `fleet.rs` are thin
//! adapters that build a node vector and a routing and reshape the
//! resulting [`StageGraphRun`].

use netsim::{Bandwidth, VirtualLink};
use serde::{Deserialize, Serialize};

use crate::resources::{CpuPool, FifoServer};
use crate::trace::SampleTrace;
use crate::{ClusterConfig, EpochSpec, EpochStats, SimError};

/// One storage node's resources in the stage graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetNodeConfig {
    /// CPU cores available for offloaded preprocessing on this node.
    pub storage_cores: usize,
    /// This node's link to the compute node, in bits per second.
    pub link_bps: f64,
    /// Service-rate multiplier: `1.0` is nominal, `0.5` is a straggler
    /// running reads and preprocessing at half speed.
    pub speed: f64,
}

impl FleetNodeConfig {
    /// A node matching the storage side of `config` at nominal speed.
    pub fn nominal(config: &ClusterConfig) -> FleetNodeConfig {
        FleetNodeConfig {
            storage_cores: config.storage_cores,
            link_bps: config.link_bps,
            speed: 1.0,
        }
    }

    /// Returns a copy with a different speed multiplier.
    ///
    /// # Panics
    ///
    /// Panics when `speed` is not finite and positive.
    #[must_use]
    pub fn with_speed(mut self, speed: f64) -> FleetNodeConfig {
        assert!(speed.is_finite() && speed > 0.0, "invalid node speed {speed}");
        self.speed = speed;
        self
    }
}

/// A storage node dying partway through an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KillEvent {
    /// The node that dies.
    pub node: usize,
    /// Fraction of the epoch's samples issued before the death; samples
    /// from that point on cannot use the node. `0.0` means dead from the
    /// start (e.g. steady-state epochs after a mid-run failure).
    pub after_fraction: f64,
}

impl KillEvent {
    /// Creates a kill event.
    ///
    /// # Panics
    ///
    /// Panics when `after_fraction` is outside `[0, 1]`.
    pub fn new(node: usize, after_fraction: f64) -> KillEvent {
        assert!(
            (0.0..=1.0).contains(&after_fraction),
            "kill fraction {after_fraction} outside [0, 1]"
        );
        KillEvent { node, after_fraction }
    }
}

/// Translates kill events into per-node sample-index thresholds: node `n`
/// is unusable for samples issued at or after `thresholds[n]`.
///
/// # Errors
///
/// Returns [`SimError::KillOutOfRange`] when an event names a node outside
/// `0..nodes`.
pub fn kill_thresholds(
    kills: &[KillEvent],
    nodes: usize,
    samples: usize,
) -> Result<Vec<usize>, SimError> {
    let mut dead_from = vec![usize::MAX; nodes];
    for event in kills {
        if event.node >= nodes {
            return Err(SimError::KillOutOfRange { node: event.node, nodes });
        }
        let at = (event.after_fraction * samples as f64).floor() as usize;
        dead_from[event.node] = dead_from[event.node].min(at);
    }
    Ok(dead_from)
}

/// A fault observed while routing samples through the stage graph.
///
/// Emitted through the observer hook of [`run_stage_graph_observed`] the
/// moment the router works around a failure, so callers (degraded-mode
/// replanners, chaos harnesses) can react mid-epoch instead of reading
/// aggregate counters after the fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// A sample skipped a dead owner and failed over to a later replica.
    Failover {
        /// The sample being routed (its index in the epoch).
        sample: u64,
        /// The dead node that was skipped.
        dead_node: usize,
    },
}

/// Which FIFO stage of the graph a [`StageSample`] was measured at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageKind {
    /// The serving node's storage read stage.
    Read,
    /// The serving node's offloaded-preprocessing CPU stage.
    StorageCpu,
    /// The serving node's link to the compute node.
    Link,
    /// The shared compute-node CPU stage.
    ComputeCpu,
}

/// One stage completion, as seen by the observer hook of
/// [`run_stage_graph_adaptive`].
///
/// `service_seconds` is the time the stage actively worked on the sample;
/// `wait_seconds` is the queueing delay in front of the stage
/// (`done - ready - service`). A telemetry consumer divides observed
/// service time by the nominal expectation to get the drift-channel ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageSample {
    /// The node that served the sample. The compute CPU stage is shared;
    /// its samples carry the serving node for attribution.
    pub node: usize,
    /// Which stage this measurement came from.
    pub stage: StageKind,
    /// The sample's index in loading order.
    pub sample: u64,
    /// The batch the sample belongs to.
    pub batch: u64,
    /// Virtual time the stage finished the sample.
    pub done: f64,
    /// Seconds the stage actively spent on the sample.
    pub service_seconds: f64,
    /// Seconds the sample queued before the stage started it.
    pub wait_seconds: f64,
}

/// A mid-epoch change to one node's modelled resources — a chaos event
/// (straggler onset, link squeeze) or a recovery.
///
/// Fields left `None` keep their current value; non-finite or non-positive
/// replacements are ignored rather than corrupting the graph.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeUpdate {
    /// The node to update.
    pub node: usize,
    /// New service-rate multiplier for reads and offloaded preprocessing.
    pub speed: Option<f64>,
    /// New link bandwidth in bits per second.
    pub link_bps: Option<f64>,
}

/// What the per-batch controller hook of [`run_stage_graph_adaptive`] wants
/// changed before the next batch is issued.
#[derive(Debug, Clone, Default)]
pub struct EpochDirective {
    /// Replacement per-sample works (a revised offloading plan lowered to
    /// sim works). Must be parallel to the epoch's samples; only samples
    /// not yet issued are affected.
    pub works: Option<Vec<crate::SampleWork>>,
    /// Node resource changes (chaos injections or controller estimates).
    pub node_updates: Vec<NodeUpdate>,
}

/// One node's share of an epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeEpochStats {
    /// Samples this node served.
    pub samples_served: u64,
    /// Bytes this node pushed over its link.
    pub traffic_bytes: u64,
    /// Core-seconds of offloaded preprocessing executed here.
    pub storage_cpu_busy_seconds: f64,
    /// Seconds this node's link spent transferring.
    pub link_busy_seconds: f64,
}

/// A CPU stage that may be explicitly absent.
///
/// Configurations with zero cores at a stage used to be modelled with a
/// phantom 1-core pool that work was carefully routed around; the explicit
/// variant makes "this stage does not exist" a state the scheduler can
/// reject with a typed error instead of an invariant the caller must
/// remember.
#[derive(Debug, Clone)]
pub enum CpuStage {
    /// A provisioned pool.
    Active(CpuPool),
    /// The stage does not exist in this configuration; routing work to it
    /// is an error.
    Unused,
}

impl CpuStage {
    /// A stage with `cores` cores; zero cores means [`CpuStage::Unused`].
    pub fn with_cores(cores: usize) -> CpuStage {
        if cores == 0 {
            CpuStage::Unused
        } else {
            CpuStage::Active(CpuPool::new(cores))
        }
    }

    /// Schedules `seconds` of one core starting no earlier than `ready`;
    /// `None` when the stage is unused.
    pub fn run(&mut self, ready: f64, seconds: f64) -> Option<f64> {
        match self {
            CpuStage::Active(pool) => Some(pool.run(ready, seconds)),
            CpuStage::Unused => None,
        }
    }

    /// Total core-seconds executed (zero for an unused stage).
    pub fn busy_seconds(&self) -> f64 {
        match self {
            CpuStage::Active(pool) => pool.busy_seconds(),
            CpuStage::Unused => 0.0,
        }
    }
}

/// How samples are assigned to serving nodes.
#[derive(Debug, Clone, Copy)]
pub enum SampleRouting<'a> {
    /// Every sample is served by node 0 (the two-node testbed).
    SingleNode,
    /// `owners[i]` is sample `i`'s ordered replica set (primary first); the
    /// sample is served by its first owner whose kill threshold
    /// (`dead_from`, from [`kill_thresholds`]) has not yet passed when the
    /// sample is issued. Skipped dead owners count as failovers.
    ReplicaFailover {
        /// Per-sample ordered replica sets, parallel to the epoch's
        /// samples.
        owners: &'a [Vec<usize>],
        /// Per-node death thresholds (sample index at which the node
        /// becomes unusable), parallel to the node vector.
        dead_from: &'a [usize],
    },
}

/// The raw outcome of one stage-graph epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct StageGraphRun {
    /// Virtual seconds until the last batch left the GPU.
    pub epoch_seconds: f64,
    /// Seconds the GPU spent computing.
    pub gpu_busy_seconds: f64,
    /// Core-seconds of preprocessing executed on the compute node.
    pub compute_cpu_busy_seconds: f64,
    /// Per-node read/CPU/link accounting, parallel to the node vector.
    pub per_node: Vec<NodeEpochStats>,
    /// Samples that were rerouted past a dead owner.
    pub failovers: u64,
    /// Samples processed.
    pub samples: u64,
    /// GPU batches executed.
    pub batches: u64,
    /// GPUs in the configuration.
    pub gpus: u64,
}

impl StageGraphRun {
    /// Collapses the per-node breakdown into aggregate epoch statistics
    /// (traffic, storage CPU, and link busy-seconds summed over nodes).
    pub fn total_stats(&self) -> EpochStats {
        EpochStats {
            epoch_seconds: self.epoch_seconds,
            traffic_bytes: self.per_node.iter().map(|n| n.traffic_bytes).sum(),
            gpu_busy_seconds: self.gpu_busy_seconds,
            storage_cpu_busy_seconds: self
                .per_node
                .iter()
                .map(|n| n.storage_cpu_busy_seconds)
                .sum(),
            compute_cpu_busy_seconds: self.compute_cpu_busy_seconds,
            link_busy_seconds: self.per_node.iter().map(|n| n.link_busy_seconds).sum(),
            samples: self.samples,
            batches: self.batches,
            gpus: self.gpus,
        }
    }
}

/// Simulates one epoch of `spec` over the stage graph defined by `nodes`
/// and `routing`, with `base` supplying the shared compute side (cores,
/// GPUs, prefetch window), the nominal storage read rate, and the link
/// latency.
///
/// Per-sample flow (all FIFO, pipelined): storage read on the serving node
/// (scaled by its `speed`), offloaded preprocessing on that node's CPU
/// stage (skipped when the sample offloads nothing), transfer over that
/// node's link, remaining preprocessing on the shared compute CPU stage
/// (skipped when fully offloaded), then one GPU step per batch once every
/// sample of the batch is ready.
///
/// When `trace` is supplied, one [`SampleTrace`] per sample is appended in
/// loading order (`batch_done` is filled as each batch leaves the GPU).
///
/// # Errors
///
/// * [`SimError::EmptyFleet`] — `nodes` is empty.
/// * [`SimError::OwnersMismatch`] / [`SimError::OwnerOutOfRange`] —
///   malformed replica sets.
/// * [`SimError::SampleUnreachable`] — a sample's owners are all dead.
/// * [`SimError::NoStorageCores`] / [`SimError::NoComputeCores`] — work
///   routed to an [`CpuStage::Unused`] stage.
/// * [`SimError::NoGpus`] — the configuration has zero GPUs.
pub fn run_stage_graph(
    base: &ClusterConfig,
    nodes: &[FleetNodeConfig],
    spec: &EpochSpec,
    routing: SampleRouting<'_>,
    trace: Option<&mut Vec<SampleTrace>>,
) -> Result<StageGraphRun, SimError> {
    run_stage_graph_observed(base, nodes, spec, routing, trace, None)
}

/// [`run_stage_graph`] with a fault observer: `hook` is invoked once per
/// [`FaultEvent`], in sample-issue order, as the router encounters each
/// fault. The hook sees events *before* the run returns, which is what a
/// degraded-mode replanner needs — by the time aggregate counters exist the
/// epoch is already over.
///
/// # Errors
///
/// Same conditions as [`run_stage_graph`].
pub fn run_stage_graph_observed(
    base: &ClusterConfig,
    nodes: &[FleetNodeConfig],
    spec: &EpochSpec,
    routing: SampleRouting<'_>,
    trace: Option<&mut Vec<SampleTrace>>,
    hook: Option<&mut dyn FnMut(FaultEvent)>,
) -> Result<StageGraphRun, SimError> {
    run_stage_graph_inner(base, nodes, spec, routing, trace, hook, None, None)
}

/// The fully instrumented, mid-epoch-adaptive stage graph.
///
/// Two hooks extend [`run_stage_graph_observed`]:
///
/// * `stage_hook` fires once per stage completion (read, offloaded CPU,
///   link, local CPU) with that stage's service and queueing time — the raw
///   material for telemetry rate/drift channels.
/// * `batch_hook` fires before each batch is issued with `(batch, now)`
///   (`now` = the previous batch's GPU completion, `0.0` for batch 0) and
///   returns an [`EpochDirective`]: optional replacement sample works (a
///   revised offloading plan lowered to works — only not-yet-issued samples
///   are affected) and node resource updates (chaos events or controller
///   estimates). This is the simulator analogue of
///   `OffloadingLoader::run_epoch_with_replan`'s replan callback, with the
///   same batch-boundary granularity.
///
/// Routing is untouched by directives: which node serves a sample never
/// changes mid-epoch, so sample order — and hence any order-derived batch
/// digest — is identical under any directive sequence.
///
/// # Errors
///
/// Same conditions as [`run_stage_graph`], plus
/// [`SimError::WorksMismatch`] when a directive's replacement works are not
/// parallel to the epoch's samples and [`SimError::UpdateOutOfRange`] when
/// a node update names a node outside the fleet.
#[allow(clippy::too_many_arguments)]
pub fn run_stage_graph_adaptive(
    base: &ClusterConfig,
    nodes: &[FleetNodeConfig],
    spec: &EpochSpec,
    routing: SampleRouting<'_>,
    trace: Option<&mut Vec<SampleTrace>>,
    fault_hook: Option<&mut dyn FnMut(FaultEvent)>,
    stage_hook: Option<&mut dyn FnMut(StageSample)>,
    batch_hook: Option<&mut dyn FnMut(u64, f64) -> EpochDirective>,
) -> Result<StageGraphRun, SimError> {
    run_stage_graph_inner(base, nodes, spec, routing, trace, fault_hook, stage_hook, batch_hook)
}

#[allow(clippy::too_many_arguments)]
fn run_stage_graph_inner(
    base: &ClusterConfig,
    nodes: &[FleetNodeConfig],
    spec: &EpochSpec,
    routing: SampleRouting<'_>,
    mut trace: Option<&mut Vec<SampleTrace>>,
    mut hook: Option<&mut dyn FnMut(FaultEvent)>,
    mut stage_hook: Option<&mut dyn FnMut(StageSample)>,
    mut batch_hook: Option<&mut dyn FnMut(u64, f64) -> EpochDirective>,
) -> Result<StageGraphRun, SimError> {
    if nodes.is_empty() {
        return Err(SimError::EmptyFleet);
    }
    if let SampleRouting::ReplicaFailover { owners, dead_from } = &routing {
        if owners.len() != spec.samples.len() {
            return Err(SimError::OwnersMismatch {
                owners: owners.len(),
                samples: spec.samples.len(),
            });
        }
        if dead_from.len() != nodes.len() {
            return Err(SimError::ThresholdsMismatch {
                thresholds: dead_from.len(),
                nodes: nodes.len(),
            });
        }
        for (i, replicas) in owners.iter().enumerate() {
            for &owner in replicas {
                if owner >= nodes.len() {
                    return Err(SimError::OwnerOutOfRange {
                        sample: i as u64,
                        owner,
                        nodes: nodes.len(),
                    });
                }
            }
        }
    }

    let needs_compute_cpu = spec.samples.iter().any(|s| s.compute_cpu_seconds > 0.0);
    if needs_compute_cpu && base.compute_cores == 0 {
        return Err(SimError::NoComputeCores);
    }
    if base.gpus == 0 {
        return Err(SimError::NoGpus);
    }

    let mut reads: Vec<FifoServer> = nodes.iter().map(|_| FifoServer::new()).collect();
    let mut storage_cpus: Vec<CpuStage> =
        nodes.iter().map(|n| CpuStage::with_cores(n.storage_cores)).collect();
    let mut links: Vec<VirtualLink> = nodes
        .iter()
        .map(|n| VirtualLink::with_latency(Bandwidth::from_bps(n.link_bps), base.link_latency))
        .collect();
    let mut compute_cpu = CpuStage::with_cores(base.compute_cores);
    // Data-parallel GPUs: each batch occupies one GPU; batches may overlap
    // across GPUs (gradient sync is folded into the per-batch time).
    let mut gpu = CpuPool::new(base.gpus);
    let mut served = vec![0u64; nodes.len()];
    let mut failovers = 0u64;
    // Live-mutable node state: directives change speeds and link rates
    // mid-epoch without touching the caller's node vector.
    let mut speeds: Vec<f64> = nodes.iter().map(|n| n.speed).collect();
    let mut works_override: Option<Vec<crate::SampleWork>> = None;

    let batch_count = spec.batch_count();
    let mut batch_done = vec![0.0f64; batch_count];
    let gpu_seconds_per_image = spec.gpu.seconds_per_image();

    let mut sample_idx = 0usize;
    for batch in 0..batch_count {
        if let Some(control) = batch_hook.as_deref_mut() {
            let now = if batch > 0 { batch_done[batch - 1] } else { 0.0 };
            let directive = control(batch as u64, now);
            if let Some(works) = directive.works {
                if works.len() != spec.samples.len() {
                    return Err(SimError::WorksMismatch {
                        got: works.len(),
                        samples: spec.samples.len(),
                    });
                }
                works_override = Some(works);
            }
            for update in directive.node_updates {
                if update.node >= nodes.len() {
                    return Err(SimError::UpdateOutOfRange {
                        node: update.node,
                        nodes: nodes.len(),
                    });
                }
                if let Some(speed) = update.speed {
                    if speed.is_finite() && speed > 0.0 {
                        speeds[update.node] = speed;
                    }
                }
                if let Some(bps) = update.link_bps {
                    if bps.is_finite() && bps > 0.0 {
                        links[update.node].set_bandwidth(Bandwidth::from_bps(bps));
                    }
                }
            }
        }
        // Prefetch gate: wait for batch `batch - window` to leave the GPU.
        let gate = if batch >= base.prefetch_batches {
            batch_done[batch - base.prefetch_batches]
        } else {
            0.0
        };
        let in_batch = spec.samples.len().saturating_sub(sample_idx).min(spec.batch_size);
        let mut batch_ready = gate;
        for _ in 0..in_batch {
            let w = works_override.as_ref().map_or(&spec.samples[sample_idx], |v| &v[sample_idx]);
            // Route: which node serves this sample.
            let node = match &routing {
                SampleRouting::SingleNode => 0,
                SampleRouting::ReplicaFailover { owners, dead_from } => {
                    let mut chosen = None;
                    for &owner in &owners[sample_idx] {
                        if sample_idx < dead_from[owner] {
                            chosen = Some(owner);
                            break;
                        }
                        failovers += 1;
                        if let Some(observe) = hook.as_deref_mut() {
                            observe(FaultEvent::Failover {
                                sample: sample_idx as u64,
                                dead_node: owner,
                            });
                        }
                    }
                    match chosen {
                        Some(node) => node,
                        None => {
                            return Err(SimError::SampleUnreachable { sample: sample_idx as u64 })
                        }
                    }
                }
            };
            served[node] += 1;
            let speed = speeds[node];
            let observe_stage = |hook: &mut Option<&mut dyn FnMut(StageSample)>,
                                 stage: StageKind,
                                 ready: f64,
                                 done: f64,
                                 service_seconds: f64| {
                if let Some(observe) = hook.as_deref_mut() {
                    observe(StageSample {
                        node,
                        stage,
                        sample: sample_idx as u64,
                        batch: batch as u64,
                        done,
                        service_seconds,
                        wait_seconds: (done - ready - service_seconds).max(0.0),
                    });
                }
            };
            // 1. storage read on the serving node (scaled by its speed).
            let read_s = w.transfer_bytes as f64 / (base.storage_read_bytes_per_sec * speed);
            let read_done = reads[node].run(gate, read_s);
            observe_stage(&mut stage_hook, StageKind::Read, gate, read_done, read_s);
            // 2. offloaded preprocessing on the serving node's CPU stage.
            let offload_done = if w.storage_cpu_seconds > 0.0 {
                let service = w.storage_cpu_seconds / speed;
                let done =
                    storage_cpus[node].run(read_done, service).ok_or(SimError::NoStorageCores)?;
                observe_stage(&mut stage_hook, StageKind::StorageCpu, read_done, done, service);
                done
            } else {
                read_done
            };
            // 3. transfer over the serving node's own link.
            // `VirtualLink::transfer` serializes from submission order;
            // ready-time ordering is preserved because samples are
            // submitted in loading order and offload_done is produced by
            // FIFO pools.
            let link_service =
                links[node].bandwidth().transfer_seconds(w.transfer_bytes) + base.link_latency;
            let transfer_done = links[node].transfer(offload_done, w.transfer_bytes);
            observe_stage(
                &mut stage_hook,
                StageKind::Link,
                offload_done,
                transfer_done,
                link_service,
            );
            // 4. local preprocessing on the shared compute stage.
            let local_done = if w.compute_cpu_seconds > 0.0 {
                let done = compute_cpu
                    .run(transfer_done, w.compute_cpu_seconds)
                    .ok_or(SimError::NoComputeCores)?;
                observe_stage(
                    &mut stage_hook,
                    StageKind::ComputeCpu,
                    transfer_done,
                    done,
                    w.compute_cpu_seconds,
                );
                done
            } else {
                transfer_done
            };
            batch_ready = batch_ready.max(local_done);
            if let Some(t) = trace.as_deref_mut() {
                t.push(SampleTrace {
                    sample: sample_idx as u64,
                    batch: batch as u64,
                    gate,
                    read_done,
                    offload_done,
                    transfer_done,
                    local_done,
                    batch_done: 0.0, // filled once the batch's GPU step ends
                });
            }
            sample_idx += 1;
        }
        // 5. GPU step for the batch.
        let gpu_s = gpu_seconds_per_image * in_batch as f64;
        batch_done[batch] = gpu.run(batch_ready, gpu_s);
        if let Some(t) = trace.as_deref_mut() {
            for entry in t.iter_mut().rev() {
                if entry.batch != batch as u64 {
                    break;
                }
                entry.batch_done = batch_done[batch];
            }
        }
    }

    let per_node: Vec<NodeEpochStats> = (0..nodes.len())
        .map(|n| NodeEpochStats {
            samples_served: served[n],
            traffic_bytes: links[n].total_bytes(),
            storage_cpu_busy_seconds: storage_cpus[n].busy_seconds(),
            link_busy_seconds: links[n].busy_seconds(),
        })
        .collect();
    Ok(StageGraphRun {
        epoch_seconds: batch_done.last().copied().unwrap_or(0.0),
        gpu_busy_seconds: gpu.busy_seconds(),
        compute_cpu_busy_seconds: compute_cpu.busy_seconds(),
        per_node,
        failovers,
        samples: spec.samples.len() as u64,
        batches: batch_count as u64,
        gpus: base.gpus as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuModel, SampleWork};

    fn base() -> ClusterConfig {
        ClusterConfig::paper_testbed(4)
    }

    fn spec(n: usize) -> EpochSpec {
        EpochSpec::new(vec![SampleWork::new(0.001, 100_000, 0.002); n], 32, GpuModel::AlexNet)
    }

    #[test]
    fn unused_stage_reports_zero_busy() {
        let mut stage = CpuStage::with_cores(0);
        assert!(matches!(stage, CpuStage::Unused));
        assert_eq!(stage.run(0.0, 1.0), None);
        assert_eq!(stage.busy_seconds(), 0.0);
        let mut live = CpuStage::with_cores(2);
        assert_eq!(live.run(0.0, 1.0), Some(1.0));
        assert_eq!(live.busy_seconds(), 1.0);
    }

    #[test]
    fn empty_fleet_is_a_typed_error() {
        let err =
            run_stage_graph(&base(), &[], &spec(4), SampleRouting::SingleNode, None).unwrap_err();
        assert_eq!(err, SimError::EmptyFleet);
    }

    #[test]
    fn mismatched_owners_are_a_typed_error() {
        let nodes = [FleetNodeConfig::nominal(&base())];
        let owners = vec![vec![0usize]; 3];
        let dead = [usize::MAX];
        let err = run_stage_graph(
            &base(),
            &nodes,
            &spec(4),
            SampleRouting::ReplicaFailover { owners: &owners, dead_from: &dead },
            None,
        )
        .unwrap_err();
        assert_eq!(err, SimError::OwnersMismatch { owners: 3, samples: 4 });
    }

    #[test]
    fn out_of_range_owner_is_a_typed_error() {
        let nodes = [FleetNodeConfig::nominal(&base())];
        let owners = vec![vec![0usize], vec![7], vec![0], vec![0]];
        let dead = [usize::MAX];
        let err = run_stage_graph(
            &base(),
            &nodes,
            &spec(4),
            SampleRouting::ReplicaFailover { owners: &owners, dead_from: &dead },
            None,
        )
        .unwrap_err();
        assert_eq!(err, SimError::OwnerOutOfRange { sample: 1, owner: 7, nodes: 1 });
    }

    #[test]
    fn kill_thresholds_validate_node_indices() {
        let err = kill_thresholds(&[KillEvent::new(3, 0.5)], 2, 100).unwrap_err();
        assert_eq!(err, SimError::KillOutOfRange { node: 3, nodes: 2 });
        let ok = kill_thresholds(&[KillEvent::new(1, 0.5)], 2, 100).unwrap();
        assert_eq!(ok, vec![usize::MAX, 50]);
    }

    #[test]
    fn fault_hook_sees_every_failover_in_issue_order() {
        let nodes = vec![FleetNodeConfig::nominal(&base()); 2];
        // Primary node 1, replica node 0; node 1 dead from sample 2.
        let owners = vec![vec![1usize, 0]; 4];
        let dead = [usize::MAX, 2];
        let mut events = Vec::new();
        let mut hook = |e: FaultEvent| events.push(e);
        let run = run_stage_graph_observed(
            &base(),
            &nodes,
            &spec(4),
            SampleRouting::ReplicaFailover { owners: &owners, dead_from: &dead },
            None,
            Some(&mut hook),
        )
        .unwrap();
        assert_eq!(run.failovers, 2);
        assert_eq!(
            events,
            vec![
                FaultEvent::Failover { sample: 2, dead_node: 1 },
                FaultEvent::Failover { sample: 3, dead_node: 1 },
            ]
        );
    }

    #[test]
    fn thresholds_mismatch_is_a_typed_error() {
        let nodes = vec![FleetNodeConfig::nominal(&base()); 2];
        let owners = vec![vec![0usize]; 4];
        let dead = [usize::MAX]; // one threshold for two nodes
        let err = run_stage_graph(
            &base(),
            &nodes,
            &spec(4),
            SampleRouting::ReplicaFailover { owners: &owners, dead_from: &dead },
            None,
        )
        .unwrap_err();
        assert_eq!(err, SimError::ThresholdsMismatch { thresholds: 1, nodes: 2 });
    }

    #[test]
    fn adaptive_without_hooks_matches_plain_run() {
        let nodes = [FleetNodeConfig::nominal(&base())];
        let s = spec(64);
        let plain = run_stage_graph(&base(), &nodes, &s, SampleRouting::SingleNode, None).unwrap();
        let adaptive = run_stage_graph_adaptive(
            &base(),
            &nodes,
            &s,
            SampleRouting::SingleNode,
            None,
            None,
            None,
            None,
        )
        .unwrap();
        assert_eq!(plain, adaptive);
    }

    #[test]
    fn stage_hook_emits_causal_samples_for_every_stage() {
        let nodes = [FleetNodeConfig::nominal(&base())];
        let s = spec(8);
        let mut samples = Vec::new();
        let mut hook = |e: StageSample| samples.push(e);
        run_stage_graph_adaptive(
            &base(),
            &nodes,
            &s,
            SampleRouting::SingleNode,
            None,
            None,
            Some(&mut hook),
            None,
        )
        .unwrap();
        // Every sample offloads and preprocesses locally: 4 stages each.
        assert_eq!(samples.len(), 8 * 4);
        for e in &samples {
            assert!(e.service_seconds > 0.0, "{e:?}");
            assert!(e.wait_seconds >= 0.0, "{e:?}");
            assert!(e.done >= e.service_seconds, "{e:?}");
        }
        let reads = samples.iter().filter(|e| e.stage == StageKind::Read).count();
        let links = samples.iter().filter(|e| e.stage == StageKind::Link).count();
        assert_eq!((reads, links), (8, 8));
    }

    #[test]
    fn directive_swaps_works_mid_epoch() {
        let nodes = [FleetNodeConfig::nominal(&base())];
        let s = spec(128); // 4 batches of 32, 100 KB per sample
        let slim = vec![crate::SampleWork::new(0.002, 10_000, 0.0); 128];
        let mut hook = |batch: u64, _now: f64| -> EpochDirective {
            if batch == 2 {
                EpochDirective { works: Some(slim.clone()), node_updates: Vec::new() }
            } else {
                EpochDirective::default()
            }
        };
        let run = run_stage_graph_adaptive(
            &base(),
            &nodes,
            &s,
            SampleRouting::SingleNode,
            None,
            None,
            None,
            Some(&mut hook),
        )
        .unwrap();
        // Batches 0-1 moved 100 KB per sample, batches 2-3 moved 10 KB.
        let expect = 64 * 100_000 + 64 * 10_000;
        assert_eq!(run.per_node[0].traffic_bytes, expect);
    }

    #[test]
    fn node_updates_slow_the_graph_mid_epoch() {
        let nodes = [FleetNodeConfig::nominal(&base())];
        let s = spec(128);
        let baseline =
            run_stage_graph(&base(), &nodes, &s, SampleRouting::SingleNode, None).unwrap();
        let mut hook = |batch: u64, _now: f64| -> EpochDirective {
            let mut d = EpochDirective::default();
            if batch == 2 {
                // Straggler onset plus a link squeeze on node 0.
                d.node_updates.push(NodeUpdate {
                    node: 0,
                    speed: Some(0.25),
                    link_bps: Some(base().link_bps * 0.25),
                });
            }
            d
        };
        let squeezed = run_stage_graph_adaptive(
            &base(),
            &nodes,
            &s,
            SampleRouting::SingleNode,
            None,
            None,
            None,
            Some(&mut hook),
        )
        .unwrap();
        assert!(
            squeezed.epoch_seconds > baseline.epoch_seconds * 1.5,
            "squeezed {} baseline {}",
            squeezed.epoch_seconds,
            baseline.epoch_seconds
        );
        // Non-finite and non-positive updates are ignored, not applied.
        let mut bad = |_: u64, _: f64| -> EpochDirective {
            EpochDirective {
                works: None,
                node_updates: vec![NodeUpdate {
                    node: 0,
                    speed: Some(f64::NAN),
                    link_bps: Some(-1.0),
                }],
            }
        };
        let unchanged = run_stage_graph_adaptive(
            &base(),
            &nodes,
            &s,
            SampleRouting::SingleNode,
            None,
            None,
            None,
            Some(&mut bad),
        )
        .unwrap();
        assert_eq!(unchanged, baseline);
    }

    #[test]
    fn malformed_directives_are_typed_errors() {
        let nodes = [FleetNodeConfig::nominal(&base())];
        let s = spec(8);
        let mut short = |_: u64, _: f64| -> EpochDirective {
            EpochDirective {
                works: Some(vec![crate::SampleWork::new(0.0, 1, 0.0); 3]),
                node_updates: Vec::new(),
            }
        };
        let err = run_stage_graph_adaptive(
            &base(),
            &nodes,
            &s,
            SampleRouting::SingleNode,
            None,
            None,
            None,
            Some(&mut short),
        )
        .unwrap_err();
        assert_eq!(err, SimError::WorksMismatch { got: 3, samples: 8 });

        let mut oob = |_: u64, _: f64| -> EpochDirective {
            EpochDirective {
                works: None,
                node_updates: vec![NodeUpdate { node: 5, speed: Some(1.0), link_bps: None }],
            }
        };
        let err = run_stage_graph_adaptive(
            &base(),
            &nodes,
            &s,
            SampleRouting::SingleNode,
            None,
            None,
            None,
            Some(&mut oob),
        )
        .unwrap_err();
        assert_eq!(err, SimError::UpdateOutOfRange { node: 5, nodes: 1 });
    }

    #[test]
    fn single_node_routing_matches_replica_routing_to_node_zero() {
        let nodes = [FleetNodeConfig::nominal(&base())];
        let owners = vec![vec![0usize]; 64];
        let dead = [usize::MAX];
        let s = spec(64);
        let single = run_stage_graph(&base(), &nodes, &s, SampleRouting::SingleNode, None).unwrap();
        let routed = run_stage_graph(
            &base(),
            &nodes,
            &s,
            SampleRouting::ReplicaFailover { owners: &owners, dead_from: &dead },
            None,
        )
        .unwrap();
        assert_eq!(single, routed);
    }
}
