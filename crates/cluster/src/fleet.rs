//! Fleet-of-storage-nodes epoch model.
//!
//! Extends the two-node testbed to N storage nodes, each with its own CPU
//! pool, read path, and storage→compute link — a thin configuration of the
//! unified [`crate::stagegraph`] core with
//! [`SampleRouting::ReplicaFailover`] routing. The module is deliberately
//! mechanism-free, like [`crate::simulate_cached_training`]: callers supply
//! the per-sample **owner lists** (ordered replica sets, primary first —
//! built e.g. by `fleet::ShardMap::owners`), and this module only schedules
//! the resulting per-node queues. Placement policy, hashing, and transport
//! hedging live in the `fleet` crate; the simulator answers "what does this
//! placement cost" questions:
//!
//! * **Per-node links and cores** — each node is a [`FleetNodeConfig`]; a
//!   sample is read, offload-preprocessed, and transferred on *its serving
//!   node's* resources, so one hot shard becomes visible as one saturated
//!   link or CPU pool.
//! * **Node-kill events** — a [`KillEvent`] marks a node dead after a
//!   fraction of the epoch's samples have been issued; later samples fail
//!   over to the next surviving owner in their list (counted in
//!   [`FleetEpochStats::failovers`]), and samples with no surviving owner
//!   make the epoch fail with [`SimError::SampleUnreachable`].
//! * **Straggler distributions** — a node's `speed` scales its read and
//!   preprocessing service rate, so a seeded vector of speeds models a
//!   straggler distribution without any randomness inside the simulator.
//!
//! [`simulate_fleet_cached_training`] composes this model with the warm
//! near-compute cache of [`crate::simulate_cached_training`]: the cold
//! epoch fetches everything from the fleet and fills the cache, warm epochs
//! fetch only the uncached residual — still routed through each sample's
//! owners, so per-node hotspots and failovers remain visible.

use serde::{Deserialize, Serialize};

use crate::stagegraph::{kill_thresholds, run_stage_graph_observed, FaultEvent, SampleRouting};
use crate::training::{drive_training, EpochOutcome, TrainingPhase};
use crate::{ClusterConfig, EpochSpec, EpochStats, FleetNodeConfig, KillEvent, SimError};

pub use crate::stagegraph::NodeEpochStats;

/// Results of simulating one epoch over a storage fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetEpochStats {
    /// Fleet-wide aggregate. `traffic_bytes`, `storage_cpu_busy_seconds`,
    /// and `link_busy_seconds` sum over nodes, so
    /// [`EpochStats::link_utilization`] on this value measures utilization
    /// of the *aggregate* link capacity and can exceed 1.0 only if the
    /// per-node figures do.
    pub total: EpochStats,
    /// Per-node breakdown, in node order.
    pub per_node: Vec<NodeEpochStats>,
    /// Samples that were rerouted past a dead owner.
    pub failovers: u64,
}

impl FleetEpochStats {
    /// The busiest node's share of served samples — `1/n` is perfectly
    /// balanced, `1.0` means one node served everything.
    pub fn peak_node_share(&self) -> f64 {
        if self.total.samples == 0 {
            return 0.0;
        }
        let peak = self.per_node.iter().map(|n| n.samples_served).max().unwrap_or(0);
        peak as f64 / self.total.samples as f64
    }
}

impl EpochOutcome for FleetEpochStats {
    fn epoch_seconds(&self) -> f64 {
        self.total.epoch_seconds
    }
    fn traffic_bytes(&self) -> u64 {
        self.total.traffic_bytes
    }
}

/// Statistics of a multi-epoch training run over a fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTrainingStats {
    /// Total epochs executed.
    pub epochs: u64,
    /// The first epoch (where mid-epoch kill events land).
    pub first_epoch: FleetEpochStats,
    /// Steady-state epochs (killed nodes stay dead throughout).
    pub steady_epoch: FleetEpochStats,
    /// Total wall-clock (virtual) seconds.
    pub total_seconds: f64,
    /// Total bytes moved over all links.
    pub total_traffic_bytes: u64,
}

/// Statistics of a cached training run over a fleet: epoch 0 is the cold
/// (cache-filling) fleet epoch, every later epoch fetches only the uncached
/// residual through the same fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetCachedTrainingStats {
    /// The underlying run (first epoch = cold, steady = warm).
    pub run: FleetTrainingStats,
}

impl FleetCachedTrainingStats {
    /// The cold (cache-filling) fleet epoch's stats.
    pub fn cold(&self) -> &FleetEpochStats {
        &self.run.first_epoch
    }

    /// The steady-state warm fleet epoch's stats.
    pub fn warm(&self) -> &FleetEpochStats {
        &self.run.steady_epoch
    }

    /// Wire bytes a warm epoch avoids relative to the cold epoch.
    pub fn warm_bytes_saved(&self) -> u64 {
        self.cold().total.traffic_bytes.saturating_sub(self.warm().total.traffic_bytes)
    }

    /// Fraction of cold-epoch fleet traffic a warm epoch avoids (0 when
    /// the cold epoch moved nothing).
    pub fn warm_traffic_reduction(&self) -> f64 {
        if self.cold().total.traffic_bytes == 0 {
            0.0
        } else {
            self.warm_bytes_saved() as f64 / self.cold().total.traffic_bytes as f64
        }
    }
}

/// Simulates one epoch over a fleet of storage nodes.
///
/// `owners[i]` is sample `i`'s ordered replica set (primary first); the
/// sample is served by its first owner still alive when it is issued.
/// `base` supplies the compute side (cores, GPUs, prefetch window) and the
/// nominal storage read rate; each node's read and preprocessing service
/// times are divided by its `speed`.
///
/// # Errors
///
/// * [`SimError::EmptyFleet`] — `nodes` is empty.
/// * [`SimError::OwnersMismatch`] — `owners` is not parallel to
///   `spec.samples`.
/// * [`SimError::OwnerOutOfRange`] / [`SimError::KillOutOfRange`] — an
///   owner list or kill event names a node outside the fleet.
/// * [`SimError::SampleUnreachable`] — a sample's owners are all dead.
/// * [`SimError::NoStorageCores`] — offloaded work routed to a node with
///   zero cores.
/// * [`SimError::NoComputeCores`] / [`SimError::NoGpus`] — as
///   [`crate::simulate_epoch`].
pub fn simulate_fleet_epoch(
    base: &ClusterConfig,
    nodes: &[FleetNodeConfig],
    spec: &EpochSpec,
    owners: &[Vec<usize>],
    kills: &[KillEvent],
) -> Result<FleetEpochStats, SimError> {
    simulate_fleet_epoch_observed(base, nodes, spec, owners, kills, &mut |_| {})
}

/// [`simulate_fleet_epoch`] with a fault observer: `hook` fires once per
/// [`FaultEvent`] as the router encounters it (in sample-issue order), so a
/// degraded-mode replanner can react while the epoch is still in flight.
///
/// # Errors
///
/// Same conditions as [`simulate_fleet_epoch`].
pub fn simulate_fleet_epoch_observed(
    base: &ClusterConfig,
    nodes: &[FleetNodeConfig],
    spec: &EpochSpec,
    owners: &[Vec<usize>],
    kills: &[KillEvent],
    hook: &mut dyn FnMut(FaultEvent),
) -> Result<FleetEpochStats, SimError> {
    if nodes.is_empty() {
        return Err(SimError::EmptyFleet);
    }
    let dead_from = kill_thresholds(kills, nodes.len(), spec.samples.len())?;
    let routing = SampleRouting::ReplicaFailover { owners, dead_from: &dead_from };
    let run = run_stage_graph_observed(base, nodes, spec, routing, None, Some(hook))?;
    Ok(FleetEpochStats {
        total: run.total_stats(),
        per_node: run.per_node,
        failovers: run.failovers,
    })
}

/// Simulates `epochs` of training over a fleet. Kill events land in the
/// first epoch at their given fraction; every later epoch runs with those
/// nodes dead from the start (a mid-run death is permanent).
///
/// # Errors
///
/// Propagates [`simulate_fleet_epoch`] failures.
///
/// # Panics
///
/// Panics when `epochs == 0`.
pub fn simulate_fleet_training(
    base: &ClusterConfig,
    nodes: &[FleetNodeConfig],
    spec: &EpochSpec,
    owners: &[Vec<usize>],
    kills: &[KillEvent],
    epochs: u64,
) -> Result<FleetTrainingStats, SimError> {
    let permanent: Vec<KillEvent> = kills.iter().map(|k| KillEvent::new(k.node, 0.0)).collect();
    let totals = drive_training(epochs, |phase| {
        let epoch_kills = match phase {
            TrainingPhase::First => kills,
            TrainingPhase::Steady => &permanent,
        };
        simulate_fleet_epoch(base, nodes, spec, owners, epoch_kills)
    })?;
    Ok(FleetTrainingStats {
        epochs,
        first_epoch: totals.first,
        steady_epoch: totals.steady,
        total_seconds: totals.total_seconds,
        total_traffic_bytes: totals.total_traffic_bytes,
    })
}

/// Simulates `epochs` of cached training over a fleet: epoch 0 runs `cold`
/// (fetch everything through the fleet, fill the near-compute cache) and
/// all later epochs run `warm` (fetch the uncached residual only). Kill
/// events land in the cold epoch at their given fraction and are permanent
/// for warm epochs, mirroring [`simulate_fleet_training`].
///
/// Cached samples still appear in the warm spec (with zero transfer
/// bytes) and are still routed through their owner lists, so a warm epoch
/// keeps per-node accounting honest: a dead fleet cannot serve even a
/// fully cached corpus in this conservative model.
///
/// # Errors
///
/// Propagates [`simulate_fleet_epoch`] failures; additionally
/// [`SimError::OwnersMismatch`] when `cold` and `warm` disagree on sample
/// count.
///
/// # Panics
///
/// Panics when `epochs == 0`.
pub fn simulate_fleet_cached_training(
    base: &ClusterConfig,
    nodes: &[FleetNodeConfig],
    cold: &EpochSpec,
    warm: &EpochSpec,
    owners: &[Vec<usize>],
    kills: &[KillEvent],
    epochs: u64,
) -> Result<FleetCachedTrainingStats, SimError> {
    if warm.samples.len() != cold.samples.len() {
        return Err(SimError::OwnersMismatch { owners: owners.len(), samples: cold.samples.len() });
    }
    let permanent: Vec<KillEvent> = kills.iter().map(|k| KillEvent::new(k.node, 0.0)).collect();
    let totals = drive_training(epochs, |phase| match phase {
        TrainingPhase::First => simulate_fleet_epoch(base, nodes, cold, owners, kills),
        TrainingPhase::Steady => simulate_fleet_epoch(base, nodes, warm, owners, &permanent),
    })?;
    Ok(FleetCachedTrainingStats {
        run: FleetTrainingStats {
            epochs,
            first_epoch: totals.first,
            steady_epoch: totals.steady,
            total_seconds: totals.total_seconds,
            total_traffic_bytes: totals.total_traffic_bytes,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuModel, SampleWork};

    fn base() -> ClusterConfig {
        ClusterConfig::paper_testbed(48)
    }

    fn nominal_nodes(n: usize) -> Vec<FleetNodeConfig> {
        vec![FleetNodeConfig::nominal(&base()); n]
    }

    /// Round-robin primaries with `replication` successors.
    fn owners(samples: usize, nodes: usize, replication: usize) -> Vec<Vec<usize>> {
        (0..samples).map(|i| (0..replication).map(|r| (i + r) % nodes).collect()).collect()
    }

    fn io_bound_spec(n: usize) -> EpochSpec {
        EpochSpec::new(vec![SampleWork::new(0.0, 300_000, 0.001); n], 256, GpuModel::AlexNet)
    }

    #[test]
    fn one_nominal_node_matches_the_two_node_sim() {
        let spec = io_bound_spec(2048);
        let fleet =
            simulate_fleet_epoch(&base(), &nominal_nodes(1), &spec, &owners(2048, 1, 1), &[])
                .unwrap();
        let single = crate::simulate_epoch(&base(), &spec).unwrap();
        assert!(
            (fleet.total.epoch_seconds - single.epoch_seconds).abs() < 1e-9,
            "fleet {} vs single {}",
            fleet.total.epoch_seconds,
            single.epoch_seconds
        );
        assert_eq!(fleet.total.traffic_bytes, single.traffic_bytes);
    }

    #[test]
    fn more_nodes_relieve_a_network_bottleneck() {
        let spec = io_bound_spec(4096);
        let run = |n: usize| {
            simulate_fleet_epoch(&base(), &nominal_nodes(n), &spec, &owners(4096, n, 1), &[])
                .unwrap()
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four.total.epoch_seconds < one.total.epoch_seconds / 2.5,
            "4 nodes {} vs 1 node {}",
            four.total.epoch_seconds,
            one.total.epoch_seconds
        );
        // Same bytes, spread across four links.
        assert_eq!(four.total.traffic_bytes, one.total.traffic_bytes);
        assert!(four.peak_node_share() < 0.3);
    }

    #[test]
    fn replicated_kill_loses_no_samples() {
        let spec = io_bound_spec(1024);
        let stats = simulate_fleet_epoch(
            &base(),
            &nominal_nodes(4),
            &spec,
            &owners(1024, 4, 2),
            &[KillEvent::new(1, 0.5)],
        )
        .unwrap();
        assert_eq!(stats.total.samples, 1024);
        assert_eq!(stats.per_node.iter().map(|n| n.samples_served).sum::<u64>(), 1024);
        assert!(stats.failovers > 0);
        // The dead node served only its pre-kill share.
        assert!(stats.per_node[1].samples_served < 1024 / 4 + 1);
        // Healthy run has no failovers and is no slower.
        let healthy =
            simulate_fleet_epoch(&base(), &nominal_nodes(4), &spec, &owners(1024, 4, 2), &[])
                .unwrap();
        assert_eq!(healthy.failovers, 0);
        assert!(stats.total.epoch_seconds >= healthy.total.epoch_seconds);
    }

    #[test]
    fn observed_epoch_reports_each_failover_to_the_hook() {
        let spec = io_bound_spec(1024);
        let mut events = Vec::new();
        let stats = simulate_fleet_epoch_observed(
            &base(),
            &nominal_nodes(4),
            &spec,
            &owners(1024, 4, 2),
            &[KillEvent::new(1, 0.5)],
            &mut |e| events.push(e),
        )
        .unwrap();
        assert_eq!(events.len() as u64, stats.failovers);
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .all(|e| matches!(e, crate::FaultEvent::Failover { dead_node: 1, .. })));
        // The plain entry point is the observed one with a no-op hook.
        let plain = simulate_fleet_epoch(
            &base(),
            &nominal_nodes(4),
            &spec,
            &owners(1024, 4, 2),
            &[KillEvent::new(1, 0.5)],
        )
        .unwrap();
        assert_eq!(plain, stats);
    }

    #[test]
    fn unreplicated_kill_is_an_error() {
        let spec = io_bound_spec(64);
        let err = simulate_fleet_epoch(
            &base(),
            &nominal_nodes(2),
            &spec,
            &owners(64, 2, 1),
            &[KillEvent::new(0, 0.0)],
        )
        .unwrap_err();
        assert!(matches!(err, SimError::SampleUnreachable { .. }));
    }

    #[test]
    fn a_straggler_node_slows_the_epoch() {
        // Storage-CPU-bound workload (2 cores per node): quartering one
        // node's speed makes it the epoch's critical path.
        let spec = EpochSpec::new(
            vec![SampleWork::new(0.020, 120_000, 0.001); 2048],
            256,
            GpuModel::AlexNet,
        );
        let cpu_bound: Vec<FleetNodeConfig> = nominal_nodes(4)
            .into_iter()
            .map(|mut n| {
                n.storage_cores = 2;
                n
            })
            .collect();
        let mut slow = cpu_bound.clone();
        slow[2] = slow[2].with_speed(0.25);
        let own = owners(2048, 4, 1);
        let nominal = simulate_fleet_epoch(&base(), &cpu_bound, &spec, &own, &[]).unwrap();
        let degraded = simulate_fleet_epoch(&base(), &slow, &spec, &own, &[]).unwrap();
        assert!(
            degraded.total.epoch_seconds > nominal.total.epoch_seconds * 1.5,
            "straggler {} vs nominal {}",
            degraded.total.epoch_seconds,
            nominal.total.epoch_seconds
        );
    }

    #[test]
    fn fleet_training_keeps_killed_nodes_dead() {
        let spec = io_bound_spec(512);
        let run = simulate_fleet_training(
            &base(),
            &nominal_nodes(3),
            &spec,
            &owners(512, 3, 2),
            &[KillEvent::new(0, 0.75)],
            5,
        )
        .unwrap();
        assert_eq!(run.epochs, 5);
        // First epoch: node 0 served its pre-kill share. Steady: nothing.
        assert!(run.first_epoch.per_node[0].samples_served > 0);
        assert_eq!(run.steady_epoch.per_node[0].samples_served, 0);
        assert_eq!(
            run.total_traffic_bytes,
            run.first_epoch.total.traffic_bytes + run.steady_epoch.total.traffic_bytes * 4
        );
    }

    #[test]
    fn deterministic() {
        let spec = io_bound_spec(777);
        let own = owners(777, 3, 2);
        let kills = [KillEvent::new(2, 0.3)];
        let a = simulate_fleet_epoch(&base(), &nominal_nodes(3), &spec, &own, &kills).unwrap();
        let b = simulate_fleet_epoch(&base(), &nominal_nodes(3), &spec, &own, &kills).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_inputs_are_typed_errors_not_panics() {
        let spec = io_bound_spec(8);
        // Owner lists not parallel to samples.
        let err = simulate_fleet_epoch(&base(), &nominal_nodes(2), &spec, &owners(7, 2, 1), &[])
            .unwrap_err();
        assert_eq!(err, SimError::OwnersMismatch { owners: 7, samples: 8 });
        // Empty fleet.
        let err = simulate_fleet_epoch(&base(), &[], &spec, &owners(8, 2, 1), &[]).unwrap_err();
        assert_eq!(err, SimError::EmptyFleet);
        // Owner index beyond the node vector.
        let mut bad = owners(8, 2, 1);
        bad[3] = vec![5];
        let err = simulate_fleet_epoch(&base(), &nominal_nodes(2), &spec, &bad, &[]).unwrap_err();
        assert_eq!(err, SimError::OwnerOutOfRange { sample: 3, owner: 5, nodes: 2 });
        // Kill event naming a node outside the fleet.
        let err = simulate_fleet_epoch(
            &base(),
            &nominal_nodes(2),
            &spec,
            &owners(8, 2, 1),
            &[KillEvent::new(9, 0.5)],
        )
        .unwrap_err();
        assert_eq!(err, SimError::KillOutOfRange { node: 9, nodes: 2 });
    }

    #[test]
    fn offloaded_work_on_a_zero_core_node_errors() {
        let spec = EpochSpec::new(vec![SampleWork::new(0.01, 1000, 0.0); 16], 4, GpuModel::AlexNet);
        let mut nodes = nominal_nodes(2);
        nodes[1].storage_cores = 0;
        let err = simulate_fleet_epoch(&base(), &nodes, &spec, &owners(16, 2, 1), &[]).unwrap_err();
        assert_eq!(err, SimError::NoStorageCores);
    }

    #[test]
    fn cached_fleet_training_composes_cold_and_warm_epochs() {
        let cold = io_bound_spec(512);
        // Warm epoch: half the corpus cached (zero transfer bytes).
        let warm_samples: Vec<SampleWork> = (0..512)
            .map(|i| {
                if i % 2 == 0 {
                    SampleWork::new(0.0, 0, 0.001)
                } else {
                    SampleWork::new(0.0, 300_000, 0.001)
                }
            })
            .collect();
        let warm = EpochSpec::new(warm_samples, 256, GpuModel::AlexNet);
        let own = owners(512, 4, 2);
        let run =
            simulate_fleet_cached_training(&base(), &nominal_nodes(4), &cold, &warm, &own, &[], 6)
                .unwrap();
        assert_eq!(run.cold().total.traffic_bytes, 512 * 300_000);
        assert_eq!(run.warm().total.traffic_bytes, 256 * 300_000);
        assert!((run.warm_traffic_reduction() - 0.5).abs() < 1e-12);
        assert_eq!(
            run.run.total_traffic_bytes,
            run.cold().total.traffic_bytes + run.warm().total.traffic_bytes * 5
        );
        // Warm epochs still route through the fleet: every node serves.
        assert!(run.warm().per_node.iter().all(|n| n.samples_served > 0));
    }

    #[test]
    fn cached_fleet_training_with_a_kill_keeps_the_node_dead_when_warm() {
        let cold = io_bound_spec(512);
        let warm =
            EpochSpec::new(vec![SampleWork::new(0.0, 30_000, 0.001); 512], 256, GpuModel::AlexNet);
        let run = simulate_fleet_cached_training(
            &base(),
            &nominal_nodes(3),
            &cold,
            &warm,
            &owners(512, 3, 2),
            &[KillEvent::new(1, 0.5)],
            4,
        )
        .unwrap();
        assert!(run.cold().per_node[1].samples_served > 0);
        assert_eq!(run.warm().per_node[1].samples_served, 0);
        assert!(run.warm().failovers > 0);
    }

    #[test]
    fn cached_fleet_training_rejects_mismatched_specs() {
        let cold = io_bound_spec(512);
        let warm = io_bound_spec(256);
        let err = simulate_fleet_cached_training(
            &base(),
            &nominal_nodes(2),
            &cold,
            &warm,
            &owners(512, 2, 2),
            &[],
            3,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::OwnersMismatch { .. }));
    }
}
