//! Fleet-of-storage-nodes epoch model.
//!
//! Extends the two-node testbed to N storage nodes, each with its own CPU
//! pool, read path, and storage→compute link. The module is deliberately
//! mechanism-free, like [`crate::simulate_cached_training`]: callers supply
//! the per-sample **owner lists** (ordered replica sets, primary first —
//! built e.g. by `fleet::ShardMap::owners`), and this module only schedules
//! the resulting per-node queues. Placement policy, hashing, and transport
//! hedging live in the `fleet` crate; the simulator answers "what does this
//! placement cost" questions:
//!
//! * **Per-node links and cores** — each node is a [`FleetNodeConfig`]; a
//!   sample is read, offload-preprocessed, and transferred on *its serving
//!   node's* resources, so one hot shard becomes visible as one saturated
//!   link or CPU pool.
//! * **Node-kill events** — a [`KillEvent`] marks a node dead after a
//!   fraction of the epoch's samples have been issued; later samples fail
//!   over to the next surviving owner in their list (counted in
//!   [`FleetEpochStats::failovers`]), and samples with no surviving owner
//!   make the epoch fail with [`SimError::SampleUnreachable`].
//! * **Straggler distributions** — a node's `speed` scales its read and
//!   preprocessing service rate, so a seeded vector of speeds models a
//!   straggler distribution without any randomness inside the simulator.

use netsim::VirtualLink;
use serde::{Deserialize, Serialize};

use crate::resources::{CpuPool, FifoServer};
use crate::{ClusterConfig, EpochSpec, EpochStats, SimError};

/// One storage node's resources in a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetNodeConfig {
    /// CPU cores available for offloaded preprocessing on this node.
    pub storage_cores: usize,
    /// This node's link to the compute node, in bits per second.
    pub link_bps: f64,
    /// Service-rate multiplier: `1.0` is nominal, `0.5` is a straggler
    /// running reads and preprocessing at half speed.
    pub speed: f64,
}

impl FleetNodeConfig {
    /// A node matching the storage side of `config` at nominal speed.
    pub fn nominal(config: &ClusterConfig) -> FleetNodeConfig {
        FleetNodeConfig {
            storage_cores: config.storage_cores,
            link_bps: config.link_bps,
            speed: 1.0,
        }
    }

    /// Returns a copy with a different speed multiplier.
    ///
    /// # Panics
    ///
    /// Panics when `speed` is not finite and positive.
    #[must_use]
    pub fn with_speed(mut self, speed: f64) -> FleetNodeConfig {
        assert!(speed.is_finite() && speed > 0.0, "invalid node speed {speed}");
        self.speed = speed;
        self
    }
}

/// A storage node dying partway through an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KillEvent {
    /// The node that dies.
    pub node: usize,
    /// Fraction of the epoch's samples issued before the death; samples
    /// from that point on cannot use the node. `0.0` means dead from the
    /// start (e.g. steady-state epochs after a mid-run failure).
    pub after_fraction: f64,
}

impl KillEvent {
    /// Creates a kill event.
    ///
    /// # Panics
    ///
    /// Panics when `after_fraction` is outside `[0, 1]`.
    pub fn new(node: usize, after_fraction: f64) -> KillEvent {
        assert!(
            (0.0..=1.0).contains(&after_fraction),
            "kill fraction {after_fraction} outside [0, 1]"
        );
        KillEvent { node, after_fraction }
    }
}

/// One node's share of an epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeEpochStats {
    /// Samples this node served.
    pub samples_served: u64,
    /// Bytes this node pushed over its link.
    pub traffic_bytes: u64,
    /// Core-seconds of offloaded preprocessing executed here.
    pub storage_cpu_busy_seconds: f64,
    /// Seconds this node's link spent transferring.
    pub link_busy_seconds: f64,
}

/// Results of simulating one epoch over a storage fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetEpochStats {
    /// Fleet-wide aggregate. `traffic_bytes`, `storage_cpu_busy_seconds`,
    /// and `link_busy_seconds` sum over nodes, so
    /// [`EpochStats::link_utilization`] on this value measures utilization
    /// of the *aggregate* link capacity and can exceed 1.0 only if the
    /// per-node figures do.
    pub total: EpochStats,
    /// Per-node breakdown, in node order.
    pub per_node: Vec<NodeEpochStats>,
    /// Samples that were rerouted past a dead owner.
    pub failovers: u64,
}

impl FleetEpochStats {
    /// The busiest node's share of served samples — `1/n` is perfectly
    /// balanced, `1.0` means one node served everything.
    pub fn peak_node_share(&self) -> f64 {
        if self.total.samples == 0 {
            return 0.0;
        }
        let peak = self.per_node.iter().map(|n| n.samples_served).max().unwrap_or(0);
        peak as f64 / self.total.samples as f64
    }
}

/// Statistics of a multi-epoch training run over a fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTrainingStats {
    /// Total epochs executed.
    pub epochs: u64,
    /// The first epoch (where mid-epoch kill events land).
    pub first_epoch: FleetEpochStats,
    /// Steady-state epochs (killed nodes stay dead throughout).
    pub steady_epoch: FleetEpochStats,
    /// Total wall-clock (virtual) seconds.
    pub total_seconds: f64,
    /// Total bytes moved over all links.
    pub total_traffic_bytes: u64,
}

/// Simulates one epoch over a fleet of storage nodes.
///
/// `owners[i]` is sample `i`'s ordered replica set (primary first); the
/// sample is served by its first owner still alive when it is issued.
/// `base` supplies the compute side (cores, GPUs, prefetch window) and the
/// nominal storage read rate; each node's read and preprocessing service
/// times are divided by its `speed`.
///
/// # Errors
///
/// * [`SimError::SampleUnreachable`] — a sample's owners are all dead.
/// * [`SimError::NoStorageCores`] — offloaded work routed to a node with
///   zero cores.
/// * [`SimError::NoComputeCores`] / [`SimError::NoGpus`] — as
///   [`crate::simulate_epoch`].
///
/// # Panics
///
/// Panics when `nodes` is empty, `owners` is not parallel to
/// `spec.samples`, or an owner index is out of range.
pub fn simulate_fleet_epoch(
    base: &ClusterConfig,
    nodes: &[FleetNodeConfig],
    spec: &EpochSpec,
    owners: &[Vec<usize>],
    kills: &[KillEvent],
) -> Result<FleetEpochStats, SimError> {
    assert!(!nodes.is_empty(), "fleet needs at least one node");
    assert_eq!(owners.len(), spec.samples.len(), "owners must be parallel to samples");
    for event in kills {
        assert!(event.node < nodes.len(), "kill names node {} of {}", event.node, nodes.len());
    }

    let needs_compute_cpu = spec.samples.iter().any(|s| s.compute_cpu_seconds > 0.0);
    if needs_compute_cpu && base.compute_cores == 0 {
        return Err(SimError::NoComputeCores);
    }
    if base.gpus == 0 {
        return Err(SimError::NoGpus);
    }

    // Each node dies at an index threshold: samples issued at or after it
    // cannot use the node.
    let total = spec.samples.len();
    let mut dead_from = vec![usize::MAX; nodes.len()];
    for event in kills {
        let at = (event.after_fraction * total as f64).floor() as usize;
        dead_from[event.node] = dead_from[event.node].min(at);
    }

    let mut reads: Vec<FifoServer> = nodes.iter().map(|_| FifoServer::new()).collect();
    let mut cpus: Vec<CpuPool> =
        nodes.iter().map(|n| CpuPool::new(n.storage_cores.max(1))).collect();
    let mut links: Vec<VirtualLink> = nodes
        .iter()
        .map(|n| {
            VirtualLink::with_latency(netsim::Bandwidth::from_bps(n.link_bps), base.link_latency)
        })
        .collect();
    let mut compute_cpu = CpuPool::new(base.compute_cores.max(usize::from(!needs_compute_cpu)));
    let mut gpu = CpuPool::new(base.gpus);
    let mut served = vec![0u64; nodes.len()];
    let mut failovers = 0u64;

    let batch_count = spec.batch_count();
    let mut batch_done = vec![0.0f64; batch_count];
    let gpu_seconds_per_image = spec.gpu.seconds_per_image();

    let mut sample_idx = 0usize;
    for batch in 0..batch_count {
        let gate = if batch >= base.prefetch_batches {
            batch_done[batch - base.prefetch_batches]
        } else {
            0.0
        };
        let in_batch = spec.samples.len().saturating_sub(sample_idx).min(spec.batch_size);
        let mut batch_ready = gate;
        for _ in 0..in_batch {
            let w = &spec.samples[sample_idx];
            let replicas = &owners[sample_idx];
            // Route: first owner alive when this sample is issued.
            let mut node = None;
            for &owner in replicas {
                assert!(
                    owner < nodes.len(),
                    "owner {owner} out of range for {} nodes",
                    nodes.len()
                );
                if sample_idx < dead_from[owner] {
                    node = Some(owner);
                    break;
                }
                failovers += 1;
            }
            let Some(node) = node else {
                return Err(SimError::SampleUnreachable { sample: sample_idx as u64 });
            };
            sample_idx += 1;
            served[node] += 1;
            let cfg = &nodes[node];
            // 1. storage read on the serving node (scaled by its speed).
            let read_s = w.transfer_bytes as f64 / (base.storage_read_bytes_per_sec * cfg.speed);
            let read_done = reads[node].run(gate, read_s);
            // 2. offloaded preprocessing on the serving node.
            let offload_done = if w.storage_cpu_seconds > 0.0 {
                if cfg.storage_cores == 0 {
                    return Err(SimError::NoStorageCores);
                }
                cpus[node].run(read_done, w.storage_cpu_seconds / cfg.speed)
            } else {
                read_done
            };
            // 3. transfer over the serving node's own link.
            let transfer_done = links[node].transfer(offload_done, w.transfer_bytes);
            // 4. local preprocessing on the shared compute node.
            let local_done = if w.compute_cpu_seconds > 0.0 {
                compute_cpu.run(transfer_done, w.compute_cpu_seconds)
            } else {
                transfer_done
            };
            batch_ready = batch_ready.max(local_done);
        }
        // 5. GPU step for the batch.
        let gpu_s = gpu_seconds_per_image * in_batch as f64;
        batch_done[batch] = gpu.run(batch_ready, gpu_s);
    }

    let per_node: Vec<NodeEpochStats> = (0..nodes.len())
        .map(|n| NodeEpochStats {
            samples_served: served[n],
            traffic_bytes: links[n].total_bytes(),
            storage_cpu_busy_seconds: cpus[n].busy_seconds(),
            link_busy_seconds: links[n].busy_seconds(),
        })
        .collect();
    let epoch_seconds = batch_done.last().copied().unwrap_or(0.0);
    let total = EpochStats {
        epoch_seconds,
        traffic_bytes: per_node.iter().map(|n| n.traffic_bytes).sum(),
        gpu_busy_seconds: gpu.busy_seconds(),
        storage_cpu_busy_seconds: per_node.iter().map(|n| n.storage_cpu_busy_seconds).sum(),
        compute_cpu_busy_seconds: compute_cpu.busy_seconds(),
        link_busy_seconds: per_node.iter().map(|n| n.link_busy_seconds).sum(),
        samples: spec.samples.len() as u64,
        batches: batch_count as u64,
        gpus: base.gpus as u64,
    };
    Ok(FleetEpochStats { total, per_node, failovers })
}

/// Simulates `epochs` of training over a fleet. Kill events land in the
/// first epoch at their given fraction; every later epoch runs with those
/// nodes dead from the start (a mid-run death is permanent).
///
/// # Errors
///
/// Propagates [`simulate_fleet_epoch`] failures.
///
/// # Panics
///
/// Panics when `epochs == 0` or on the conditions of
/// [`simulate_fleet_epoch`].
pub fn simulate_fleet_training(
    base: &ClusterConfig,
    nodes: &[FleetNodeConfig],
    spec: &EpochSpec,
    owners: &[Vec<usize>],
    kills: &[KillEvent],
    epochs: u64,
) -> Result<FleetTrainingStats, SimError> {
    assert!(epochs > 0, "training needs at least one epoch");
    let first = simulate_fleet_epoch(base, nodes, spec, owners, kills)?;
    let steady = if epochs > 1 {
        let permanent: Vec<KillEvent> = kills.iter().map(|k| KillEvent::new(k.node, 0.0)).collect();
        simulate_fleet_epoch(base, nodes, spec, owners, &permanent)?
    } else {
        first.clone()
    };
    let steady_count = epochs - 1;
    Ok(FleetTrainingStats {
        epochs,
        total_seconds: first.total.epoch_seconds + steady.total.epoch_seconds * steady_count as f64,
        total_traffic_bytes: first.total.traffic_bytes + steady.total.traffic_bytes * steady_count,
        first_epoch: first,
        steady_epoch: steady,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuModel, SampleWork};

    fn base() -> ClusterConfig {
        ClusterConfig::paper_testbed(48)
    }

    fn nominal_nodes(n: usize) -> Vec<FleetNodeConfig> {
        vec![FleetNodeConfig::nominal(&base()); n]
    }

    /// Round-robin primaries with `replication` successors.
    fn owners(samples: usize, nodes: usize, replication: usize) -> Vec<Vec<usize>> {
        (0..samples).map(|i| (0..replication).map(|r| (i + r) % nodes).collect()).collect()
    }

    fn io_bound_spec(n: usize) -> EpochSpec {
        EpochSpec::new(vec![SampleWork::new(0.0, 300_000, 0.001); n], 256, GpuModel::AlexNet)
    }

    #[test]
    fn one_nominal_node_matches_the_two_node_sim() {
        let spec = io_bound_spec(2048);
        let fleet =
            simulate_fleet_epoch(&base(), &nominal_nodes(1), &spec, &owners(2048, 1, 1), &[])
                .unwrap();
        let single = crate::simulate_epoch(&base(), &spec).unwrap();
        assert!(
            (fleet.total.epoch_seconds - single.epoch_seconds).abs() < 1e-9,
            "fleet {} vs single {}",
            fleet.total.epoch_seconds,
            single.epoch_seconds
        );
        assert_eq!(fleet.total.traffic_bytes, single.traffic_bytes);
    }

    #[test]
    fn more_nodes_relieve_a_network_bottleneck() {
        let spec = io_bound_spec(4096);
        let run = |n: usize| {
            simulate_fleet_epoch(&base(), &nominal_nodes(n), &spec, &owners(4096, n, 1), &[])
                .unwrap()
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four.total.epoch_seconds < one.total.epoch_seconds / 2.5,
            "4 nodes {} vs 1 node {}",
            four.total.epoch_seconds,
            one.total.epoch_seconds
        );
        // Same bytes, spread across four links.
        assert_eq!(four.total.traffic_bytes, one.total.traffic_bytes);
        assert!(four.peak_node_share() < 0.3);
    }

    #[test]
    fn replicated_kill_loses_no_samples() {
        let spec = io_bound_spec(1024);
        let stats = simulate_fleet_epoch(
            &base(),
            &nominal_nodes(4),
            &spec,
            &owners(1024, 4, 2),
            &[KillEvent::new(1, 0.5)],
        )
        .unwrap();
        assert_eq!(stats.total.samples, 1024);
        assert_eq!(stats.per_node.iter().map(|n| n.samples_served).sum::<u64>(), 1024);
        assert!(stats.failovers > 0);
        // The dead node served only its pre-kill share.
        assert!(stats.per_node[1].samples_served < 1024 / 4 + 1);
        // Healthy run has no failovers and is no slower.
        let healthy =
            simulate_fleet_epoch(&base(), &nominal_nodes(4), &spec, &owners(1024, 4, 2), &[])
                .unwrap();
        assert_eq!(healthy.failovers, 0);
        assert!(stats.total.epoch_seconds >= healthy.total.epoch_seconds);
    }

    #[test]
    fn unreplicated_kill_is_an_error() {
        let spec = io_bound_spec(64);
        let err = simulate_fleet_epoch(
            &base(),
            &nominal_nodes(2),
            &spec,
            &owners(64, 2, 1),
            &[KillEvent::new(0, 0.0)],
        )
        .unwrap_err();
        assert!(matches!(err, SimError::SampleUnreachable { .. }));
    }

    #[test]
    fn a_straggler_node_slows_the_epoch() {
        // Storage-CPU-bound workload (2 cores per node): quartering one
        // node's speed makes it the epoch's critical path.
        let spec = EpochSpec::new(
            vec![SampleWork::new(0.020, 120_000, 0.001); 2048],
            256,
            GpuModel::AlexNet,
        );
        let cpu_bound: Vec<FleetNodeConfig> = nominal_nodes(4)
            .into_iter()
            .map(|mut n| {
                n.storage_cores = 2;
                n
            })
            .collect();
        let mut slow = cpu_bound.clone();
        slow[2] = slow[2].with_speed(0.25);
        let own = owners(2048, 4, 1);
        let nominal = simulate_fleet_epoch(&base(), &cpu_bound, &spec, &own, &[]).unwrap();
        let degraded = simulate_fleet_epoch(&base(), &slow, &spec, &own, &[]).unwrap();
        assert!(
            degraded.total.epoch_seconds > nominal.total.epoch_seconds * 1.5,
            "straggler {} vs nominal {}",
            degraded.total.epoch_seconds,
            nominal.total.epoch_seconds
        );
    }

    #[test]
    fn fleet_training_keeps_killed_nodes_dead() {
        let spec = io_bound_spec(512);
        let run = simulate_fleet_training(
            &base(),
            &nominal_nodes(3),
            &spec,
            &owners(512, 3, 2),
            &[KillEvent::new(0, 0.75)],
            5,
        )
        .unwrap();
        assert_eq!(run.epochs, 5);
        // First epoch: node 0 served its pre-kill share. Steady: nothing.
        assert!(run.first_epoch.per_node[0].samples_served > 0);
        assert_eq!(run.steady_epoch.per_node[0].samples_served, 0);
        assert_eq!(
            run.total_traffic_bytes,
            run.first_epoch.total.traffic_bytes + run.steady_epoch.total.traffic_bytes * 4
        );
    }

    #[test]
    fn deterministic() {
        let spec = io_bound_spec(777);
        let own = owners(777, 3, 2);
        let kills = [KillEvent::new(2, 0.3)];
        let a = simulate_fleet_epoch(&base(), &nominal_nodes(3), &spec, &own, &kills).unwrap();
        let b = simulate_fleet_epoch(&base(), &nominal_nodes(3), &spec, &own, &kills).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "parallel to samples")]
    fn mismatched_owners_panic() {
        let spec = io_bound_spec(8);
        let _ = simulate_fleet_epoch(&base(), &nominal_nodes(2), &spec, &owners(7, 2, 1), &[]);
    }

    #[test]
    fn offloaded_work_on_a_zero_core_node_errors() {
        let spec = EpochSpec::new(vec![SampleWork::new(0.01, 1000, 0.0); 16], 4, GpuModel::AlexNet);
        let mut nodes = nominal_nodes(2);
        nodes[1].storage_cores = 0;
        let err = simulate_fleet_epoch(&base(), &nodes, &spec, &owners(16, 2, 1), &[]).unwrap_err();
        assert_eq!(err, SimError::NoStorageCores);
    }
}
