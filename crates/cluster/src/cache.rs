//! Warm-cache training model.
//!
//! A near-compute sample cache splits a training run into two regimes: the
//! **cold** epoch (epoch 0, typically also SOPHON's profiling epoch)
//! fetches everything and fills the cache, and every **warm** epoch after
//! it fetches only the uncached residual. [`simulate_cached_training`]
//! wraps [`crate::simulate_training`] with that cold/warm framing and
//! reports the quantities the cache narrative turns on: traffic per
//! regime, the steady-state savings rate, and how long until the cold
//! epoch's extra cost is paid back.
//!
//! The module is deliberately mechanism-free — callers supply the cold and
//! warm [`EpochSpec`]s (built e.g. by `sophon::ext::caching`), and the
//! docs here define what those must mean: the warm spec's transfers for
//! cached samples are zero because their bytes were pinned during the cold
//! epoch.

use serde::{Deserialize, Serialize};

use crate::{simulate_training, ClusterConfig, EpochSpec, EpochStats, SimError, TrainingStats};

/// Statistics of a training run over a cold-then-warm cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedTrainingStats {
    /// The underlying run (first epoch = cold, steady = warm).
    pub run: TrainingStats,
}

impl CachedTrainingStats {
    /// The cold (cache-filling) epoch's stats.
    pub fn cold(&self) -> &EpochStats {
        &self.run.first_epoch
    }

    /// The steady-state warm epoch's stats.
    pub fn warm(&self) -> &EpochStats {
        &self.run.steady_epoch
    }

    /// Wire bytes a warm epoch avoids relative to the cold epoch.
    pub fn warm_bytes_saved(&self) -> u64 {
        self.cold().traffic_bytes.saturating_sub(self.warm().traffic_bytes)
    }

    /// Fraction of cold-epoch traffic a warm epoch avoids (0 when the
    /// cold epoch moved nothing).
    pub fn warm_traffic_reduction(&self) -> f64 {
        if self.cold().traffic_bytes == 0 {
            0.0
        } else {
            self.warm_bytes_saved() as f64 / self.cold().traffic_bytes as f64
        }
    }

    /// Warm epochs needed before total traffic drops below an uncached
    /// run of the same length (`None` when warm epochs save nothing).
    ///
    /// The cold epoch costs the same either way in this model, so payback
    /// is immediate (`Some(1)`) whenever warm epochs save any bytes; the
    /// method exists to make that explicit in reports.
    pub fn traffic_payback_epochs(&self) -> Option<u64> {
        if self.warm_bytes_saved() > 0 {
            Some(1)
        } else {
            None
        }
    }
}

/// Simulates `epochs` of training where epoch 0 runs `cold` (fetch
/// everything, fill the cache) and all later epochs run `warm` (fetch the
/// uncached residual only).
///
/// # Errors
///
/// Propagates epoch-simulation failures.
///
/// # Panics
///
/// Panics when `epochs == 0`.
pub fn simulate_cached_training(
    config: &ClusterConfig,
    cold: &EpochSpec,
    warm: &EpochSpec,
    epochs: u64,
) -> Result<CachedTrainingStats, SimError> {
    Ok(CachedTrainingStats { run: simulate_training(config, cold, warm, epochs)? })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuModel, SampleWork};

    fn spec(transfer: u64, n: usize) -> EpochSpec {
        EpochSpec::new(vec![SampleWork::new(0.0, transfer, 0.001); n], 64, GpuModel::AlexNet)
    }

    #[test]
    fn warm_epochs_cut_total_traffic() {
        let config = ClusterConfig::paper_testbed(48);
        let cold = spec(200_000, 512);
        let warm = spec(50_000, 512);
        let run = simulate_cached_training(&config, &cold, &warm, 10).unwrap();
        assert_eq!(
            run.run.total_traffic_bytes,
            run.cold().traffic_bytes + run.warm().traffic_bytes * 9
        );
        assert!(run.warm_traffic_reduction() > 0.7);
        assert_eq!(run.traffic_payback_epochs(), Some(1));
    }

    #[test]
    fn useless_cache_reports_no_payback() {
        let config = ClusterConfig::paper_testbed(48);
        let same = spec(100_000, 256);
        let run = simulate_cached_training(&config, &same, &same, 5).unwrap();
        assert_eq!(run.warm_bytes_saved(), 0);
        assert_eq!(run.traffic_payback_epochs(), None);
        assert_eq!(run.warm_traffic_reduction(), 0.0);
    }

    #[test]
    fn fully_cached_warm_epoch_moves_zero_bytes() {
        let config = ClusterConfig::paper_testbed(48);
        let cold = spec(150_000, 256);
        let warm = spec(0, 256);
        let run = simulate_cached_training(&config, &cold, &warm, 4).unwrap();
        assert_eq!(run.warm().traffic_bytes, 0);
        assert!((run.warm_traffic_reduction() - 1.0).abs() < 1e-12);
        assert_eq!(run.run.total_traffic_bytes, run.cold().traffic_bytes);
    }
}
