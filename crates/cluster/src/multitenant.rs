//! Multi-job serving simulation: many tenants, one storage node.
//!
//! The single-job simulators model one training job owning the whole
//! storage side. Production fleets are nothing like that: hundreds of jobs
//! share the storage node's read path, preprocessing cores, and egress
//! link. This module reuses the stage-graph core's resource primitives
//! ([`crate::FifoServer`], [`crate::stagegraph::CpuStage`],
//! `netsim::VirtualLink`) and puts the `tenant` crate's scheduler in front
//! of them:
//!
//! ```text
//! tenant 0 ─┐
//! tenant 1 ─┼─ DWRR (weights) ─▶ read ─▶ storage CPU ─▶ shared link ─▶ done
//! tenant N ─┘      │
//!                  └─ per-tenant token-bucket byte quota (delays issue)
//! ```
//!
//! Each tenant runs a closed loop: at most `TenantSpec::max_in_flight`
//! samples outstanding, the next sample issued when the oldest completes —
//! the virtual-time analogue of `storage::tcp`'s per-tenant admission
//! bound. Service order across tenants is deficit-weighted round robin
//! with byte costs, so a large-sample tenant cannot crowd out small ones;
//! quotaed tenants are additionally delayed by their [`ByteBudget`], and
//! every issue that lands while the bucket's debt exceeds the same reject
//! horizon the live server uses is counted as a throttle event (the real
//! server bounces it with `TenantThrottled`; the simulator re-admits after
//! the debt drains, which is what a retrying client converges to).
//!
//! Admission is horizon-gated: a staged sample enters the DWRR ring only
//! once its release time falls inside the shared pipeline's current
//! schedule, so a quota-delayed sample released seconds from now never
//! head-of-line-blocks another tenant's transfer behind it in the FIFO
//! stages.
//!
//! Time is virtual and the whole run is a pure function of its inputs:
//! `seed` perturbs only *timing* (issue jitter and the scheduler's initial
//! rotation), never *what* is served, so per-tenant delivery digests are
//! bit-identical across seeds — the property the `multi_tenant` bench
//! gates on.

use std::collections::BTreeMap;

use netsim::{Bandwidth, VirtualLink};
use serde::{Deserialize, Serialize};
use tenant::{ByteBudget, DwrrScheduler, TenantId, TenantSpec};

use crate::resources::FifoServer;
use crate::stagegraph::CpuStage;
use crate::{ClusterConfig, SampleWork, SimError};

/// Mirror of `storage::tcp`'s admission horizon: an issue finding more
/// than this many seconds of quota debt counts as a throttle event.
const QUOTA_REJECT_HORIZON_SECS: f64 = 0.1;

/// DWRR quantum in bytes — near a typical encoded-sample size so byte
/// fairness converges within a few ring rotations.
const DWRR_QUANTUM_BYTES: u64 = 64 * 1024;

/// Maximum issue jitter injected by the seed, in seconds. Small enough
/// never to dominate a transfer, large enough to reorder ties.
const MAX_JITTER_SECS: f64 = 50e-6;

/// One tenant's share of a multi-job run.
#[derive(Debug, Clone)]
pub struct TenantWorkload {
    /// The tenant's identity (must be unique within a run).
    pub id: TenantId,
    /// Weight, quota, and in-flight bound.
    pub spec: TenantSpec,
    /// The tenant's samples, in its own loading order.
    pub samples: Vec<SampleWork>,
}

impl TenantWorkload {
    /// Creates a workload.
    pub fn new(id: TenantId, spec: TenantSpec, samples: Vec<SampleWork>) -> TenantWorkload {
        TenantWorkload { id, spec, samples }
    }
}

/// Per-tenant outcome of a multi-job run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantRunStats {
    /// Samples delivered.
    pub samples: u64,
    /// Bytes delivered over the shared link.
    pub bytes: u64,
    /// Issues that found the tenant's quota bucket past the reject
    /// horizon (the live server would have answered `TenantThrottled`).
    pub throttled: u64,
    /// Median issue-to-delivery latency, in virtual seconds.
    pub p50_latency_seconds: f64,
    /// 99th-percentile issue-to-delivery latency, in virtual seconds.
    pub p99_latency_seconds: f64,
    /// Virtual time the tenant's last sample was delivered.
    pub done_seconds: f64,
    /// Order-independent digest of everything delivered to this tenant
    /// (sample index, bytes, CPU demand). Identical across seeds: timing
    /// may move, payloads may not.
    pub digest: u64,
}

/// Aggregate outcome of a multi-job run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTenantRun {
    /// Virtual time the last sample of any tenant was delivered.
    pub epoch_seconds: f64,
    /// Total bytes delivered.
    pub total_bytes: u64,
    /// `total_bytes / epoch_seconds`.
    pub goodput_bytes_per_sec: f64,
    /// Core-seconds of offloaded preprocessing executed.
    pub storage_cpu_busy_seconds: f64,
    /// Seconds the shared link spent transferring.
    pub link_busy_seconds: f64,
    /// Per-tenant breakdown, keyed by tenant id.
    pub per_tenant: BTreeMap<u16, TenantRunStats>,
}

/// FNV-1a over one delivered sample's identity; combined per tenant with
/// a wrapping add so the digest is independent of service order.
fn sample_digest(tenant: u16, index: u64, work: &SampleWork) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(tenant as u64);
    eat(index);
    eat(work.transfer_bytes);
    eat(work.storage_cpu_seconds.to_bits());
    eat(work.compute_cpu_seconds.to_bits());
    h
}

/// SplitMix64 over `(seed, i)` — the workspace's standard jitter source.
fn splitmix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct TenantState {
    work: TenantWorkload,
    /// Next sample index not yet staged.
    staged: usize,
    /// Staged samples not yet admitted to the scheduler: `(index, issue
    /// gate, release time)`, FIFO in index order.
    waiting: std::collections::VecDeque<(usize, f64, f64)>,
    /// Completion times of processed samples, indexed by sample.
    done: Vec<f64>,
    quota: Option<ByteBudget>,
    latencies: Vec<f64>,
    bytes: u64,
    throttled: u64,
    digest: u64,
}

impl TenantState {
    /// Stages the next sample: computes its closed-loop issue gate and
    /// quota-delayed release, charging the byte budget at issue.
    fn stage_next(&mut self, seed: u64) {
        if self.staged >= self.work.samples.len() {
            return;
        }
        let index = self.staged;
        let window = self.work.spec.max_in_flight.max(1);
        let gate = if index >= window { self.done[index - window] } else { 0.0 };
        let release = match self.quota.as_mut() {
            Some(bucket) => {
                if bucket.debt(gate) > QUOTA_REJECT_HORIZON_SECS {
                    self.throttled += 1;
                }
                gate + bucket.charge(self.work.samples[index].transfer_bytes, gate)
            }
            None => gate,
        };
        let jitter = splitmix(seed ^ self.work.id.0 as u64, index as u64) as f64 / u64::MAX as f64
            * MAX_JITTER_SECS;
        self.waiting.push_back((index, gate, release + jitter));
        self.staged += 1;
    }
}

/// Simulates every tenant's whole sample list through one shared storage
/// node, in virtual time.
///
/// `seed` drives timing jitter and the scheduler's starting rotation; it
/// never changes which samples are delivered, so each tenant's
/// [`TenantRunStats::digest`] is seed-invariant.
///
/// # Errors
///
/// * [`SimError::EmptyFleet`] — no tenant has any samples.
/// * [`SimError::NoStorageCores`] — a sample offloads preprocessing but
///   `base.storage_cores` is zero.
///
/// # Panics
///
/// Panics when two workloads share a tenant id.
pub fn simulate_multi_tenant(
    base: &ClusterConfig,
    tenants: &[TenantWorkload],
    seed: u64,
) -> Result<MultiTenantRun, SimError> {
    let mut states: BTreeMap<u16, TenantState> = BTreeMap::new();
    for t in tenants {
        let quota =
            t.spec.quota_bytes_per_sec.map(|rate| ByteBudget::new(rate, t.spec.burst_bytes.max(1)));
        let prev = states.insert(
            t.id.0,
            TenantState {
                work: t.clone(),
                staged: 0,
                waiting: std::collections::VecDeque::new(),
                done: Vec::with_capacity(t.samples.len()),
                quota,
                latencies: Vec::with_capacity(t.samples.len()),
                bytes: 0,
                throttled: 0,
                digest: 0,
            },
        );
        assert!(prev.is_none(), "duplicate tenant id {}", t.id);
    }
    if states.values().all(|s| s.work.samples.is_empty()) {
        return Err(SimError::EmptyFleet);
    }

    let mut read = FifoServer::new();
    let mut storage_cpu = CpuStage::with_cores(base.storage_cores);
    let mut link = VirtualLink::with_latency(Bandwidth::from_bps(base.link_bps), base.link_latency);

    // Prime every tenant's staging window, visiting tenants in a
    // seed-rotated order so tie-breaks differ across chaos seeds without
    // changing any tenant's delivered set.
    let mut sched: DwrrScheduler<(usize, f64, f64)> = DwrrScheduler::new(DWRR_QUANTUM_BYTES);
    let ids: Vec<u16> = states.keys().copied().collect();
    let start = (splitmix(seed, 0x7e4a) % ids.len().max(1) as u64) as usize;
    let rotated: Vec<u16> = (0..ids.len()).map(|o| ids[(start + o) % ids.len()]).collect();
    for &id in &rotated {
        let s = states.get_mut(&id).expect("id from keys");
        sched.set_weight(TenantId(id), s.work.spec.weight);
        let window = s.work.spec.max_in_flight.max(1).min(s.work.samples.len());
        for _ in 0..window {
            s.stage_next(seed);
        }
    }

    // Event loop. A staged sample is admitted to the DWRR ring only once
    // its release time falls inside the serving horizon (how far the
    // shared pipeline's schedule already extends); quota-delayed work
    // therefore never head-of-line-blocks other tenants' transfers. When
    // everything admissible has drained, the horizon jumps to the next
    // release (an idle period on the shared node).
    let mut horizon = 0.0f64;
    loop {
        // Admit, per tenant in rotated order, every waiting head whose
        // release has arrived (FIFO within a tenant keeps samples in
        // index order regardless of jitter).
        for &id in &rotated {
            let s = states.get_mut(&id).expect("id from keys");
            while s.waiting.front().is_some_and(|&(_, _, release)| release <= horizon) {
                let (index, gate, release) = s.waiting.pop_front().expect("checked front");
                let cost = s.work.samples[index].transfer_bytes.max(1);
                sched.push(TenantId(id), cost, (index, gate, release));
            }
        }
        if sched.is_empty() {
            // Nothing admissible: jump the horizon to the earliest
            // pending release, or finish if no work remains anywhere.
            let next = states
                .values()
                .filter_map(|s| s.waiting.front().map(|&(_, _, release)| release))
                .fold(f64::INFINITY, f64::min);
            if !next.is_finite() {
                break;
            }
            horizon = next;
            continue;
        }

        let (tenant, (index, gate, release)) = sched.pop().expect("checked non-empty");
        let s = states.get_mut(&tenant.0).expect("scheduled tenants have state");
        let w = s.work.samples[index];

        let read_done =
            read.run(release, w.transfer_bytes as f64 / base.storage_read_bytes_per_sec);
        let offload_done = if w.storage_cpu_seconds > 0.0 {
            storage_cpu.run(read_done, w.storage_cpu_seconds).ok_or(SimError::NoStorageCores)?
        } else {
            read_done
        };
        let delivered = link.transfer(offload_done, w.transfer_bytes);
        horizon = horizon.max(delivered);

        s.done.push(delivered);
        s.latencies.push(delivered - gate);
        s.bytes += w.transfer_bytes;
        s.digest = s.digest.wrapping_add(sample_digest(tenant.0, index as u64, &w));
        s.stage_next(seed);
    }

    let mut per_tenant = BTreeMap::new();
    let mut epoch_seconds = 0.0f64;
    let mut total_bytes = 0u64;
    for (id, mut s) in states {
        s.latencies.sort_unstable_by(f64::total_cmp);
        let done_seconds = s.done.iter().copied().fold(0.0, f64::max);
        epoch_seconds = epoch_seconds.max(done_seconds);
        total_bytes += s.bytes;
        per_tenant.insert(
            id,
            TenantRunStats {
                samples: s.done.len() as u64,
                bytes: s.bytes,
                throttled: s.throttled,
                p50_latency_seconds: percentile(&s.latencies, 0.50),
                p99_latency_seconds: percentile(&s.latencies, 0.99),
                done_seconds,
                digest: s.digest,
            },
        );
    }
    Ok(MultiTenantRun {
        epoch_seconds,
        total_bytes,
        goodput_bytes_per_sec: total_bytes as f64 / epoch_seconds.max(f64::EPSILON),
        storage_cpu_busy_seconds: storage_cpu.busy_seconds(),
        link_busy_seconds: link.busy_seconds(),
        per_tenant,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ClusterConfig {
        ClusterConfig::paper_testbed(4)
    }

    fn raw_samples(n: usize, bytes: u64) -> Vec<SampleWork> {
        vec![SampleWork::new(0.0, bytes, 0.0); n]
    }

    #[test]
    fn conserves_bytes_and_accounts_per_tenant() {
        let tenants = vec![
            TenantWorkload::new(TenantId(1), TenantSpec::default(), raw_samples(64, 100_000)),
            TenantWorkload::new(TenantId(2), TenantSpec::default(), raw_samples(32, 200_000)),
        ];
        let run = simulate_multi_tenant(&base(), &tenants, 7).unwrap();
        assert_eq!(run.total_bytes, 64 * 100_000 + 32 * 200_000);
        assert_eq!(run.per_tenant[&1].samples, 64);
        assert_eq!(run.per_tenant[&2].bytes, 32 * 200_000);
        assert!(run.goodput_bytes_per_sec > 0.0);
        assert!(run.epoch_seconds >= run.per_tenant[&1].done_seconds);
    }

    #[test]
    fn higher_weight_means_lower_latency_under_contention() {
        let heavy = TenantSpec::default().with_weight(8);
        let light = TenantSpec::default().with_weight(1);
        let tenants = vec![
            TenantWorkload::new(TenantId(1), heavy, raw_samples(256, 150_000)),
            TenantWorkload::new(TenantId(2), light, raw_samples(256, 150_000)),
        ];
        let run = simulate_multi_tenant(&base(), &tenants, 3).unwrap();
        let h = &run.per_tenant[&1];
        let l = &run.per_tenant[&2];
        // The weight-8 tenant gets 8/9 of the link while both are
        // backlogged, so it clears its backlog first and its worst-case
        // latency stays well below the light tenant's (whose early
        // samples wait out the contention phase).
        assert!(h.done_seconds < l.done_seconds, "heavy should clear its backlog first");
        assert!(
            h.p99_latency_seconds * 2.0 < l.p99_latency_seconds,
            "heavy p99 {} vs light p99 {}",
            h.p99_latency_seconds,
            l.p99_latency_seconds
        );
    }

    #[test]
    fn quota_caps_the_hog_and_spares_the_victim() {
        // Hog wants ~2.4 MB/s of a 500 Mbps link but is quotaed to 1 MB/s.
        let hog = TenantSpec::default().with_quota(1_000_000.0, 100_000);
        let tenants = vec![
            TenantWorkload::new(TenantId(1), hog, raw_samples(128, 150_000)),
            TenantWorkload::new(TenantId(2), TenantSpec::default(), raw_samples(128, 150_000)),
        ];
        let run = simulate_multi_tenant(&base(), &tenants, 11).unwrap();
        let hog = &run.per_tenant[&1];
        let victim = &run.per_tenant[&2];
        // The hog's achieved rate saturates near (not above) its quota.
        let hog_rate = hog.bytes as f64 / hog.done_seconds;
        assert!(hog_rate < 1_100_000.0, "hog served at {hog_rate} B/s past its quota");
        assert!(hog_rate > 700_000.0, "hog far below its quota at {hog_rate} B/s");
        assert!(hog.throttled > 0, "a saturating hog must hit the reject horizon");
        assert_eq!(victim.throttled, 0);
        assert!(victim.done_seconds < hog.done_seconds);
    }

    #[test]
    fn digests_are_invariant_across_seeds_but_timing_is_not() {
        let tenants = vec![
            TenantWorkload::new(TenantId(1), TenantSpec::default().with_weight(3), {
                let mut v = raw_samples(96, 120_000);
                v.extend(vec![SampleWork::new(0.001, 30_000, 0.0); 32]);
                v
            }),
            TenantWorkload::new(
                TenantId(2),
                TenantSpec::default().with_quota(2_000_000.0, 200_000),
                raw_samples(96, 180_000),
            ),
        ];
        let runs: Vec<MultiTenantRun> = [1u64, 2, 3]
            .iter()
            .map(|&s| simulate_multi_tenant(&base(), &tenants, s).unwrap())
            .collect();
        for r in &runs[1..] {
            for (id, stats) in &r.per_tenant {
                assert_eq!(stats.digest, runs[0].per_tenant[id].digest, "tenant {id}");
                assert_eq!(stats.samples, runs[0].per_tenant[id].samples);
                assert_eq!(stats.bytes, runs[0].per_tenant[id].bytes);
            }
        }
        // Same seed → bit-identical everything (pure function).
        let again = simulate_multi_tenant(&base(), &tenants, 1).unwrap();
        assert_eq!(again, runs[0]);
    }

    #[test]
    fn offloaded_work_without_cores_is_a_typed_error() {
        let cfg = base().with_storage_cores(0);
        let tenants = vec![TenantWorkload::new(
            TenantId(1),
            TenantSpec::default(),
            vec![SampleWork::new(0.01, 10_000, 0.0)],
        )];
        let err = simulate_multi_tenant(&cfg, &tenants, 0).unwrap_err();
        assert_eq!(err, SimError::NoStorageCores);
    }

    #[test]
    fn empty_run_is_a_typed_error() {
        let err = simulate_multi_tenant(&base(), &[], 0).unwrap_err();
        assert_eq!(err, SimError::EmptyFleet);
    }
}
