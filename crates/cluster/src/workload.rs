use serde::{Deserialize, Serialize};

use crate::GpuModel;

/// The resource demands of one sample under a chosen offload split.
///
/// Policies translate a sample's profile plus a split point into this
/// resource vector; the simulator does not care which operations produced
/// the numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleWork {
    /// Single-core seconds of offloaded preprocessing on the storage node.
    pub storage_cpu_seconds: f64,
    /// Bytes shipped over the link for this sample.
    pub transfer_bytes: u64,
    /// Single-core seconds of remaining preprocessing on the compute node.
    pub compute_cpu_seconds: f64,
}

impl SampleWork {
    /// Creates a work vector.
    ///
    /// # Panics
    ///
    /// Panics when either CPU time is negative or not finite.
    pub fn new(storage_cpu_seconds: f64, transfer_bytes: u64, compute_cpu_seconds: f64) -> Self {
        assert!(
            storage_cpu_seconds.is_finite() && storage_cpu_seconds >= 0.0,
            "invalid storage CPU seconds {storage_cpu_seconds}"
        );
        assert!(
            compute_cpu_seconds.is_finite() && compute_cpu_seconds >= 0.0,
            "invalid compute CPU seconds {compute_cpu_seconds}"
        );
        SampleWork { storage_cpu_seconds, transfer_bytes, compute_cpu_seconds }
    }
}

/// One epoch's workload: per-sample demands plus batching and the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochSpec {
    /// Per-sample resource demands, in loading order.
    pub samples: Vec<SampleWork>,
    /// Training batch size (the PyTorch example's default is 256).
    pub batch_size: usize,
    /// GPU cost model.
    pub gpu: GpuModel,
}

impl EpochSpec {
    /// Creates an epoch spec.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size` is zero.
    pub fn new(samples: Vec<SampleWork>, batch_size: usize, gpu: GpuModel) -> EpochSpec {
        assert!(batch_size > 0, "batch size must be positive");
        EpochSpec { samples, batch_size, gpu }
    }

    /// Number of batches (the final partial batch counts).
    pub fn batch_count(&self) -> usize {
        self.samples.len().div_ceil(self.batch_size)
    }

    /// Total bytes this epoch moves over the link.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.samples.iter().map(|s| s.transfer_bytes).sum()
    }

    /// Total offloaded single-core CPU seconds.
    pub fn total_storage_cpu(&self) -> f64 {
        self.samples.iter().map(|s| s.storage_cpu_seconds).sum()
    }

    /// Total local single-core CPU seconds.
    pub fn total_compute_cpu(&self) -> f64 {
        self.samples.iter().map(|s| s.compute_cpu_seconds).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let spec = EpochSpec::new(
            vec![SampleWork::new(0.1, 100, 0.2), SampleWork::new(0.3, 200, 0.4)],
            256,
            GpuModel::AlexNet,
        );
        assert_eq!(spec.total_transfer_bytes(), 300);
        assert!((spec.total_storage_cpu() - 0.4).abs() < 1e-12);
        assert!((spec.total_compute_cpu() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn batch_count_rounds_up() {
        let spec = EpochSpec::new(vec![SampleWork::new(0.0, 0, 0.0); 513], 256, GpuModel::AlexNet);
        assert_eq!(spec.batch_count(), 3);
    }

    #[test]
    #[should_panic(expected = "invalid storage CPU")]
    fn negative_cpu_rejected() {
        SampleWork::new(-1.0, 0, 0.0);
    }
}
