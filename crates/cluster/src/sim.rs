//! Single-node (paper testbed) epoch simulation — a thin configuration of
//! the unified [`crate::stagegraph`] core: one nominal storage node, every
//! sample routed to it.

use crate::stagegraph::{run_stage_graph, FleetNodeConfig, SampleRouting};
use crate::{ClusterConfig, EpochSpec, EpochStats};

/// Errors from epoch simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The workload offloads preprocessing but the storage node has zero
    /// cores for it.
    NoStorageCores,
    /// The workload requires local preprocessing but the compute node has
    /// zero cores.
    NoComputeCores,
    /// The compute node has zero GPUs.
    NoGpus,
    /// A fleet sample's owners are all dead (no surviving replica).
    SampleUnreachable {
        /// Index of the unreachable sample in loading order.
        sample: u64,
    },
    /// A fleet simulation was given an empty node vector.
    EmptyFleet,
    /// A fleet's owner lists are not parallel to the epoch's samples.
    OwnersMismatch {
        /// Number of owner lists supplied.
        owners: usize,
        /// Number of samples in the epoch.
        samples: usize,
    },
    /// An owner list names a node outside the fleet.
    OwnerOutOfRange {
        /// The sample whose owner list is malformed.
        sample: u64,
        /// The offending owner index.
        owner: usize,
        /// Number of nodes in the fleet.
        nodes: usize,
    },
    /// A kill event names a node outside the fleet.
    KillOutOfRange {
        /// The node the kill event names.
        node: usize,
        /// Number of nodes in the fleet.
        nodes: usize,
    },
    /// A fleet's kill-threshold vector is not parallel to its node vector.
    ThresholdsMismatch {
        /// Number of thresholds supplied.
        thresholds: usize,
        /// Number of nodes in the fleet.
        nodes: usize,
    },
    /// A mid-epoch work replacement is not parallel to the epoch's samples.
    WorksMismatch {
        /// Number of sample works supplied by the directive.
        got: usize,
        /// Number of samples in the epoch.
        samples: usize,
    },
    /// A mid-epoch node update names a node outside the fleet.
    UpdateOutOfRange {
        /// The node the update names.
        node: usize,
        /// Number of nodes in the fleet.
        nodes: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoStorageCores => {
                write!(f, "workload offloads preprocessing but storage node has 0 cores")
            }
            SimError::NoComputeCores => {
                write!(f, "workload needs local preprocessing but compute node has 0 cores")
            }
            SimError::NoGpus => write!(f, "compute node has 0 GPUs"),
            SimError::SampleUnreachable { sample } => {
                write!(f, "sample {sample} has no surviving replica")
            }
            SimError::EmptyFleet => write!(f, "fleet needs at least one node"),
            SimError::OwnersMismatch { owners, samples } => {
                write!(f, "{owners} owner lists for {samples} samples (must be parallel)")
            }
            SimError::OwnerOutOfRange { sample, owner, nodes } => {
                write!(f, "sample {sample} names owner {owner}, but the fleet has {nodes} nodes")
            }
            SimError::KillOutOfRange { node, nodes } => {
                write!(f, "kill event names node {node}, but the fleet has {nodes} nodes")
            }
            SimError::ThresholdsMismatch { thresholds, nodes } => {
                write!(f, "{thresholds} kill thresholds for {nodes} nodes (must be parallel)")
            }
            SimError::WorksMismatch { got, samples } => {
                write!(f, "directive replaces {got} sample works, epoch has {samples} samples")
            }
            SimError::UpdateOutOfRange { node, nodes } => {
                write!(f, "node update names node {node}, but the fleet has {nodes} nodes")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Simulates one epoch over the cluster, returning its statistics.
///
/// Per-sample flow (all FIFO, pipelined):
///
/// 1. storage read at `storage_read_bytes_per_sec` (RAM-cached, rarely
///    binding);
/// 2. offloaded preprocessing on the storage CPU pool (skipped when the
///    sample offloads nothing);
/// 3. transfer of `transfer_bytes` over the shared link;
/// 4. remaining preprocessing on the compute CPU pool (skipped when the
///    whole pipeline was offloaded);
/// 5. once every sample of a batch is ready, the batch runs on the GPU.
///
/// A bounded prefetch window (`config.prefetch_batches`) gates stage 1: the
/// loader may not start fetching batch `b` until batch
/// `b - prefetch_batches` has left the GPU, like a real `DataLoader` with a
/// bounded queue.
///
/// This is the degenerate configuration of [`crate::stagegraph`]: a single
/// nominal node serving every sample.
///
/// # Errors
///
/// Returns [`SimError::NoStorageCores`] /
/// [`SimError::NoComputeCores`] when work is routed to an empty pool.
pub fn simulate_epoch(config: &ClusterConfig, spec: &EpochSpec) -> Result<EpochStats, SimError> {
    let nodes = [FleetNodeConfig::nominal(config)];
    let run = run_stage_graph(config, &nodes, spec, SampleRouting::SingleNode, None)?;
    Ok(run.total_stats())
}

/// Like [`simulate_epoch`] but also returns the per-sample timeline — when
/// each sample finished its storage read, offloaded preprocessing, link
/// transfer, and local preprocessing, and when its batch left the GPU.
///
/// # Errors
///
/// Same conditions as [`simulate_epoch`].
pub fn simulate_epoch_traced(
    config: &ClusterConfig,
    spec: &EpochSpec,
) -> Result<crate::trace::EpochTrace, SimError> {
    let nodes = [FleetNodeConfig::nominal(config)];
    let mut samples = Vec::with_capacity(spec.samples.len());
    let run = run_stage_graph(config, &nodes, spec, SampleRouting::SingleNode, Some(&mut samples))?;
    Ok(crate::trace::EpochTrace::new(samples, run.total_stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuModel, SampleWork};

    fn testbed() -> ClusterConfig {
        ClusterConfig::paper_testbed(48)
    }

    #[test]
    fn empty_epoch_is_zero() {
        let spec = EpochSpec::new(vec![], 256, GpuModel::AlexNet);
        let stats = simulate_epoch(&testbed(), &spec).unwrap();
        assert_eq!(stats.epoch_seconds, 0.0);
        assert_eq!(stats.traffic_bytes, 0);
        assert_eq!(stats.batches, 0);
    }

    #[test]
    fn io_bound_epoch_tracks_network_time() {
        // 4096 samples * 300 KB at 500 Mbps: network needs ~19.7 s and
        // dwarfs CPU (none) and GPU (AlexNet, 16 batches * 64 ms = 1 s).
        let samples = vec![SampleWork::new(0.0, 300_000, 0.001); 4096];
        let spec = EpochSpec::new(samples, 256, GpuModel::AlexNet);
        let stats = simulate_epoch(&testbed(), &spec).unwrap();
        let net_s = 4096.0 * 300_000.0 * 8.0 / 500e6;
        assert!(
            (stats.epoch_seconds - net_s).abs() / net_s < 0.1,
            "epoch {} vs network bound {net_s}",
            stats.epoch_seconds
        );
        assert!(stats.link_utilization() > 0.9);
        assert!(stats.gpu_utilization() < 0.2);
    }

    #[test]
    fn gpu_bound_epoch_saturates_gpu() {
        // Tiny transfers, heavy model: GPU should be the bottleneck.
        let samples = vec![SampleWork::new(0.0, 10_000, 0.001); 4096];
        let spec = EpochSpec::new(samples, 256, GpuModel::ResNet50);
        let stats = simulate_epoch(&testbed(), &spec).unwrap();
        let gpu_s = 4096.0 / 400.0;
        assert!(
            (stats.epoch_seconds - gpu_s).abs() / gpu_s < 0.15,
            "epoch {} vs gpu bound {gpu_s}",
            stats.epoch_seconds
        );
        assert!(stats.gpu_utilization() > 0.85);
    }

    #[test]
    fn storage_cpu_bound_with_one_core() {
        // Heavy offloaded preprocessing on a single storage core dominates.
        let samples = vec![SampleWork::new(0.030, 150_528, 0.002); 2048];
        let spec = EpochSpec::new(samples, 256, GpuModel::AlexNet);
        let config = testbed().with_storage_cores(1);
        let stats = simulate_epoch(&config, &spec).unwrap();
        let cpu_s = 2048.0 * 0.030;
        assert!(
            stats.epoch_seconds >= cpu_s * 0.95,
            "epoch {} below storage CPU bound {cpu_s}",
            stats.epoch_seconds
        );
        // More cores relieve the bottleneck.
        let fast = simulate_epoch(&testbed(), &spec).unwrap();
        assert!(fast.epoch_seconds < stats.epoch_seconds / 4.0);
    }

    #[test]
    fn offload_without_storage_cores_errors() {
        let samples = vec![SampleWork::new(0.01, 1000, 0.0); 10];
        let spec = EpochSpec::new(samples, 4, GpuModel::AlexNet);
        let config = testbed().with_storage_cores(0);
        assert_eq!(simulate_epoch(&config, &spec), Err(SimError::NoStorageCores));
    }

    #[test]
    fn no_offload_with_zero_storage_cores_is_fine() {
        let samples = vec![SampleWork::new(0.0, 1000, 0.001); 10];
        let spec = EpochSpec::new(samples, 4, GpuModel::AlexNet);
        let config = testbed().with_storage_cores(0);
        assert!(simulate_epoch(&config, &spec).is_ok());
    }

    #[test]
    fn local_preprocessing_without_compute_cores_errors() {
        let samples = vec![SampleWork::new(0.0, 1000, 0.01); 10];
        let spec = EpochSpec::new(samples, 4, GpuModel::AlexNet);
        let config = testbed().with_compute_cores(0);
        assert_eq!(simulate_epoch(&config, &spec), Err(SimError::NoComputeCores));
    }

    #[test]
    fn traffic_is_exact_sum() {
        let samples: Vec<_> = (0..100u64).map(|i| SampleWork::new(0.0, 1000 + i, 0.001)).collect();
        let expected: u64 = samples.iter().map(|s| s.transfer_bytes).sum();
        let spec = EpochSpec::new(samples, 16, GpuModel::AlexNet);
        let stats = simulate_epoch(&testbed(), &spec).unwrap();
        assert_eq!(stats.traffic_bytes, expected);
    }

    #[test]
    fn prefetch_window_bounds_lead() {
        // With a window of 1 and a slow GPU, the loader cannot sprint ahead:
        // epoch time approaches sum of per-batch (transfer + gpu) serialized.
        let mut config = testbed();
        config.prefetch_batches = 1;
        let samples = vec![SampleWork::new(0.0, 1_000_000, 0.0); 64];
        let spec = EpochSpec::new(samples, 16, GpuModel::Custom { seconds_per_image: 0.01 });
        let narrow = simulate_epoch(&config, &spec).unwrap();
        let wide = simulate_epoch(&testbed(), &spec).unwrap();
        assert!(
            narrow.epoch_seconds > wide.epoch_seconds * 1.05,
            "narrow {} wide {}",
            narrow.epoch_seconds,
            wide.epoch_seconds
        );
    }

    #[test]
    fn deterministic() {
        let samples = vec![SampleWork::new(0.002, 123_456, 0.004); 1000];
        let spec = EpochSpec::new(samples, 64, GpuModel::ResNet18);
        let a = simulate_epoch(&testbed(), &spec).unwrap();
        let b = simulate_epoch(&testbed(), &spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn figure_1d_shape_gpu_utilization_ordering() {
        // Same data-bound pipeline, three models: utilization must order
        // ResNet50 > ResNet18 > AlexNet, with ResNet50 near max.
        let samples = vec![SampleWork::new(0.0, 120_000, 0.002); 4096];
        let make = |gpu| EpochSpec::new(samples.clone(), 256, gpu);
        let alex = simulate_epoch(&testbed(), &make(GpuModel::AlexNet)).unwrap();
        let r18 = simulate_epoch(&testbed(), &make(GpuModel::ResNet18)).unwrap();
        let r50 = simulate_epoch(&testbed(), &make(GpuModel::ResNet50)).unwrap();
        assert!(r50.gpu_utilization() > 0.85, "r50 {}", r50.gpu_utilization());
        assert!(r18.gpu_utilization() < r50.gpu_utilization());
        assert!(alex.gpu_utilization() < r18.gpu_utilization());
        assert!(alex.gpu_utilization() < 0.25, "alexnet {}", alex.gpu_utilization());
    }
}
