use serde::{Deserialize, Serialize};

/// Results of simulating one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Wall-clock (virtual) seconds from epoch start to the last batch's GPU
    /// completion.
    pub epoch_seconds: f64,
    /// Bytes moved over the storage→compute link.
    pub traffic_bytes: u64,
    /// Seconds the GPU spent computing.
    pub gpu_busy_seconds: f64,
    /// Core-seconds of offloaded preprocessing executed on the storage node.
    pub storage_cpu_busy_seconds: f64,
    /// Core-seconds of preprocessing executed on the compute node.
    pub compute_cpu_busy_seconds: f64,
    /// Seconds the link spent transferring.
    pub link_busy_seconds: f64,
    /// Number of samples processed.
    pub samples: u64,
    /// Number of GPU batches executed.
    pub batches: u64,
    /// GPUs on the compute node (normalizes utilization).
    pub gpus: u64,
}

impl EpochStats {
    /// GPU utilization in `[0, 1]` — the paper's Figure 1d metric
    /// (busy GPU-seconds over available GPU-seconds).
    pub fn gpu_utilization(&self) -> f64 {
        if self.epoch_seconds <= 0.0 {
            0.0
        } else {
            self.gpu_busy_seconds / (self.epoch_seconds * self.gpus.max(1) as f64)
        }
    }

    /// Link utilization in `[0, 1]`.
    pub fn link_utilization(&self) -> f64 {
        if self.epoch_seconds <= 0.0 {
            0.0
        } else {
            self.link_busy_seconds / self.epoch_seconds
        }
    }

    /// Mean bytes per sample on the wire.
    pub fn bytes_per_sample(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.traffic_bytes as f64 / self.samples as f64
        }
    }

    /// Epoch images per second.
    pub fn throughput(&self) -> f64 {
        if self.epoch_seconds <= 0.0 {
            0.0
        } else {
            self.samples as f64 / self.epoch_seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> EpochStats {
        EpochStats {
            epoch_seconds: 100.0,
            traffic_bytes: 1_000_000,
            gpu_busy_seconds: 40.0,
            storage_cpu_busy_seconds: 10.0,
            compute_cpu_busy_seconds: 20.0,
            link_busy_seconds: 90.0,
            samples: 1000,
            batches: 4,
            gpus: 1,
        }
    }

    #[test]
    fn derived_metrics() {
        let s = stats();
        assert_eq!(s.gpu_utilization(), 0.4);
        assert_eq!(s.link_utilization(), 0.9);
        assert_eq!(s.bytes_per_sample(), 1000.0);
        assert_eq!(s.throughput(), 10.0);
    }

    #[test]
    fn zero_epoch_is_safe() {
        let mut s = stats();
        s.epoch_seconds = 0.0;
        s.samples = 0;
        assert_eq!(s.gpu_utilization(), 0.0);
        assert_eq!(s.bytes_per_sample(), 0.0);
        assert_eq!(s.throughput(), 0.0);
    }
}
