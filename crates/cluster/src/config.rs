use netsim::Bandwidth;
use serde::{Deserialize, Serialize};

/// Static description of the two-node testbed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// CPU cores available for preprocessing on the compute node.
    pub compute_cores: usize,
    /// GPUs on the compute node (data-parallel batches).
    pub gpus: usize,
    /// CPU cores available for offloaded preprocessing on the storage node.
    pub storage_cores: usize,
    /// Storage→compute link bandwidth in bits per second.
    pub link_bps: f64,
    /// Fixed per-transfer latency in seconds (request/response overhead).
    pub link_latency: f64,
    /// How many batches the loader may run ahead of the GPU.
    pub prefetch_batches: usize,
    /// Storage-node in-memory read throughput in bytes/second (the paper
    /// caches datasets in RAM, so this is high and rarely binding).
    pub storage_read_bytes_per_sec: f64,
}

impl ClusterConfig {
    /// The paper's evaluation testbed: 48 compute cores, 500 Mbps link,
    /// in-memory dataset, with `storage_cores` varied per experiment.
    pub fn paper_testbed(storage_cores: usize) -> ClusterConfig {
        ClusterConfig {
            compute_cores: 48,
            gpus: 1,
            storage_cores,
            link_bps: 500e6,
            link_latency: 200e-6,
            prefetch_batches: 8,
            storage_read_bytes_per_sec: 10e9, // ~10 GB/s RAM-cached reads
        }
    }

    /// The link bandwidth as a typed value.
    pub fn bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bps(self.link_bps)
    }

    /// Returns a copy with a different link bandwidth.
    #[must_use]
    pub fn with_bandwidth(mut self, bw: Bandwidth) -> ClusterConfig {
        self.link_bps = bw.bits_per_second();
        self
    }

    /// Returns a copy with a different storage-core count.
    #[must_use]
    pub fn with_storage_cores(mut self, cores: usize) -> ClusterConfig {
        self.storage_cores = cores;
        self
    }

    /// Returns a copy with a different compute-core count.
    #[must_use]
    pub fn with_compute_cores(mut self, cores: usize) -> ClusterConfig {
        self.compute_cores = cores;
        self
    }

    /// Returns a copy with a different GPU count.
    #[must_use]
    pub fn with_gpus(mut self, gpus: usize) -> ClusterConfig {
        self.gpus = gpus;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_matches_section_4() {
        let c = ClusterConfig::paper_testbed(48);
        assert_eq!(c.compute_cores, 48);
        assert_eq!(c.storage_cores, 48);
        assert_eq!(c.link_bps, 500e6);
    }

    #[test]
    fn builders_modify_single_field() {
        let c = ClusterConfig::paper_testbed(48)
            .with_storage_cores(2)
            .with_bandwidth(Bandwidth::from_gbps(10.0));
        assert_eq!(c.storage_cores, 2);
        assert_eq!(c.link_bps, 10e9);
        assert_eq!(c.compute_cores, 48);
    }
}
