use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pool of identical CPU cores serving tasks FIFO.
///
/// Tasks are submitted in order with a ready time; each starts at
/// `max(ready, earliest core free)` and occupies one core for its duration.
/// This is the standard `G/G/k` forward schedule under FIFO dispatch.
#[derive(Debug, Clone)]
pub struct CpuPool {
    // Min-heap of times at which each core becomes free. Total order on f64
    // is safe here: times are always finite and non-NaN (asserted on entry).
    free_at: BinaryHeap<Reverse<OrderedTime>>,
    cores: usize,
    busy_seconds: f64,
}

/// `f64` wrapper with a total order; times are validated finite.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedTime(f64);

impl Eq for OrderedTime {}

impl PartialOrd for OrderedTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("times are finite")
    }
}

impl CpuPool {
    /// Creates a pool of `cores` idle cores.
    ///
    /// A zero-core pool is legal; submitting work to it panics, so callers
    /// must route around empty pools (the simulator returns an error
    /// instead).
    pub fn new(cores: usize) -> CpuPool {
        let mut free_at = BinaryHeap::with_capacity(cores);
        for _ in 0..cores {
            free_at.push(Reverse(OrderedTime(0.0)));
        }
        CpuPool { free_at, cores, busy_seconds: 0.0 }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Schedules a task that becomes ready at `ready` and needs `seconds` of
    /// one core; returns its completion time.
    ///
    /// # Panics
    ///
    /// Panics when the pool has zero cores or the inputs are not finite.
    pub fn run(&mut self, ready: f64, seconds: f64) -> f64 {
        assert!(ready.is_finite() && ready >= 0.0, "invalid ready time {ready}");
        assert!(seconds.is_finite() && seconds >= 0.0, "invalid task length {seconds}");
        let Reverse(OrderedTime(free)) = self.free_at.pop().expect("CpuPool has no cores");
        let start = ready.max(free);
        let end = start + seconds;
        self.free_at.push(Reverse(OrderedTime(end)));
        self.busy_seconds += seconds;
        end
    }

    /// Total core-seconds of work executed.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_seconds
    }

    /// Time at which the last core finishes all queued work.
    pub fn drain_time(&self) -> f64 {
        self.free_at.iter().map(|Reverse(OrderedTime(t))| *t).fold(0.0, f64::max)
    }
}

/// A single FIFO server (the GPU): tasks run one at a time in submission
/// order.
#[derive(Debug, Clone)]
pub struct FifoServer {
    free_at: f64,
    busy_seconds: f64,
}

impl FifoServer {
    /// Creates an idle server.
    pub fn new() -> FifoServer {
        FifoServer { free_at: 0.0, busy_seconds: 0.0 }
    }

    /// Schedules a task ready at `ready` lasting `seconds`; returns its
    /// completion time.
    ///
    /// # Panics
    ///
    /// Panics when the inputs are not finite or negative.
    pub fn run(&mut self, ready: f64, seconds: f64) -> f64 {
        assert!(ready.is_finite() && ready >= 0.0, "invalid ready time {ready}");
        assert!(seconds.is_finite() && seconds >= 0.0, "invalid task length {seconds}");
        let start = ready.max(self.free_at);
        self.free_at = start + seconds;
        self.busy_seconds += seconds;
        self.free_at
    }

    /// Total seconds of work executed.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_seconds
    }

    /// Time the server becomes idle.
    pub fn free_at(&self) -> f64 {
        self.free_at
    }
}

impl Default for FifoServer {
    fn default() -> Self {
        FifoServer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_serializes() {
        let mut pool = CpuPool::new(1);
        assert_eq!(pool.run(0.0, 1.0), 1.0);
        assert_eq!(pool.run(0.0, 1.0), 2.0);
        assert_eq!(pool.run(5.0, 1.0), 6.0);
    }

    #[test]
    fn multi_core_parallelizes() {
        let mut pool = CpuPool::new(4);
        for _ in 0..4 {
            assert_eq!(pool.run(0.0, 2.0), 2.0);
        }
        // Fifth task queues behind the earliest core.
        assert_eq!(pool.run(0.0, 2.0), 4.0);
        assert_eq!(pool.busy_seconds(), 10.0);
    }

    #[test]
    fn ready_time_delays_start() {
        let mut pool = CpuPool::new(2);
        assert_eq!(pool.run(10.0, 1.0), 11.0);
        assert_eq!(pool.drain_time(), 11.0);
    }

    #[test]
    #[should_panic(expected = "no cores")]
    fn zero_core_pool_rejects_work() {
        CpuPool::new(0).run(0.0, 1.0);
    }

    #[test]
    fn makespan_matches_greedy_bound() {
        // 100 unit tasks on 8 cores, all ready at 0: makespan = ceil(100/8).
        let mut pool = CpuPool::new(8);
        for _ in 0..100 {
            pool.run(0.0, 1.0);
        }
        assert_eq!(pool.drain_time(), 13.0);
    }

    #[test]
    fn fifo_server_behaves_like_one_core_pool() {
        let mut srv = FifoServer::new();
        let mut pool = CpuPool::new(1);
        let jobs = [(0.0, 0.5), (0.1, 0.2), (3.0, 1.0), (3.0, 0.0)];
        for &(r, s) in &jobs {
            assert_eq!(srv.run(r, s), pool.run(r, s));
        }
        assert_eq!(srv.busy_seconds(), pool.busy_seconds());
    }
}
