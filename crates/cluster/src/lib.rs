//! Discrete-event simulator of a disaggregated DL training cluster.
//!
//! Reproduces the paper's two-node testbed: a **storage node** (in-memory
//! dataset, configurable CPU cores for near-storage preprocessing), a
//! bandwidth-capped **link** (500 Mbps in the evaluation), and a **compute
//! node** (CPU cores for local preprocessing, one GPU). An epoch flows each
//! sample through up to four stages:
//!
//! ```text
//! storage CPU (offloaded prefix) → link transfer → compute CPU (suffix)
//!                                → GPU (per batch, once all samples ready)
//! ```
//!
//! Stages are pipelined: every resource is a FIFO queue (CPU pools are
//! multi-server), and a bounded prefetch window keeps the loader from
//! running arbitrarily far ahead of the GPU, as in a real `DataLoader`.
//! Time is virtual, so simulating a 40 000-sample epoch takes milliseconds
//! and is exactly reproducible.
//!
//! The simulator is policy-agnostic: it consumes per-sample
//! [`SampleWork`] (storage CPU seconds, bytes on the wire, compute CPU
//! seconds) produced by the `sophon` crate's policies, and returns
//! [`EpochStats`] (epoch time, traffic, utilizations) — the quantities
//! plotted in the paper's Figures 1d, 3, and 4.
//!
//! # Example
//!
//! ```
//! use cluster::{ClusterConfig, EpochSpec, GpuModel, SampleWork};
//! use netsim::Bandwidth;
//!
//! let config = ClusterConfig::paper_testbed(48); // 48 storage cores
//! let samples = vec![SampleWork::new(0.0, 300_000, 0.030); 1024];
//! let spec = EpochSpec::new(samples, 256, GpuModel::AlexNet);
//! let stats = cluster::simulate_epoch(&config, &spec)?;
//! assert!(stats.epoch_seconds > 0.0);
//! assert_eq!(stats.traffic_bytes, 1024 * 300_000);
//! # Ok::<(), cluster::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod fleet;
mod gpu;
pub mod multitenant;
mod resources;
mod sim;
pub mod stagegraph;
mod stats;
pub mod trace;
mod training;
mod workload;

pub use cache::{simulate_cached_training, CachedTrainingStats};
pub use config::ClusterConfig;
pub use fleet::{
    simulate_fleet_cached_training, simulate_fleet_epoch, simulate_fleet_epoch_observed,
    simulate_fleet_training, FleetCachedTrainingStats, FleetEpochStats, FleetTrainingStats,
};
pub use gpu::GpuModel;
pub use multitenant::{simulate_multi_tenant, MultiTenantRun, TenantRunStats, TenantWorkload};
pub use resources::{CpuPool, FifoServer};
pub use sim::{simulate_epoch, simulate_epoch_traced, SimError};
pub use stagegraph::{
    run_stage_graph_adaptive, EpochDirective, FaultEvent, FleetNodeConfig, KillEvent,
    NodeEpochStats, NodeUpdate, StageKind, StageSample,
};
pub use stats::EpochStats;
pub use trace::TraceError;
pub use training::{simulate_training, TrainingStats};
pub use workload::{EpochSpec, SampleWork};
