use serde::{Deserialize, Serialize};

/// Per-model GPU compute cost.
///
/// The paper's Figure 1d contrasts three models on the same GPU: ResNet50
/// (compute-heavy, nearly saturates the GPU even behind a slow link),
/// ResNet18 (moderate; ~65 % of its time data-stalled at 500 Mbps), and the
/// evaluation's AlexNet (compute-light, easily I/O-bound). Throughputs are
/// calibrated to published V100-class numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GpuModel {
    /// AlexNet — ~4000 images/s.
    AlexNet,
    /// ResNet-18 — ~1000 images/s.
    ResNet18,
    /// ResNet-50 — ~400 images/s.
    ResNet50,
    /// A custom per-image GPU cost in seconds.
    Custom {
        /// Seconds of GPU time per image.
        seconds_per_image: f64,
    },
}

impl GpuModel {
    /// GPU seconds consumed per image (forward + backward).
    pub fn seconds_per_image(self) -> f64 {
        match self {
            GpuModel::AlexNet => 1.0 / 4000.0,
            GpuModel::ResNet18 => 1.0 / 1000.0,
            GpuModel::ResNet50 => 1.0 / 400.0,
            GpuModel::Custom { seconds_per_image } => seconds_per_image,
        }
    }

    /// GPU seconds consumed per sample, whatever the modality.
    ///
    /// Alias of [`seconds_per_image`](GpuModel::seconds_per_image): the
    /// simulator charges the GPU per *sample*, so an audio workload uses
    /// `Custom` with its measured per-clip step time and nothing else in
    /// the cluster model cares which modality the bytes carried.
    pub fn seconds_per_sample(self) -> f64 {
        self.seconds_per_image()
    }

    /// GPU seconds per batch of `batch_size` samples.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size` is zero.
    pub fn seconds_per_batch(self, batch_size: usize) -> f64 {
        assert!(batch_size > 0, "batch size must be positive");
        self.seconds_per_sample() * batch_size as f64
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            GpuModel::AlexNet => "alexnet",
            GpuModel::ResNet18 => "resnet18",
            GpuModel::ResNet50 => "resnet50",
            GpuModel::Custom { .. } => "custom",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_compute_intensity() {
        assert!(GpuModel::ResNet50.seconds_per_image() > GpuModel::ResNet18.seconds_per_image());
        assert!(GpuModel::ResNet18.seconds_per_image() > GpuModel::AlexNet.seconds_per_image());
    }

    #[test]
    fn batch_scaling() {
        let per_img = GpuModel::AlexNet.seconds_per_image();
        assert!((GpuModel::AlexNet.seconds_per_batch(256) - per_img * 256.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        GpuModel::AlexNet.seconds_per_batch(0);
    }

    #[test]
    fn custom_model() {
        let m = GpuModel::Custom { seconds_per_image: 0.01 };
        assert_eq!(m.seconds_per_batch(10), 0.1);
        assert_eq!(m.name(), "custom");
        assert_eq!(m.seconds_per_sample(), m.seconds_per_image());
    }
}
