//! Per-sample execution traces of a simulated epoch.
//!
//! A trace records the completion time of every stage for every sample —
//! the raw material for debugging pipeline stalls, rendering Gantt-style
//! timelines, and asserting causality invariants in tests.

use serde::{Deserialize, Serialize};

use crate::EpochStats;

/// One sample's timeline within a simulated epoch (virtual seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleTrace {
    /// Sample index in loading order.
    pub sample: u64,
    /// Batch the sample belongs to.
    pub batch: u64,
    /// Prefetch gate the sample waited for (batch `b - window` leaving the
    /// GPU).
    pub gate: f64,
    /// Storage read completion.
    pub read_done: f64,
    /// Offloaded-preprocessing completion (equals `read_done` when nothing
    /// was offloaded).
    pub offload_done: f64,
    /// Link-transfer completion.
    pub transfer_done: f64,
    /// Local-preprocessing completion (equals `transfer_done` when the full
    /// pipeline was offloaded).
    pub local_done: f64,
    /// GPU completion of the sample's batch.
    pub batch_done: f64,
}

impl SampleTrace {
    /// End-to-end latency from gate to batch completion.
    pub fn latency(&self) -> f64 {
        self.batch_done - self.gate
    }

    /// Seconds the finished sample waited for its batch to reach the GPU
    /// and complete — loader-ahead-of-GPU time.
    pub fn batch_wait(&self) -> f64 {
        self.batch_done - self.local_done
    }
}

/// Errors from trace validation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum TraceError {
    /// A sample's stages completed out of causal order.
    CausalityViolation {
        /// The offending sample.
        sample: u64,
        /// The stage that finished impossibly early.
        later_stage: &'static str,
        /// Its completion time.
        later: f64,
        /// The stage it should have followed.
        earlier_stage: &'static str,
        /// That stage's completion time.
        earlier: f64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::CausalityViolation {
                sample,
                later_stage,
                later,
                earlier_stage,
                earlier,
            } => {
                write!(
                    f,
                    "sample {sample}: {later_stage} ({later:.6}) precedes {earlier_stage} ({earlier:.6})"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// The full timeline of one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochTrace {
    samples: Vec<SampleTrace>,
    stats: EpochStats,
}

impl EpochTrace {
    pub(crate) fn new(samples: Vec<SampleTrace>, stats: EpochStats) -> EpochTrace {
        EpochTrace { samples, stats }
    }

    /// Per-sample timelines in loading order.
    pub fn samples(&self) -> &[SampleTrace] {
        &self.samples
    }

    /// The epoch's aggregate statistics.
    pub fn stats(&self) -> &EpochStats {
        &self.stats
    }

    /// Validates causality for every sample: stages complete in order and
    /// batches complete after their samples.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::CausalityViolation`] describing the first
    /// violated invariant.
    pub fn check_causality(&self) -> Result<(), TraceError> {
        for t in &self.samples {
            let chain = [
                ("gate", t.gate),
                ("read", t.read_done),
                ("offload", t.offload_done),
                ("transfer", t.transfer_done),
                ("local", t.local_done),
                ("batch", t.batch_done),
            ];
            for w in chain.windows(2) {
                if w[1].1 + 1e-12 < w[0].1 {
                    return Err(TraceError::CausalityViolation {
                        sample: t.sample,
                        later_stage: w[1].0,
                        later: w[1].1,
                        earlier_stage: w[0].0,
                        earlier: w[0].1,
                    });
                }
            }
        }
        Ok(())
    }

    /// Mean end-to-end sample latency.
    pub fn mean_latency(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(SampleTrace::latency).sum::<f64>() / self.samples.len() as f64
    }

    /// Renders a compact textual timeline of the first `n` samples
    /// (debugging aid).
    pub fn render_head(&self, n: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>7} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "sample", "batch", "read", "offload", "transfer", "local", "gpu"
        );
        for t in self.samples.iter().take(n) {
            let _ = writeln!(
                out,
                "{:>7} {:>6} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                t.sample,
                t.batch,
                t.read_done,
                t.offload_done,
                t.transfer_done,
                t.local_done,
                t.batch_done
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{
        simulate_epoch, simulate_epoch_traced, ClusterConfig, EpochSpec, GpuModel, SampleWork,
    };

    fn spec() -> EpochSpec {
        let samples: Vec<_> = (0..200u64)
            .map(|i| SampleWork::new(0.001 + (i % 7) as f64 * 1e-4, 50_000 + i * 100, 0.002))
            .collect();
        EpochSpec::new(samples, 32, GpuModel::ResNet18)
    }

    #[test]
    fn trace_covers_every_sample_in_order() {
        let trace = simulate_epoch_traced(&ClusterConfig::paper_testbed(4), &spec()).unwrap();
        assert_eq!(trace.samples().len(), 200);
        for (i, t) in trace.samples().iter().enumerate() {
            assert_eq!(t.sample, i as u64);
            assert_eq!(t.batch, i as u64 / 32);
        }
    }

    #[test]
    fn causality_holds() {
        let trace = simulate_epoch_traced(&ClusterConfig::paper_testbed(4), &spec()).unwrap();
        trace.check_causality().unwrap();
        assert!(trace.mean_latency() > 0.0);
    }

    #[test]
    fn traced_stats_match_untraced() {
        let config = ClusterConfig::paper_testbed(4);
        let stats = simulate_epoch(&config, &spec()).unwrap();
        let trace = simulate_epoch_traced(&config, &spec()).unwrap();
        assert_eq!(trace.stats(), &stats);
    }

    #[test]
    fn batch_done_filled_for_all_samples() {
        let trace = simulate_epoch_traced(&ClusterConfig::paper_testbed(4), &spec()).unwrap();
        for t in trace.samples() {
            assert!(t.batch_done > 0.0, "sample {} has no batch completion", t.sample);
            assert!(t.batch_wait() >= -1e-12);
        }
    }

    #[test]
    fn render_head_is_readable() {
        let trace = simulate_epoch_traced(&ClusterConfig::paper_testbed(4), &spec()).unwrap();
        let text = trace.render_head(3);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("transfer"));
    }
}
