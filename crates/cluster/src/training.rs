//! Multi-epoch training runs.
//!
//! Epochs are independent in the cluster model (no cross-epoch caching), so
//! a training run is one simulation of each *distinct* epoch workload plus
//! arithmetic. The distinction that matters for SOPHON is the **profiling
//! epoch**: its stage-2 profiler runs the first epoch without offloading, so
//! a SOPHON training run pays one `No-Off` epoch up front and reaps the
//! optimized epochs afterwards. This module quantifies that amortization.

use serde::{Deserialize, Serialize};

use crate::{simulate_epoch, ClusterConfig, EpochSpec, EpochStats, SimError};

/// Statistics of a full training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingStats {
    /// Total epochs executed.
    pub epochs: u64,
    /// The first epoch's stats (the profiling epoch, when distinct).
    pub first_epoch: EpochStats,
    /// Stats of each steady-state epoch.
    pub steady_epoch: EpochStats,
    /// Total wall-clock (virtual) seconds.
    pub total_seconds: f64,
    /// Total bytes moved over the link.
    pub total_traffic_bytes: u64,
}

impl TrainingStats {
    /// Mean epoch time across the run.
    pub fn mean_epoch_seconds(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.total_seconds / self.epochs as f64
        }
    }
}

/// Simulates a training run whose first epoch may differ from the rest.
///
/// # Errors
///
/// Propagates epoch-simulation failures.
///
/// # Panics
///
/// Panics when `epochs == 0`.
pub fn simulate_training(
    config: &ClusterConfig,
    first_epoch: &EpochSpec,
    steady_epoch: &EpochSpec,
    epochs: u64,
) -> Result<TrainingStats, SimError> {
    assert!(epochs > 0, "training needs at least one epoch");
    let first = simulate_epoch(config, first_epoch)?;
    let steady = if epochs > 1 { simulate_epoch(config, steady_epoch)? } else { first.clone() };
    let steady_count = epochs - 1;
    Ok(TrainingStats {
        epochs,
        total_seconds: first.epoch_seconds + steady.epoch_seconds * steady_count as f64,
        total_traffic_bytes: first.traffic_bytes + steady.traffic_bytes * steady_count,
        first_epoch: first,
        steady_epoch: steady,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuModel, SampleWork};

    fn spec(bytes: u64) -> EpochSpec {
        EpochSpec::new(vec![SampleWork::new(0.0, bytes, 0.001); 1024], 256, GpuModel::AlexNet)
    }

    #[test]
    fn uniform_run_is_linear() {
        let config = ClusterConfig::paper_testbed(48);
        let e = spec(200_000);
        let run = simulate_training(&config, &e, &e, 10).unwrap();
        assert!((run.total_seconds - run.first_epoch.epoch_seconds * 10.0).abs() < 1e-6);
        assert_eq!(run.total_traffic_bytes, run.first_epoch.traffic_bytes * 10);
        assert!((run.mean_epoch_seconds() - run.first_epoch.epoch_seconds).abs() < 1e-9);
    }

    #[test]
    fn expensive_first_epoch_amortizes() {
        let config = ClusterConfig::paper_testbed(48);
        let profiling = spec(300_000); // un-offloaded first epoch
        let steady = spec(140_000); // optimized epochs
        let run = simulate_training(&config, &profiling, &steady, 50).unwrap();
        // Mean epoch time approaches the steady time as epochs grow.
        let steady_time = run.steady_epoch.epoch_seconds;
        let overhead = run.mean_epoch_seconds() / steady_time - 1.0;
        assert!(overhead > 0.0 && overhead < 0.05, "amortized overhead {overhead}");
    }

    #[test]
    fn single_epoch_run_uses_first_spec_only() {
        let config = ClusterConfig::paper_testbed(48);
        let run = simulate_training(&config, &spec(100_000), &spec(1), 1).unwrap();
        assert_eq!(run.total_traffic_bytes, run.first_epoch.traffic_bytes);
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_panics() {
        let config = ClusterConfig::paper_testbed(48);
        let _ = simulate_training(&config, &spec(1), &spec(1), 0);
    }
}
