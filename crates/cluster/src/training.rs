//! Multi-epoch training runs.
//!
//! Epochs are independent in the cluster model (no cross-epoch caching), so
//! a training run is one simulation of each *distinct* epoch workload plus
//! arithmetic. The distinction that matters for SOPHON is the **profiling
//! epoch**: its stage-2 profiler runs the first epoch without offloading, so
//! a SOPHON training run pays one `No-Off` epoch up front and reaps the
//! optimized epochs afterwards. This module quantifies that amortization.
//!
//! Every multi-epoch entry point in the crate — [`simulate_training`],
//! [`crate::simulate_cached_training`], [`crate::simulate_fleet_training`],
//! and [`crate::simulate_fleet_cached_training`] — shares the same
//! first-then-steady aggregation through [`drive_training`]; only the
//! per-epoch simulation differs.

use serde::{Deserialize, Serialize};

use crate::{simulate_epoch, ClusterConfig, EpochSpec, EpochStats, SimError};

/// One epoch's contribution to a training run's totals.
pub(crate) trait EpochOutcome: Clone {
    /// Virtual seconds the epoch took.
    fn epoch_seconds(&self) -> f64;
    /// Bytes moved over all links during the epoch.
    fn traffic_bytes(&self) -> u64;
}

impl EpochOutcome for EpochStats {
    fn epoch_seconds(&self) -> f64 {
        self.epoch_seconds
    }
    fn traffic_bytes(&self) -> u64 {
        self.traffic_bytes
    }
}

/// Which epoch of a training run is being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TrainingPhase {
    /// Epoch 0 (profiling / cold / where mid-epoch kills land).
    First,
    /// Every epoch after the first.
    Steady,
}

/// Aggregate of a first-then-steady training run.
pub(crate) struct TrainingTotals<S> {
    /// The first epoch's outcome.
    pub first: S,
    /// The steady-state epochs' outcome (equals `first` for 1-epoch runs).
    pub steady: S,
    /// `first + steady * (epochs - 1)` seconds.
    pub total_seconds: f64,
    /// `first + steady * (epochs - 1)` bytes.
    pub total_traffic_bytes: u64,
}

/// The shared cold/steady aggregation behind every training simulator: run
/// the first epoch, run one steady epoch when the run has more than one
/// (otherwise reuse the first), and total seconds and traffic as
/// `first + steady × (epochs − 1)`.
///
/// # Panics
///
/// Panics when `epochs == 0`.
pub(crate) fn drive_training<S: EpochOutcome, E>(
    epochs: u64,
    mut run_epoch: impl FnMut(TrainingPhase) -> Result<S, E>,
) -> Result<TrainingTotals<S>, E> {
    assert!(epochs > 0, "training needs at least one epoch");
    let first = run_epoch(TrainingPhase::First)?;
    let steady = if epochs > 1 { run_epoch(TrainingPhase::Steady)? } else { first.clone() };
    let steady_count = epochs - 1;
    Ok(TrainingTotals {
        total_seconds: first.epoch_seconds() + steady.epoch_seconds() * steady_count as f64,
        total_traffic_bytes: first.traffic_bytes() + steady.traffic_bytes() * steady_count,
        first,
        steady,
    })
}

/// Statistics of a full training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingStats {
    /// Total epochs executed.
    pub epochs: u64,
    /// The first epoch's stats (the profiling epoch, when distinct).
    pub first_epoch: EpochStats,
    /// Stats of each steady-state epoch.
    pub steady_epoch: EpochStats,
    /// Total wall-clock (virtual) seconds.
    pub total_seconds: f64,
    /// Total bytes moved over the link.
    pub total_traffic_bytes: u64,
}

impl TrainingStats {
    /// Mean epoch time across the run.
    pub fn mean_epoch_seconds(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.total_seconds / self.epochs as f64
        }
    }
}

/// Simulates a training run whose first epoch may differ from the rest.
///
/// # Errors
///
/// Propagates epoch-simulation failures.
///
/// # Panics
///
/// Panics when `epochs == 0`.
pub fn simulate_training(
    config: &ClusterConfig,
    first_epoch: &EpochSpec,
    steady_epoch: &EpochSpec,
    epochs: u64,
) -> Result<TrainingStats, SimError> {
    let totals = drive_training(epochs, |phase| {
        let spec = match phase {
            TrainingPhase::First => first_epoch,
            TrainingPhase::Steady => steady_epoch,
        };
        simulate_epoch(config, spec)
    })?;
    Ok(TrainingStats {
        epochs,
        first_epoch: totals.first,
        steady_epoch: totals.steady,
        total_seconds: totals.total_seconds,
        total_traffic_bytes: totals.total_traffic_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuModel, SampleWork};

    fn spec(bytes: u64) -> EpochSpec {
        EpochSpec::new(vec![SampleWork::new(0.0, bytes, 0.001); 1024], 256, GpuModel::AlexNet)
    }

    #[test]
    fn uniform_run_is_linear() {
        let config = ClusterConfig::paper_testbed(48);
        let e = spec(200_000);
        let run = simulate_training(&config, &e, &e, 10).unwrap();
        assert!((run.total_seconds - run.first_epoch.epoch_seconds * 10.0).abs() < 1e-6);
        assert_eq!(run.total_traffic_bytes, run.first_epoch.traffic_bytes * 10);
        assert!((run.mean_epoch_seconds() - run.first_epoch.epoch_seconds).abs() < 1e-9);
    }

    #[test]
    fn expensive_first_epoch_amortizes() {
        let config = ClusterConfig::paper_testbed(48);
        let profiling = spec(300_000); // un-offloaded first epoch
        let steady = spec(140_000); // optimized epochs
        let run = simulate_training(&config, &profiling, &steady, 50).unwrap();
        // Mean epoch time approaches the steady time as epochs grow.
        let steady_time = run.steady_epoch.epoch_seconds;
        let overhead = run.mean_epoch_seconds() / steady_time - 1.0;
        assert!(overhead > 0.0 && overhead < 0.05, "amortized overhead {overhead}");
    }

    #[test]
    fn single_epoch_run_uses_first_spec_only() {
        let config = ClusterConfig::paper_testbed(48);
        let run = simulate_training(&config, &spec(100_000), &spec(1), 1).unwrap();
        assert_eq!(run.total_traffic_bytes, run.first_epoch.traffic_bytes);
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_panics() {
        let config = ClusterConfig::paper_testbed(48);
        let _ = simulate_training(&config, &spec(1), &spec(1), 0);
    }

    #[test]
    fn driver_runs_steady_epoch_once() {
        let mut calls = Vec::new();
        let totals = drive_training::<EpochStats, SimError>(5, |phase| {
            calls.push(phase);
            simulate_epoch(&ClusterConfig::paper_testbed(48), &spec(10_000))
        })
        .unwrap();
        assert_eq!(calls, vec![TrainingPhase::First, TrainingPhase::Steady]);
        assert_eq!(
            totals.total_traffic_bytes,
            totals.first.traffic_bytes + totals.steady.traffic_bytes * 4
        );
    }
}
