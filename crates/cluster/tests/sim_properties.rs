//! Property tests for the cluster simulator: lower bounds, monotonicity,
//! and conservation laws that any correct schedule must satisfy.

use cluster::{simulate_epoch, ClusterConfig, EpochSpec, GpuModel, SampleWork};
use proptest::prelude::*;

fn arb_sample() -> impl Strategy<Value = SampleWork> {
    (0.0f64..0.02, 1_000u64..600_000, 0.0f64..0.01).prop_map(|(s, b, c)| SampleWork::new(s, b, c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The epoch can never finish faster than any single resource's total
    /// work divided by its parallelism.
    #[test]
    fn epoch_respects_resource_lower_bounds(
        samples in proptest::collection::vec(arb_sample(), 1..400),
        batch in 1usize..64,
        storage_cores in 1usize..8,
    ) {
        let config = ClusterConfig::paper_testbed(storage_cores);
        let spec = EpochSpec::new(samples, batch, GpuModel::AlexNet);
        let stats = simulate_epoch(&config, &spec).unwrap();
        let eps = 1e-9;
        let net_bound = spec.total_transfer_bytes() as f64 * 8.0 / config.link_bps;
        let storage_bound = spec.total_storage_cpu() / storage_cores as f64;
        let compute_bound = spec.total_compute_cpu() / config.compute_cores as f64;
        let gpu_bound = spec.samples.len() as f64 * spec.gpu.seconds_per_image();
        prop_assert!(stats.epoch_seconds + eps >= net_bound);
        prop_assert!(stats.epoch_seconds + eps >= storage_bound);
        prop_assert!(stats.epoch_seconds + eps >= compute_bound);
        prop_assert!(stats.epoch_seconds + eps >= gpu_bound);
    }

    /// Conservation: busy-time accounting equals the workload totals.
    #[test]
    fn busy_time_conservation(
        samples in proptest::collection::vec(arb_sample(), 1..300),
        batch in 1usize..64,
    ) {
        let config = ClusterConfig::paper_testbed(4);
        let spec = EpochSpec::new(samples, batch, GpuModel::ResNet18);
        let stats = simulate_epoch(&config, &spec).unwrap();
        prop_assert!((stats.storage_cpu_busy_seconds - spec.total_storage_cpu()).abs() < 1e-9);
        prop_assert!((stats.compute_cpu_busy_seconds - spec.total_compute_cpu()).abs() < 1e-9);
        prop_assert_eq!(stats.traffic_bytes, spec.total_transfer_bytes());
        let gpu_expected = spec.samples.len() as f64 * spec.gpu.seconds_per_image();
        prop_assert!((stats.gpu_busy_seconds - gpu_expected).abs() < 1e-9);
    }

    /// Adding storage cores never slows the epoch down (FIFO pools are
    /// work-conserving here because task order is fixed).
    #[test]
    fn more_storage_cores_never_hurt(
        samples in proptest::collection::vec(arb_sample(), 1..200),
        cores in 1usize..6,
    ) {
        let spec = EpochSpec::new(samples, 32, GpuModel::AlexNet);
        let slow = simulate_epoch(&ClusterConfig::paper_testbed(cores), &spec).unwrap();
        let fast = simulate_epoch(&ClusterConfig::paper_testbed(cores * 4), &spec).unwrap();
        prop_assert!(fast.epoch_seconds <= slow.epoch_seconds + 1e-9);
    }

    /// Higher bandwidth never slows the epoch down.
    #[test]
    fn more_bandwidth_never_hurts(
        samples in proptest::collection::vec(arb_sample(), 1..200),
    ) {
        let spec = EpochSpec::new(samples, 32, GpuModel::AlexNet);
        let base = ClusterConfig::paper_testbed(4);
        let slow = simulate_epoch(&base, &spec).unwrap();
        let fast = simulate_epoch(
            &base.with_bandwidth(netsim::Bandwidth::from_gbps(10.0)),
            &spec,
        ).unwrap();
        prop_assert!(fast.epoch_seconds <= slow.epoch_seconds + 1e-9);
    }

    /// Utilizations are well-formed fractions.
    #[test]
    fn utilizations_in_unit_interval(
        samples in proptest::collection::vec(arb_sample(), 1..200),
        batch in 1usize..64,
    ) {
        let spec = EpochSpec::new(samples, batch, GpuModel::ResNet50);
        let stats = simulate_epoch(&ClusterConfig::paper_testbed(8), &spec).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&stats.gpu_utilization()));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&stats.link_utilization()));
    }
}

#[test]
fn paper_scale_epoch_runs_fast_and_matches_io_bound() {
    // A full 40 960-sample OpenImages-scale epoch (≈ 12 GB at 300 KB/sample)
    // simulates in well under a second of real time and lands on the
    // 500 Mbps network bound (~196 s virtual).
    let samples = vec![SampleWork::new(0.0, 300_000, 0.015); 40_960];
    let spec = EpochSpec::new(samples, 256, GpuModel::AlexNet);
    let start = std::time::Instant::now();
    let stats = simulate_epoch(&ClusterConfig::paper_testbed(48), &spec).unwrap();
    assert!(start.elapsed().as_secs_f64() < 5.0);
    let bound = 40_960.0 * 300_000.0 * 8.0 / 500e6;
    assert!(
        (stats.epoch_seconds - bound).abs() / bound < 0.1,
        "epoch {} vs bound {bound}",
        stats.epoch_seconds
    );
}

#[test]
fn eight_gpus_turn_gpu_bound_into_io_bound() {
    // The paper's discussion: 8 V100s training ResNet50 need ~16 Gbps; on a
    // 500 Mbps link the job flips from GPU-bound to hopelessly I/O-bound.
    let samples = vec![SampleWork::new(0.0, 120_000, 0.002); 8192];
    let spec = EpochSpec::new(samples, 256, GpuModel::ResNet50);
    let one = simulate_epoch(&ClusterConfig::paper_testbed(48), &spec).unwrap();
    let eight = simulate_epoch(&ClusterConfig::paper_testbed(48).with_gpus(8), &spec).unwrap();
    assert!(one.gpu_utilization() > 0.85, "1 GPU util {}", one.gpu_utilization());
    assert!(eight.gpu_utilization() < 0.35, "8 GPU util {}", eight.gpu_utilization());
    // With 8 GPUs the epoch time is pinned by the link, not the GPUs.
    let net_bound = spec.total_transfer_bytes() as f64 * 8.0 / 500e6;
    assert!((eight.epoch_seconds - net_bound).abs() / net_bound < 0.15);
    // A 16 Gbps link restores GPU saturation.
    let fast = simulate_epoch(
        &ClusterConfig::paper_testbed(48)
            .with_gpus(8)
            .with_bandwidth(netsim::Bandwidth::from_gbps(16.0)),
        &spec,
    )
    .unwrap();
    assert!(fast.gpu_utilization() > 0.7, "fast-link util {}", fast.gpu_utilization());
}

#[test]
fn more_gpus_never_hurt() {
    let samples = vec![SampleWork::new(0.001, 80_000, 0.003); 4096];
    let spec = EpochSpec::new(samples, 128, GpuModel::ResNet18);
    let mut last = f64::INFINITY;
    for gpus in [1usize, 2, 4, 8] {
        let stats =
            simulate_epoch(&ClusterConfig::paper_testbed(8).with_gpus(gpus), &spec).unwrap();
        assert!(stats.epoch_seconds <= last + 1e-9, "{gpus} GPUs regressed");
        last = stats.epoch_seconds;
    }
}
