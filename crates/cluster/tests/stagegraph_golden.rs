//! Golden regression grid for the stage-graph unification.
//!
//! The constants below were captured from the pre-refactor simulators
//! (`run_sim` in `sim.rs` and the hand-rolled loop in `fleet.rs`) before
//! both were reimplemented on `cluster::stagegraph`. Every `f64` is pinned
//! by its IEEE-754 bit pattern, so the test proves the unified core
//! reproduces the original per-sample stage loops **bit-for-bit** across
//! the grid: single-node, cached warm/cold, and fleet configurations with
//! kills and stragglers.
//!
//! To regenerate after an *intentional* semantic change:
//!
//! ```sh
//! cargo test -p cluster --test stagegraph_golden -- --ignored --nocapture
//! ```

use cluster::{
    simulate_cached_training, simulate_epoch, simulate_epoch_traced, simulate_fleet_epoch,
    simulate_fleet_training, simulate_training, ClusterConfig, EpochSpec, FleetEpochStats,
    FleetNodeConfig, GpuModel, KillEvent, SampleWork,
};

/// SplitMix64 — deterministic, dependency-free stream for the grid specs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// A mixed corpus: some samples offload a prefix, some ship raw, sizes and
/// CPU demands jittered deterministically.
fn mixed_spec(seed: u64, n: usize, batch: usize, gpu: GpuModel) -> EpochSpec {
    let mut rng = Rng(seed);
    let samples = (0..n)
        .map(|_| {
            let offloaded = rng.f64() < 0.6;
            let storage = if offloaded { 0.002 + 0.02 * rng.f64() } else { 0.0 };
            let bytes = rng.range(10_000, 400_000);
            let compute = if rng.f64() < 0.9 { 0.001 + 0.008 * rng.f64() } else { 0.0 };
            SampleWork::new(storage, bytes, compute)
        })
        .collect();
    EpochSpec::new(samples, batch, gpu)
}

/// A warm-cache residual of `cold`: a deterministic ~`hit_pct`% of samples
/// become cache hits (zero storage work, zero transfer, suffix compute
/// only).
fn warm_spec(cold: &EpochSpec, seed: u64, hit_pct: u64) -> EpochSpec {
    let mut rng = Rng(seed);
    let samples = cold
        .samples
        .iter()
        .map(|w| {
            if rng.next() % 100 < hit_pct {
                SampleWork::new(0.0, 0, w.compute_cpu_seconds)
            } else {
                *w
            }
        })
        .collect();
    EpochSpec::new(samples, cold.batch_size, cold.gpu)
}

/// Round-robin replica sets: sample `i` is owned by nodes
/// `i, i+1, .. (mod nodes)`, `replication` deep.
fn owners(samples: usize, nodes: usize, replication: usize) -> Vec<Vec<usize>> {
    (0..samples).map(|i| (0..replication).map(|r| (i + r) % nodes).collect()).collect()
}

fn fmt_f64(out: &mut String, label: &str, v: f64) {
    out.push_str(&format!("{label}={:016x}\n", v.to_bits()));
}

fn fmt_epoch(out: &mut String, tag: &str, s: &cluster::EpochStats) {
    fmt_f64(out, &format!("{tag}.epoch_seconds"), s.epoch_seconds);
    out.push_str(&format!("{tag}.traffic_bytes={}\n", s.traffic_bytes));
    fmt_f64(out, &format!("{tag}.gpu_busy"), s.gpu_busy_seconds);
    fmt_f64(out, &format!("{tag}.storage_cpu_busy"), s.storage_cpu_busy_seconds);
    fmt_f64(out, &format!("{tag}.compute_cpu_busy"), s.compute_cpu_busy_seconds);
    fmt_f64(out, &format!("{tag}.link_busy"), s.link_busy_seconds);
    out.push_str(&format!("{tag}.counts={}/{}/{}\n", s.samples, s.batches, s.gpus));
}

fn fmt_fleet(out: &mut String, tag: &str, s: &FleetEpochStats) {
    fmt_epoch(out, &format!("{tag}.total"), &s.total);
    out.push_str(&format!("{tag}.failovers={}\n", s.failovers));
    for (i, n) in s.per_node.iter().enumerate() {
        out.push_str(&format!(
            "{tag}.node{i}.served={} bytes={}\n",
            n.samples_served, n.traffic_bytes
        ));
        fmt_f64(out, &format!("{tag}.node{i}.cpu_busy"), n.storage_cpu_busy_seconds);
        fmt_f64(out, &format!("{tag}.node{i}.link_busy"), n.link_busy_seconds);
    }
}

/// FNV-1a over the full per-sample timeline, pinning the traced entry point
/// bit-for-bit without printing thousands of lines.
fn trace_digest(trace: &cluster::trace::EpochTrace) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for s in trace.samples() {
        mix(s.sample);
        mix(s.batch);
        mix(s.gate.to_bits());
        mix(s.read_done.to_bits());
        mix(s.offload_done.to_bits());
        mix(s.transfer_done.to_bits());
        mix(s.local_done.to_bits());
        mix(s.batch_done.to_bits());
    }
    h
}

/// Runs the whole grid and renders every statistic with exact bit patterns.
fn render_grid() -> String {
    let mut out = String::new();

    // --- Single-node grid -------------------------------------------------
    let testbed = ClusterConfig::paper_testbed(48);
    let spec_a = mixed_spec(1, 2048, 256, GpuModel::AlexNet);
    fmt_epoch(&mut out, "single.testbed", &simulate_epoch(&testbed, &spec_a).unwrap());

    let tight = ClusterConfig::paper_testbed(1).with_compute_cores(4).with_gpus(2);
    let spec_b = mixed_spec(2, 999, 64, GpuModel::ResNet18);
    fmt_epoch(&mut out, "single.tight", &simulate_epoch(&tight, &spec_b).unwrap());

    // No storage work at all (the phantom-pool edge case: 0 storage cores).
    let no_storage = ClusterConfig::paper_testbed(0);
    let spec_c = EpochSpec::new(
        mixed_spec(3, 512, 128, GpuModel::ResNet50)
            .samples
            .into_iter()
            .map(|w| SampleWork::new(0.0, w.transfer_bytes, w.compute_cpu_seconds))
            .collect(),
        128,
        GpuModel::ResNet50,
    );
    fmt_epoch(&mut out, "single.nostorage", &simulate_epoch(&no_storage, &spec_c).unwrap());

    // No compute suffix anywhere (0 compute cores, fully offloaded work).
    let no_compute = ClusterConfig::paper_testbed(8).with_compute_cores(0);
    let spec_d = EpochSpec::new(
        mixed_spec(4, 512, 128, GpuModel::AlexNet)
            .samples
            .into_iter()
            .map(|w| SampleWork::new(w.storage_cpu_seconds, w.transfer_bytes, 0.0))
            .collect(),
        128,
        GpuModel::AlexNet,
    );
    fmt_epoch(&mut out, "single.nocompute", &simulate_epoch(&no_compute, &spec_d).unwrap());

    // Traced run: the timeline must survive the refactor bit-for-bit too.
    let traced = simulate_epoch_traced(&testbed, &spec_a).unwrap();
    out.push_str(&format!("single.trace.digest={:016x}\n", trace_digest(&traced)));
    fmt_epoch(&mut out, "single.trace", traced.stats());

    // --- Training & cached cold/warm --------------------------------------
    let run = simulate_training(&testbed, &spec_a, &spec_b, 7).unwrap();
    fmt_f64(&mut out, "training.total_seconds", run.total_seconds);
    out.push_str(&format!("training.total_traffic={}\n", run.total_traffic_bytes));
    fmt_epoch(&mut out, "training.first", &run.first_epoch);
    fmt_epoch(&mut out, "training.steady", &run.steady_epoch);

    let warm = warm_spec(&spec_a, 5, 70);
    let cached = simulate_cached_training(&testbed, &spec_a, &warm, 12).unwrap();
    fmt_f64(&mut out, "cached.total_seconds", cached.run.total_seconds);
    out.push_str(&format!("cached.total_traffic={}\n", cached.run.total_traffic_bytes));
    fmt_epoch(&mut out, "cached.cold", cached.cold());
    fmt_epoch(&mut out, "cached.warm", cached.warm());

    // --- Fleet grid: kills and stragglers ---------------------------------
    let base = ClusterConfig::paper_testbed(8);
    let mut nodes: Vec<FleetNodeConfig> = vec![FleetNodeConfig::nominal(&base); 4];
    nodes[2] = nodes[2].with_speed(0.5); // one straggler at half speed
    nodes[3].storage_cores = 2; // one under-provisioned node
    let spec_f = mixed_spec(6, 1536, 256, GpuModel::AlexNet);
    let own = owners(1536, 4, 2);
    let kills = [KillEvent::new(1, 0.4)];

    let fleet = simulate_fleet_epoch(&base, &nodes, &spec_f, &own, &kills).unwrap();
    fmt_fleet(&mut out, "fleet.killed", &fleet);

    let healthy = simulate_fleet_epoch(&base, &nodes, &spec_f, &own, &[]).unwrap();
    fmt_fleet(&mut out, "fleet.healthy", &healthy);

    // Single-node fleet must agree with the plain simulator's numbers.
    let one = simulate_fleet_epoch(
        &testbed,
        &[FleetNodeConfig::nominal(&testbed)],
        &spec_a,
        &owners(2048, 1, 1),
        &[],
    )
    .unwrap();
    fmt_fleet(&mut out, "fleet.one", &one);

    let training = simulate_fleet_training(&base, &nodes, &spec_f, &own, &kills, 5).unwrap();
    fmt_f64(&mut out, "fleet.training.total_seconds", training.total_seconds);
    out.push_str(&format!("fleet.training.total_traffic={}\n", training.total_traffic_bytes));
    fmt_fleet(&mut out, "fleet.training.first", &training.first_epoch);
    fmt_fleet(&mut out, "fleet.training.steady", &training.steady_epoch);

    out
}

#[test]
fn unified_core_reproduces_pre_refactor_stats_bit_for_bit() {
    let rendered = render_grid();
    let golden = GOLDEN.trim();
    if rendered.trim() != golden {
        // Diff line-by-line so a mismatch names the drifting statistic
        // instead of dumping two 150-line blobs.
        for (got, want) in rendered.trim().lines().zip(golden.lines()) {
            assert_eq!(got, want, "stage-graph output diverged from the pre-refactor golden");
        }
        assert_eq!(
            rendered.trim().lines().count(),
            golden.lines().count(),
            "golden and rendered grids differ in length"
        );
    }
}

/// Prints the grid for (re)capturing the golden block.
#[test]
#[ignore]
fn print_goldens() {
    println!("===GOLDEN START===\n{}===GOLDEN END===", render_grid());
}

const GOLDEN: &str = r#"
single.testbed.epoch_seconds=401ca5bb8899af71
single.testbed.traffic_bytes=416806339
single.testbed.gpu_busy=3fe0624dd2f1a9fc
single.testbed.storage_cpu_busy=402d1da005f80b37
single.testbed.compute_cpu_busy=40222bea9cf87342
single.testbed.link_busy=401c5062ad6313fb
single.testbed.counts=2048/8/1
single.tight.epoch_seconds=401bb7d195212ee9
single.tight.traffic_bytes=202254348
single.tight.gpu_busy=3feff7ced916872f
single.tight.storage_cpu_busy=401b7bb5bd1ea949
single.tight.compute_cpu_busy=40121ae913476cc1
single.tight.link_busy=400b7ca92f1f0d9c
single.tight.counts=999/16/2
single.nostorage.epoch_seconds=4000f217338c63d6
single.nostorage.traffic_bytes=105747921
single.nostorage.gpu_busy=3ff47ae147ae147b
single.nostorage.storage_cpu_busy=0000000000000000
single.nostorage.compute_cpu_busy=40022086da01e589
single.nostorage.link_busy=3ffcb5b9e5026779
single.nostorage.counts=512/4/1
single.nocompute.epoch_seconds=3ffe7d8e3dabc122
single.nocompute.traffic_bytes=109461148
single.nocompute.gpu_busy=3fc0624dd2f1a9fc
single.nocompute.storage_cpu_busy=400a451655b124fa
single.nocompute.compute_cpu_busy=0000000000000000
single.nocompute.link_busy=3ffda913818979de
single.nocompute.counts=512/4/1
single.trace.digest=228b567d627a79c5
single.trace.epoch_seconds=401ca5bb8899af71
single.trace.traffic_bytes=416806339
single.trace.gpu_busy=3fe0624dd2f1a9fc
single.trace.storage_cpu_busy=402d1da005f80b37
single.trace.compute_cpu_busy=40222bea9cf87342
single.trace.link_busy=401c5062ad6313fb
single.trace.counts=2048/8/1
training.total_seconds=403c206acc1481a2
training.total_traffic=1630332427
training.first.epoch_seconds=401ca5bb8899af71
training.first.traffic_bytes=416806339
training.first.gpu_busy=3fe0624dd2f1a9fc
training.first.storage_cpu_busy=402d1da005f80b37
training.first.compute_cpu_busy=40222bea9cf87342
training.first.link_busy=401c5062ad6313fb
training.first.counts=2048/8/1
training.steady.epoch_seconds=400bf3fa8d3d725d
training.steady.traffic_bytes=202254348
training.steady.gpu_busy=3feff7ced916872f
training.steady.storage_cpu_busy=401b7bb5bd1ea949
training.steady.compute_cpu_busy=40121ae913476cc1
training.steady.link_busy=400b7ca92f1f0d9c
training.steady.counts=999/16/1
cached.total_seconds=40418f2f5f7a0965
cached.total_traffic=1829071952
cached.cold.epoch_seconds=401ca5bb8899af71
cached.cold.traffic_bytes=416806339
cached.cold.gpu_busy=3fe0624dd2f1a9fc
cached.cold.storage_cpu_busy=402d1da005f80b37
cached.cold.compute_cpu_busy=40222bea9cf87342
cached.cold.link_busy=401c5062ad6313fb
cached.cold.counts=2048/8/1
cached.warm.epoch_seconds=4004550b894fbf39
cached.warm.traffic_bytes=128387783
cached.warm.gpu_busy=3fe0624dd2f1a9fc
cached.warm.storage_cpu_busy=40115688ae0370a2
cached.warm.compute_cpu_busy=40222bea9cf87342
cached.warm.link_busy=4003b5df25fbf908
cached.warm.counts=2048/8/1
fleet.killed.total.epoch_seconds=4001e42a54f93841
fleet.killed.total.traffic_bytes=318261322
fleet.killed.total.gpu_busy=3fd89374bc6a7efa
fleet.killed.total.storage_cpu_busy=402da28d34f0c7aa
fleet.killed.total.compute_cpu_busy=401b04732ff28317
fleet.killed.total.link_busy=401598f75f69ea4b
fleet.killed.total.counts=1536/6/1
fleet.killed.failovers=230
fleet.killed.node0.served=384 bytes=78421380
fleet.killed.node0.cpu_busy=4005aa7da2d64466
fleet.killed.node0.link_busy=3ff54dff116d90a0
fleet.killed.node1.served=154 bytes=33219962
fleet.killed.node1.cpu_busy=3ff162e6e0460bfc
fleet.killed.node1.link_busy=3fe1fe853cd17dc9
fleet.killed.node2.served=614 bytes=125787312
fleet.killed.node2.cpu_busy=4020faba48e1c51c
fleet.killed.node2.link_busy=4001154b04a4ef29
fleet.killed.node3.served=384 bytes=80832668
fleet.killed.node3.cpu_busy=4004435a9d42bfd4
fleet.killed.node3.link_busy=3ff5ec05c4877b54
fleet.healthy.total.epoch_seconds=3ff7d1fc6a47033a
fleet.healthy.total.traffic_bytes=318261322
fleet.healthy.total.gpu_busy=3fd89374bc6a7efa
fleet.healthy.total.storage_cpu_busy=402a4faed260242b
fleet.healthy.total.compute_cpu_busy=401b04732ff28317
fleet.healthy.total.link_busy=401598f75f69ea48
fleet.healthy.total.counts=1536/6/1
fleet.healthy.failovers=0
fleet.healthy.node0.served=384 bytes=78421380
fleet.healthy.node0.cpu_busy=4005aa7da2d64466
fleet.healthy.node0.link_busy=3ff54dff116d90a0
fleet.healthy.node1.served=384 bytes=82587243
fleet.healthy.node1.cpu_busy=4005fcecfa6593f9
fleet.healthy.node1.link_busy=3ff65f02a6c5c96d
fleet.healthy.node2.served=384 bytes=76420031
fleet.healthy.node2.cpu_busy=4014a9fb0780fc3d
fleet.healthy.node2.link_busy=3ff4cad600ecd3c0
fleet.healthy.node3.served=384 bytes=80832668
fleet.healthy.node3.cpu_busy=4004435a9d42bfd4
fleet.healthy.node3.link_busy=3ff5ec05c4877b54
fleet.one.total.epoch_seconds=401ca5bb8899af71
fleet.one.total.traffic_bytes=416806339
fleet.one.total.gpu_busy=3fe0624dd2f1a9fc
fleet.one.total.storage_cpu_busy=402d1da005f80b37
fleet.one.total.compute_cpu_busy=40222bea9cf87342
fleet.one.total.link_busy=401c5062ad6313fb
fleet.one.total.counts=2048/8/1
fleet.one.failovers=0
fleet.one.node0.served=2048 bytes=416806339
fleet.one.node0.cpu_busy=402d1da005f80b37
fleet.one.node0.link_busy=401c5062ad6313fb
fleet.training.total_seconds=402aec800670871a
fleet.training.total_traffic=1591306610
fleet.training.first.total.epoch_seconds=4001e42a54f93841
fleet.training.first.total.traffic_bytes=318261322
fleet.training.first.total.gpu_busy=3fd89374bc6a7efa
fleet.training.first.total.storage_cpu_busy=402da28d34f0c7aa
fleet.training.first.total.compute_cpu_busy=401b04732ff28317
fleet.training.first.total.link_busy=401598f75f69ea4b
fleet.training.first.total.counts=1536/6/1
fleet.training.first.failovers=230
fleet.training.first.node0.served=384 bytes=78421380
fleet.training.first.node0.cpu_busy=4005aa7da2d64466
fleet.training.first.node0.link_busy=3ff54dff116d90a0
fleet.training.first.node1.served=154 bytes=33219962
fleet.training.first.node1.cpu_busy=3ff162e6e0460bfc
fleet.training.first.node1.link_busy=3fe1fe853cd17dc9
fleet.training.first.node2.served=614 bytes=125787312
fleet.training.first.node2.cpu_busy=4020faba48e1c51c
fleet.training.first.node2.link_busy=4001154b04a4ef29
fleet.training.first.node3.served=384 bytes=80832668
fleet.training.first.node3.cpu_busy=4004435a9d42bfd4
fleet.training.first.node3.link_busy=3ff5ec05c4877b54
fleet.training.steady.total.epoch_seconds=400673757132390a
fleet.training.steady.total.traffic_bytes=318261322
fleet.training.steady.total.gpu_busy=3fd89374bc6a7efa
fleet.training.steady.total.storage_cpu_busy=402fceea10f98923
fleet.training.steady.total.compute_cpu_busy=401b04732ff28317
fleet.training.steady.total.link_busy=401598f75f69ea4b
fleet.training.steady.total.counts=1536/6/1
fleet.training.steady.failovers=384
fleet.training.steady.node0.served=384 bytes=78421380
fleet.training.steady.node0.cpu_busy=4005aa7da2d64466
fleet.training.steady.node0.link_busy=3ff54dff116d90a0
fleet.training.steady.node1.served=0 bytes=0
fleet.training.steady.node1.cpu_busy=0000000000000000
fleet.training.steady.node1.link_busy=0000000000000000
fleet.training.steady.node2.served=768 bytes=159007274
fleet.training.steady.node2.cpu_busy=4025537400f34814
fleet.training.steady.node2.link_busy=400594ec53d94e9b
fleet.training.steady.node3.served=384 bytes=80832668
fleet.training.steady.node3.cpu_busy=4004435a9d42bfd4
fleet.training.steady.node3.link_busy=3ff5ec05c4877b54
"#;
