//! Hand-rolled binary wire format for the fetch protocol.
//!
//! Every message is a tagged, little-endian structure with explicit lengths;
//! decoding is *total* — arbitrary byte soup yields a [`WireError`], never a
//! panic or an over-allocation. (The workspace deliberately carries no
//! serde format crate, so this module plays the role gRPC plays in the
//! paper's prototype.)
//!
//! Every encoded message additionally carries a CRC32 trailer (IEEE
//! polynomial, little-endian) over the message body. Decoding verifies the
//! checksum before parsing, so bit corruption anywhere in a frame —
//! including flips the structural parser would happily accept, like a
//! changed sample id — surfaces as [`WireError::ChecksumMismatch`] instead
//! of silently poisoning training data. CRC32 detects every burst error up
//! to 32 bits, so any single flipped byte is always caught.
//!
//! Layout summary (all integers little-endian):
//!
//! ```text
//! Message   := body crc32:u32              (crc32 over body)
//! Request   := 0x01 SessionConfig | 0x02 FetchRequest | 0x03
//! Response  := 0x11 | 0x12 FetchResponse | 0x13 Error
//! OpKind    := tag:u8 [size:u32]           (sized ops carry their parameter)
//! StageData := 0x00 len:u32 bytes          (encoded)
//!            | 0x01 w:u32 h:u32 bytes      (image, len = w*h*3)
//!            | 0x02 w:u32 h:u32 bytes      (tensor, len = w*h*12)
//! ```

use bytes::Bytes;
use imagery::{RasterImage, Tensor};
use pipeline::{OpKind, PipelineSpec, SplitPoint, StageData};

use crate::protocol::{FetchRequest, FetchResponse, Request, Response, SessionConfig};

/// Decoding errors. Every malformed input maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// Input ended before the structure was complete.
    Truncated,
    /// An unknown tag byte.
    BadTag(u8),
    /// A declared length or dimension fails validation.
    Invalid(&'static str),
    /// Bytes remained after a complete top-level message.
    TrailingBytes(usize),
    /// The CRC32 trailer does not match the message body.
    ChecksumMismatch,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag(t) => write!(f, "unknown tag byte 0x{t:02x}"),
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum accepted payload length (64 MiB) — caps allocations from
/// adversarial length fields.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// Byte-at-a-time lookup table for the IEEE CRC32 polynomial (reflected
/// form 0xEDB88320), built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE 802.3) of `data` — the checksum appended to every encoded
/// message.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Appends the CRC32 trailer to a finished message body.
fn seal(mut body: Vec<u8>) -> Bytes {
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    Bytes::from(body)
}

/// Splits off and verifies the CRC32 trailer, returning the message body.
fn verify_checksum(data: &[u8]) -> Result<&[u8], WireError> {
    if data.len() < 4 {
        return Err(WireError::Truncated);
    }
    let (body, trailer) = data.split_at(data.len() - 4);
    let want = u32::from_le_bytes(trailer.try_into().map_err(|_| WireError::Truncated)?);
    if crc32(body) != want {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(body)
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.data.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.data.get(self.pos..self.pos + 4).ok_or(WireError::Truncated)?;
        self.pos += 4;
        Ok(u32::from_le_bytes(s.try_into().map_err(|_| WireError::Truncated)?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.data.get(self.pos..self.pos + 8).ok_or(WireError::Truncated)?;
        self.pos += 8;
        Ok(u64::from_le_bytes(s.try_into().map_err(|_| WireError::Truncated)?))
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        let s = self.data.get(self.pos..self.pos + len).ok_or(WireError::Truncated)?;
        self.pos += len;
        Ok(s)
    }

    fn finish(self) -> Result<(), WireError> {
        let rest = self.data.len() - self.pos;
        if rest == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(rest))
        }
    }
}

fn checked_len(r: &mut Reader<'_>) -> Result<usize, WireError> {
    let len = r.u32()?;
    if len > MAX_PAYLOAD {
        return Err(WireError::Invalid("payload length over cap"));
    }
    Ok(len as usize)
}

// ---------------------------------------------------------------------------
// OpKind
// ---------------------------------------------------------------------------

fn encode_op(op: OpKind, out: &mut Vec<u8>) {
    match op {
        OpKind::Decode => out.push(0),
        OpKind::RandomResizedCrop { size } => {
            out.push(1);
            out.extend_from_slice(&size.to_le_bytes());
        }
        OpKind::RandomHorizontalFlip => out.push(2),
        OpKind::ToTensor => out.push(3),
        OpKind::Normalize => out.push(4),
        OpKind::Resize { size } => {
            out.push(5);
            out.extend_from_slice(&size.to_le_bytes());
        }
        OpKind::CenterCrop { size } => {
            out.push(6);
            out.extend_from_slice(&size.to_le_bytes());
        }
        OpKind::ColorJitter { brightness_pct, contrast_pct, saturation_pct } => {
            out.push(7);
            out.push(brightness_pct);
            out.push(contrast_pct);
            out.push(saturation_pct);
        }
        OpKind::Grayscale => out.push(8),
    }
}

fn decode_op(r: &mut Reader<'_>) -> Result<OpKind, WireError> {
    let tag = r.u8()?;
    let sized = |r: &mut Reader<'_>| -> Result<u32, WireError> {
        let size = r.u32()?;
        if size == 0 || size > 1 << 16 {
            return Err(WireError::Invalid("op size parameter"));
        }
        Ok(size)
    };
    Ok(match tag {
        0 => OpKind::Decode,
        1 => OpKind::RandomResizedCrop { size: sized(r)? },
        2 => OpKind::RandomHorizontalFlip,
        3 => OpKind::ToTensor,
        4 => OpKind::Normalize,
        5 => OpKind::Resize { size: sized(r)? },
        6 => OpKind::CenterCrop { size: sized(r)? },
        7 => OpKind::ColorJitter {
            brightness_pct: r.u8()?,
            contrast_pct: r.u8()?,
            saturation_pct: r.u8()?,
        },
        8 => OpKind::Grayscale,
        t => return Err(WireError::BadTag(t)),
    })
}

// ---------------------------------------------------------------------------
// StageData
// ---------------------------------------------------------------------------

/// Serializes a [`StageData`] payload.
pub fn encode_stage_data(data: &StageData, out: &mut Vec<u8>) {
    match data {
        StageData::Encoded(b) => {
            out.push(0x00);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        StageData::Image(img) => {
            out.push(0x01);
            out.extend_from_slice(&img.width().to_le_bytes());
            out.extend_from_slice(&img.height().to_le_bytes());
            out.extend_from_slice(img.as_raw());
        }
        StageData::Tensor(t) => {
            out.push(0x02);
            out.extend_from_slice(&t.width().to_le_bytes());
            out.extend_from_slice(&t.height().to_le_bytes());
            out.extend_from_slice(&t.to_le_bytes());
        }
    }
}

fn decode_stage_data(r: &mut Reader<'_>) -> Result<StageData, WireError> {
    let tag = r.u8()?;
    match tag {
        0x00 => {
            let len = checked_len(r)?;
            Ok(StageData::Encoded(Bytes::copy_from_slice(r.take(len)?)))
        }
        0x01 => {
            let (w, h) = (r.u32()?, r.u32()?);
            let len = (w as u64)
                .checked_mul(h as u64)
                .and_then(|p| p.checked_mul(3))
                .filter(|&l| l > 0 && l <= u64::from(MAX_PAYLOAD))
                .ok_or(WireError::Invalid("image dimensions"))? as usize;
            let raw = r.take(len)?.to_vec();
            let img =
                RasterImage::from_raw(w, h, raw).map_err(|_| WireError::Invalid("image buffer"))?;
            Ok(StageData::Image(img))
        }
        0x02 => {
            let (w, h) = (r.u32()?, r.u32()?);
            let len = (w as u64)
                .checked_mul(h as u64)
                .and_then(|p| p.checked_mul(12))
                .filter(|&l| l > 0 && l <= u64::from(MAX_PAYLOAD))
                .ok_or(WireError::Invalid("tensor dimensions"))? as usize;
            let bytes = r.take(len)?;
            let t =
                Tensor::from_le_bytes(w, h, bytes).ok_or(WireError::Invalid("tensor buffer"))?;
            Ok(StageData::Tensor(t))
        }
        t => Err(WireError::BadTag(t)),
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Serializes a [`Request`].
pub fn encode_request(req: &Request) -> Bytes {
    let mut out = Vec::new();
    match req {
        Request::Configure(cfg) => {
            out.push(0x01);
            out.extend_from_slice(&cfg.dataset_seed.to_le_bytes());
            out.push(cfg.pipeline.len() as u8);
            for &op in cfg.pipeline.ops() {
                encode_op(op, &mut out);
            }
        }
        Request::Fetch(f) => {
            out.push(0x02);
            out.extend_from_slice(&f.sample_id.to_le_bytes());
            out.extend_from_slice(&f.epoch.to_le_bytes());
            out.push(f.split.offloaded_ops() as u8);
            out.push(f.reencode_quality.unwrap_or(0));
        }
        Request::Shutdown => out.push(0x03),
    }
    seal(out)
}

/// Deserializes a [`Request`].
///
/// # Errors
///
/// Returns a [`WireError`] for any malformed input, including trailing
/// bytes and checksum mismatches.
pub fn decode_request(data: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(verify_checksum(data)?);
    let req = match r.u8()? {
        0x01 => {
            let dataset_seed = r.u64()?;
            let n = r.u8()? as usize;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push(decode_op(&mut r)?);
            }
            let pipeline =
                PipelineSpec::new(ops).map_err(|_| WireError::Invalid("ill-typed pipeline"))?;
            Request::Configure(SessionConfig { dataset_seed, pipeline })
        }
        0x02 => {
            let sample_id = r.u64()?;
            let epoch = r.u64()?;
            let split = SplitPoint::new(r.u8()? as usize);
            let reencode_quality = match r.u8()? {
                0 => None,
                q if (1..=100).contains(&q) => Some(q),
                _ => return Err(WireError::Invalid("reencode quality")),
            };
            Request::Fetch(FetchRequest { sample_id, epoch, split, reencode_quality })
        }
        0x03 => Request::Shutdown,
        t => return Err(WireError::BadTag(t)),
    };
    r.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Serializes a [`Response`].
pub fn encode_response(resp: &Response) -> Bytes {
    let mut out = Vec::new();
    match resp {
        Response::Configured => out.push(0x11),
        Response::Data(d) => {
            out.push(0x12);
            out.extend_from_slice(&d.sample_id.to_le_bytes());
            out.extend_from_slice(&d.ops_applied.to_le_bytes());
            encode_stage_data(&d.data, &mut out);
        }
        Response::Error { sample_id, message } => {
            out.push(0x13);
            match sample_id {
                Some(id) => {
                    out.push(1);
                    out.extend_from_slice(&id.to_le_bytes());
                }
                None => out.push(0),
            }
            let msg = message.as_bytes();
            out.extend_from_slice(&(msg.len().min(u16::MAX as usize) as u16).to_le_bytes());
            out.extend_from_slice(&msg[..msg.len().min(u16::MAX as usize)]);
        }
    }
    seal(out)
}

/// Deserializes a [`Response`].
///
/// # Errors
///
/// Returns a [`WireError`] for any malformed input, including trailing
/// bytes and checksum mismatches.
pub fn decode_response(data: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(verify_checksum(data)?);
    let resp = match r.u8()? {
        0x11 => Response::Configured,
        0x12 => {
            let sample_id = r.u64()?;
            let ops_applied = r.u32()?;
            let data = decode_stage_data(&mut r)?;
            Response::Data(FetchResponse { sample_id, ops_applied, data })
        }
        0x13 => {
            let sample_id = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                _ => return Err(WireError::Invalid("error sample flag")),
            };
            let len = {
                let s = r.take(2)?;
                u16::from_le_bytes(s.try_into().map_err(|_| WireError::Truncated)?) as usize
            };
            let message = String::from_utf8_lossy(r.take(len)?).into_owned();
            Response::Error { sample_id, message }
        }
        t => return Err(WireError::BadTag(t)),
    };
    r.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagery::Rgb;

    #[test]
    fn request_roundtrips() {
        let reqs = [
            Request::Configure(SessionConfig {
                dataset_seed: 42,
                pipeline: PipelineSpec::standard_train(),
            }),
            Request::Configure(SessionConfig {
                dataset_seed: 0,
                pipeline: PipelineSpec::standard_eval(),
            }),
            Request::Fetch(FetchRequest::new(7, 3, SplitPoint::new(2))),
            Request::Fetch(FetchRequest::new(u64::MAX, 0, SplitPoint::NONE)),
            Request::Fetch(FetchRequest::new(9, 1, SplitPoint::new(2)).with_reencode(70)),
            Request::Shutdown,
        ];
        for req in &reqs {
            let bytes = encode_request(req);
            assert_eq!(&decode_request(&bytes).unwrap(), req, "roundtrip {req:?}");
        }
    }

    /// Re-seals a hand-crafted message body with a valid CRC trailer so a
    /// test exercises the structural parser rather than the checksum.
    fn sealed(body: Vec<u8>) -> Vec<u8> {
        let mut out = body;
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    #[test]
    fn fetch_request_is_compact() {
        let bytes = encode_request(&Request::Fetch(FetchRequest::new(1, 1, SplitPoint::new(2))));
        assert!(bytes.len() <= 23, "fetch request is {} bytes", bytes.len());
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn checksum_mismatch_detected_even_when_parse_would_succeed() {
        // Flip a bit inside the sample id: structurally still a perfectly
        // valid fetch request, but the checksum catches it.
        let mut bytes =
            encode_request(&Request::Fetch(FetchRequest::new(7, 3, SplitPoint::new(2)))).to_vec();
        bytes[1] ^= 0x01;
        assert_eq!(decode_request(&bytes), Err(WireError::ChecksumMismatch));
    }

    #[test]
    fn corrupted_trailer_detected() {
        let mut bytes = encode_response(&Response::Configured).to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80;
        assert_eq!(decode_response(&bytes), Err(WireError::ChecksumMismatch));
    }

    #[test]
    fn response_roundtrips_all_payload_kinds() {
        let img = RasterImage::filled(5, 4, Rgb::new(1, 2, 3));
        let tensor = imagery::Tensor::from_image(&img);
        let payloads = [
            StageData::Encoded(Bytes::from_static(b"raw bytes")),
            StageData::Image(img),
            StageData::Tensor(tensor),
        ];
        for p in payloads {
            let resp =
                Response::Data(FetchResponse { sample_id: 9, ops_applied: 2, data: p.clone() });
            let bytes = encode_response(&resp);
            // Responses are `PartialEq`, so the roundtrip asserts every
            // field (payload bytes included) in one exhaustive comparison.
            assert_eq!(decode_response(&bytes).unwrap(), resp, "roundtrip {:?}", p.kind());
        }
    }

    #[test]
    fn error_response_roundtrips() {
        for sample_id in [None, Some(5u64)] {
            let resp = Response::Error { sample_id, message: "object not found".into() };
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp, "roundtrip {sample_id:?}");
        }
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let resp = Response::Data(FetchResponse {
            sample_id: 1,
            ops_applied: 1,
            data: StageData::Image(RasterImage::filled(8, 8, Rgb::gray(7))),
        });
        let bytes = encode_response(&resp);
        for len in 0..bytes.len() {
            assert!(
                decode_response(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        // A body with junk after a complete message, under a valid CRC
        // (appending to a sealed frame would fail the checksum instead).
        let mut body = vec![0x03]; // Shutdown
        body.push(0);
        assert_eq!(decode_request(&sealed(body)), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn absurd_lengths_rejected_without_allocation() {
        // Encoded payload claiming 4 GiB.
        let mut body = vec![0x12];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.push(0x00);
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_response(&sealed(body)),
            Err(WireError::Invalid("payload length over cap"))
        ));
    }

    #[test]
    fn ill_typed_pipeline_rejected() {
        // Configure with [ToTensor] (cannot consume encoded input).
        let mut body = vec![0x01];
        body.extend_from_slice(&0u64.to_le_bytes());
        body.push(1); // one op
        body.push(3); // ToTensor
        assert_eq!(decode_request(&sealed(body)), Err(WireError::Invalid("ill-typed pipeline")));
    }

    #[test]
    fn fuzz_decode_never_panics() {
        // Deterministic pseudo-random byte soup.
        let mut state = 0x12345678u64;
        for len in 0..200usize {
            let mut buf = Vec::with_capacity(len);
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                buf.push((state >> 33) as u8);
            }
            let _ = decode_request(&buf);
            let _ = decode_response(&buf);
        }
    }
}
