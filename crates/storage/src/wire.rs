//! Hand-rolled binary wire format for the fetch protocol.
//!
//! Every message is a tagged, little-endian structure with explicit lengths;
//! decoding is *total* — arbitrary byte soup yields a [`WireError`], never a
//! panic or an over-allocation. (The workspace deliberately carries no
//! serde format crate, so this module plays the role gRPC plays in the
//! paper's prototype.)
//!
//! Every encoded message additionally carries a CRC32 trailer (IEEE
//! polynomial, little-endian) over the message body. Decoding verifies the
//! checksum before parsing, so bit corruption anywhere in a frame —
//! including flips the structural parser would happily accept, like a
//! changed sample id — surfaces as [`WireError::ChecksumMismatch`] instead
//! of silently poisoning training data. CRC32 detects every burst error up
//! to 32 bits, so any single flipped byte is always caught.
//!
//! Since wire format **version 2** every message additionally opens with a
//! version byte and a `request_id: u32` — the multiplexing key that lets
//! one connection carry many pipelined in-flight exchanges. Both fields sit
//! *under* the CRC, so a flipped bit in the id can never silently re-route
//! a response to the wrong caller: it fails the checksum like any other
//! corruption. Version-1 frames (no header) decode to
//! [`WireError::Version`], never to a wrong-but-valid message.
//!
//! Wire format **version 3** ([`WIRE_VERSION_TENANT`]) extends the request
//! header with a `tenant_id: u16` so a multi-tenant server can attribute,
//! schedule, and meter every request. The field sits under the CRC like the
//! request id. Version negotiation is per-frame: [`decode_request_tenant`]
//! accepts v3 frames *and* v2 frames (attributing the latter to tenant 0),
//! unless the caller requires an explicit tenant id, in which case a v2
//! frame is the typed rejection [`WireError::TenantMissing`]. Responses
//! stay v2 — the server already knows whom it is answering.
//!
//! Wire format **version 4** ([`WIRE_VERSION_FIDELITY`]) adds the brownout
//! fidelity axis, on *both* directions. A v4 request carries the v3 tenant
//! header plus a `max_tier: u8` trailing the fetch body — the fidelity cap
//! the client will accept (`0xFF` = no cap). A v4 data response appends
//! the *served* tier byte after the payload, directly under the CRC
//! trailer, so a flipped fidelity marker can never be mistaken for a
//! full-quality sample. Negotiation is per-frame, exactly like the v2→v3
//! tenant bump: encoders emit v4 only when a fidelity field is actually
//! set, so full-fidelity traffic stays bit-identical to v2/v3, and every
//! decoder accepts both generations.
//!
//! Layout summary (all integers little-endian):
//!
//! ```text
//! Message   := ver:u8 request_id:u32 body crc32:u32   (crc32 over ver..body)
//! RequestV3 := ver:u8 request_id:u32 tenant_id:u16 body crc32:u32
//! RequestV4 := ver:u8 request_id:u32 tenant_id:u16 body crc32:u32
//!              (Fetch body gains a trailing max_tier:u8, 0xFF = no cap)
//! RespV4    := ver:u8 request_id:u32 body tier:u8 crc32:u32  (Data only)
//! Request   := 0x01 SessionConfig | 0x02 FetchRequest | 0x03
//! Response  := 0x11 | 0x12 FetchResponse | 0x13 Error
//! OpKind    := tag:u8 [size:u32]           (sized ops carry their parameter)
//! StageData := 0x00 len:u32 bytes          (encoded)
//!            | 0x01 w:u32 h:u32 bytes      (image, len = w*h*3)
//!            | 0x02 w:u32 h:u32 bytes      (tensor, len = w*h*12)
//! ```
//!
//! The hot-path entry points are the `*_into` encoders, which write into a
//! caller-provided reusable buffer (clearing it first) so a steady-state
//! connection re-encodes frames with **zero allocations**; the `Bytes`
//! returning forms are convenience wrappers.

use bytes::Bytes;
use imagery::{RasterImage, Tensor};
use pipeline::{OpKind, PipelineSpec, SplitPoint, StageData};

use crate::protocol::{FetchRequest, FetchResponse, Request, Response, SessionConfig};

/// Decoding errors. Every malformed input maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// Input ended before the structure was complete.
    Truncated,
    /// An unknown tag byte.
    BadTag(u8),
    /// A declared length or dimension fails validation.
    Invalid(&'static str),
    /// Bytes remained after a complete top-level message.
    TrailingBytes(usize),
    /// The CRC32 trailer does not match the message body.
    ChecksumMismatch,
    /// The frame opens with an unsupported wire-format version.
    Version(u8),
    /// A tenant-less (v2) frame reached an endpoint that requires an
    /// explicit tenant id.
    TenantMissing,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag(t) => write!(f, "unknown tag byte 0x{t:02x}"),
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            WireError::Version(v) => {
                write!(f, "unsupported wire version {v} (this build speaks {WIRE_VERSION})")
            }
            WireError::TenantMissing => {
                write!(f, "frame carries no tenant id but this endpoint requires one")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum accepted payload length (64 MiB) — caps allocations from
/// adversarial length fields.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// Current wire-format version. Version 2 added the
/// `ver:u8 request_id:u32` multiplexing header in front of every message
/// body (version 1 opened directly with the tag byte). The low nibble is
/// the version number; the high nibble is a magic marker chosen so the
/// byte never collides with a v1 tag (`0x01..=0x03`, `0x11..=0x13`) —
/// a stray v1 frame always fails the version gate as foreign instead of
/// accidentally parsing as a v2 header.
pub const WIRE_VERSION: u8 = 0xA2;

/// Wire-format version 3: the request header grows a `tenant_id: u16`
/// between the request id and the body, CRC-covered like everything else.
/// Same high-nibble magic as [`WIRE_VERSION`]; the low nibble is the
/// version number. Only requests use this version — responses remain v2.
pub const WIRE_VERSION_TENANT: u8 = 0xA3;

/// Wire-format version 4: the brownout fidelity axis. Requests keep the
/// v3 tenant header and their fetch body gains a trailing `max_tier: u8`
/// fidelity cap (`0xFF` = uncapped); data responses append the served
/// tier byte after the payload, directly under the CRC trailer. Encoders
/// only emit v4 when a fidelity field is set, so full-fidelity frames
/// remain bit-identical to the previous generation.
pub const WIRE_VERSION_FIDELITY: u8 = 0xA4;

/// The wire sentinel for "no fidelity cap / full fidelity".
const TIER_UNCAPPED: u8 = u8::MAX;

/// Parses a wire tier byte: the sentinel means `None`, in-range tiers map
/// to `Some`, anything else is a typed rejection.
fn decode_tier_byte(b: u8) -> Result<Option<u8>, WireError> {
    match b {
        TIER_UNCAPPED => Ok(None),
        t if (t as usize) < codec::MAX_TIERS => Ok(Some(t)),
        _ => Err(WireError::Invalid("fidelity tier out of range")),
    }
}

/// Slice-by-16 lookup tables for the IEEE CRC32 polynomial (reflected
/// form 0xEDB88320), built at compile time. `CRC_TABLES[0]` is the
/// classic byte-at-a-time table; table `k` advances a byte through `k`
/// further zero bytes, letting the hot loop fold 16 input bytes per
/// iteration instead of one. Payloads here are whole samples (hundreds
/// of KiB), so the checksum dominates frame encode/decode cost — the
/// wide tables keep it off the serving path's critical ~ms budget.
const CRC_TABLES: [[u32; 256]; 16] = {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 16 {
        let mut i = 0;
        while i < 256 {
            tables[t][i] = (tables[t - 1][i] >> 8) ^ tables[0][(tables[t - 1][i] & 0xff) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// Folds one 32-bit word through tables `base+3 ..= base`.
#[inline(always)]
fn crc_fold(word: u32, base: usize) -> u32 {
    CRC_TABLES[base + 3][(word & 0xff) as usize]
        ^ CRC_TABLES[base + 2][((word >> 8) & 0xff) as usize]
        ^ CRC_TABLES[base + 1][((word >> 16) & 0xff) as usize]
        ^ CRC_TABLES[base][(word >> 24) as usize]
}

/// CRC32 (IEEE 802.3) of `data` — the checksum appended to every encoded
/// message. Identical output to the byte-at-a-time formulation; the body
/// runs slice-by-16 for throughput.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    let mut chunks = data.chunks_exact(16);
    let word = |b: &[u8]| u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    for chunk in &mut chunks {
        c = crc_fold(c ^ word(&chunk[0..4]), 12)
            ^ crc_fold(word(&chunk[4..8]), 8)
            ^ crc_fold(word(&chunk[8..12]), 4)
            ^ crc_fold(word(&chunk[12..16]), 0);
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Writes the `ver request_id` header that opens every message body.
fn begin_frame(request_id: u32, out: &mut Vec<u8>) {
    out.clear();
    out.push(WIRE_VERSION);
    out.extend_from_slice(&request_id.to_le_bytes());
}

/// Appends the CRC32 trailer over everything written so far.
fn seal_in_place(out: &mut Vec<u8>) {
    let crc = crc32(out);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Best-effort read of a frame's `request_id` without decoding (or
/// checksum-verifying) the rest — used by servers to echo an id on error
/// replies for frames whose body failed to parse. Returns `None` for
/// frames too short to carry the header or of a foreign version. Both
/// known versions carry the id at the same offset, so the peek works on
/// v2 and v3 frames alike.
pub fn peek_request_id(data: &[u8]) -> Option<u32> {
    if data.len() < 5 || (data[0] != WIRE_VERSION && data[0] != WIRE_VERSION_TENANT) {
        return None;
    }
    data.get(1..5).and_then(|s| s.try_into().ok()).map(u32::from_le_bytes)
}

/// Splits off and verifies the CRC32 trailer, returning the message body.
fn verify_checksum(data: &[u8]) -> Result<&[u8], WireError> {
    if data.len() < 4 {
        return Err(WireError::Truncated);
    }
    let (body, trailer) = data.split_at(data.len() - 4);
    let want = u32::from_le_bytes(trailer.try_into().map_err(|_| WireError::Truncated)?);
    if crc32(body) != want {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(body)
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.data.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let s = self.data.get(self.pos..self.pos + 2).ok_or(WireError::Truncated)?;
        self.pos += 2;
        Ok(u16::from_le_bytes(s.try_into().map_err(|_| WireError::Truncated)?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.data.get(self.pos..self.pos + 4).ok_or(WireError::Truncated)?;
        self.pos += 4;
        Ok(u32::from_le_bytes(s.try_into().map_err(|_| WireError::Truncated)?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.data.get(self.pos..self.pos + 8).ok_or(WireError::Truncated)?;
        self.pos += 8;
        Ok(u64::from_le_bytes(s.try_into().map_err(|_| WireError::Truncated)?))
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        let s = self.data.get(self.pos..self.pos + len).ok_or(WireError::Truncated)?;
        self.pos += len;
        Ok(s)
    }

    fn finish(self) -> Result<(), WireError> {
        let rest = self.data.len() - self.pos;
        if rest == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(rest))
        }
    }
}

fn checked_len(r: &mut Reader<'_>) -> Result<usize, WireError> {
    let len = r.u32()?;
    if len > MAX_PAYLOAD {
        return Err(WireError::Invalid("payload length over cap"));
    }
    Ok(len as usize)
}

// ---------------------------------------------------------------------------
// OpKind
// ---------------------------------------------------------------------------

fn encode_op(op: OpKind, out: &mut Vec<u8>) {
    match op {
        OpKind::Decode => out.push(0),
        OpKind::RandomResizedCrop { size } => {
            out.push(1);
            out.extend_from_slice(&size.to_le_bytes());
        }
        OpKind::RandomHorizontalFlip => out.push(2),
        OpKind::ToTensor => out.push(3),
        OpKind::Normalize => out.push(4),
        OpKind::Resize { size } => {
            out.push(5);
            out.extend_from_slice(&size.to_le_bytes());
        }
        OpKind::CenterCrop { size } => {
            out.push(6);
            out.extend_from_slice(&size.to_le_bytes());
        }
        OpKind::ColorJitter { brightness_pct, contrast_pct, saturation_pct } => {
            out.push(7);
            out.push(brightness_pct);
            out.push(contrast_pct);
            out.push(saturation_pct);
        }
        OpKind::Grayscale => out.push(8),
    }
}

fn decode_op(r: &mut Reader<'_>) -> Result<OpKind, WireError> {
    let tag = r.u8()?;
    let sized = |r: &mut Reader<'_>| -> Result<u32, WireError> {
        let size = r.u32()?;
        if size == 0 || size > 1 << 16 {
            return Err(WireError::Invalid("op size parameter"));
        }
        Ok(size)
    };
    Ok(match tag {
        0 => OpKind::Decode,
        1 => OpKind::RandomResizedCrop { size: sized(r)? },
        2 => OpKind::RandomHorizontalFlip,
        3 => OpKind::ToTensor,
        4 => OpKind::Normalize,
        5 => OpKind::Resize { size: sized(r)? },
        6 => OpKind::CenterCrop { size: sized(r)? },
        7 => OpKind::ColorJitter {
            brightness_pct: r.u8()?,
            contrast_pct: r.u8()?,
            saturation_pct: r.u8()?,
        },
        8 => OpKind::Grayscale,
        t => return Err(WireError::BadTag(t)),
    })
}

// ---------------------------------------------------------------------------
// StageData
// ---------------------------------------------------------------------------

/// Serializes a [`StageData`] payload.
pub fn encode_stage_data(data: &StageData, out: &mut Vec<u8>) {
    match data {
        StageData::Encoded(b) => {
            out.push(0x00);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        StageData::Image(img) => {
            out.push(0x01);
            out.extend_from_slice(&img.width().to_le_bytes());
            out.extend_from_slice(&img.height().to_le_bytes());
            out.extend_from_slice(img.as_raw());
        }
        StageData::Tensor(t) => {
            out.push(0x02);
            out.extend_from_slice(&t.width().to_le_bytes());
            out.extend_from_slice(&t.height().to_le_bytes());
            out.extend_from_slice(&t.to_le_bytes());
        }
    }
}

fn decode_stage_data(r: &mut Reader<'_>) -> Result<StageData, WireError> {
    let tag = r.u8()?;
    match tag {
        0x00 => {
            let len = checked_len(r)?;
            Ok(StageData::Encoded(Bytes::copy_from_slice(r.take(len)?)))
        }
        0x01 => {
            let (w, h) = (r.u32()?, r.u32()?);
            let len = (w as u64)
                .checked_mul(h as u64)
                .and_then(|p| p.checked_mul(3))
                .filter(|&l| l > 0 && l <= u64::from(MAX_PAYLOAD))
                .ok_or(WireError::Invalid("image dimensions"))? as usize;
            let raw = r.take(len)?.to_vec();
            let img =
                RasterImage::from_raw(w, h, raw).map_err(|_| WireError::Invalid("image buffer"))?;
            Ok(StageData::Image(img))
        }
        0x02 => {
            let (w, h) = (r.u32()?, r.u32()?);
            let len = (w as u64)
                .checked_mul(h as u64)
                .and_then(|p| p.checked_mul(12))
                .filter(|&l| l > 0 && l <= u64::from(MAX_PAYLOAD))
                .ok_or(WireError::Invalid("tensor dimensions"))? as usize;
            let bytes = r.take(len)?;
            let t =
                Tensor::from_le_bytes(w, h, bytes).ok_or(WireError::Invalid("tensor buffer"))?;
            Ok(StageData::Tensor(t))
        }
        t => Err(WireError::BadTag(t)),
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

fn encode_request_body(req: &Request, fidelity: bool, out: &mut Vec<u8>) {
    match req {
        Request::Configure(cfg) => {
            out.push(0x01);
            out.extend_from_slice(&cfg.dataset_seed.to_le_bytes());
            out.push(cfg.pipeline.len() as u8);
            for &op in cfg.pipeline.ops() {
                encode_op(op, out);
            }
        }
        Request::Fetch(f) => {
            out.push(0x02);
            out.extend_from_slice(&f.sample_id.to_le_bytes());
            out.extend_from_slice(&f.epoch.to_le_bytes());
            out.push(f.split.offloaded_ops() as u8);
            out.push(f.reencode_quality.unwrap_or(0));
            if fidelity {
                out.push(f.max_tier.unwrap_or(TIER_UNCAPPED));
            }
        }
        Request::Shutdown => out.push(0x03),
    }
}

fn decode_request_body(r: &mut Reader<'_>, fidelity: bool) -> Result<Request, WireError> {
    Ok(match r.u8()? {
        0x01 => {
            let dataset_seed = r.u64()?;
            let n = r.u8()? as usize;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push(decode_op(r)?);
            }
            let pipeline =
                PipelineSpec::new(ops).map_err(|_| WireError::Invalid("ill-typed pipeline"))?;
            Request::Configure(SessionConfig { dataset_seed, pipeline })
        }
        0x02 => {
            let sample_id = r.u64()?;
            let epoch = r.u64()?;
            let split = SplitPoint::new(r.u8()? as usize);
            let reencode_quality = match r.u8()? {
                0 => None,
                q if (1..=100).contains(&q) => Some(q),
                _ => return Err(WireError::Invalid("reencode quality")),
            };
            let max_tier = if fidelity { decode_tier_byte(r.u8()?)? } else { None };
            Request::Fetch(FetchRequest { sample_id, epoch, split, reencode_quality, max_tier })
        }
        0x03 => Request::Shutdown,
        t => return Err(WireError::BadTag(t)),
    })
}

/// Whether a request carries a fidelity field that forces the v4 frame
/// format; anything else stays on the older, bit-stable encodings.
fn request_wants_fidelity(req: &Request) -> bool {
    matches!(req, Request::Fetch(f) if f.max_tier.is_some())
}

/// Serializes a [`Request`] under `request_id` into a caller-provided
/// buffer (cleared first). The hot-path form: a reused buffer makes
/// steady-state encoding allocation-free. Requests carrying a fidelity
/// cap upgrade the frame to v4 (tenant 0); everything else stays on the
/// bit-stable v2 encoding.
pub fn encode_request_into(request_id: u32, req: &Request, out: &mut Vec<u8>) {
    if request_wants_fidelity(req) {
        encode_request_fidelity_into(request_id, 0, req, out);
        return;
    }
    begin_frame(request_id, out);
    encode_request_body(req, false, out);
    seal_in_place(out);
}

/// Serializes a [`Request`] as a v3 frame carrying `tenant_id` into a
/// caller-provided buffer (cleared first); the tenant-aware analogue of
/// [`encode_request_into`], equally allocation-free at steady state.
/// Requests carrying a fidelity cap upgrade the frame to v4, keeping the
/// tenant id.
pub fn encode_request_tenant_into(
    request_id: u32,
    tenant_id: u16,
    req: &Request,
    out: &mut Vec<u8>,
) {
    if request_wants_fidelity(req) {
        encode_request_fidelity_into(request_id, tenant_id, req, out);
        return;
    }
    out.clear();
    out.push(WIRE_VERSION_TENANT);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&tenant_id.to_le_bytes());
    encode_request_body(req, false, out);
    seal_in_place(out);
}

/// Serializes a [`Request`] as a v4 frame carrying `tenant_id` and the
/// fidelity cap into a caller-provided buffer (cleared first);
/// allocation-free at steady state like its older siblings.
pub fn encode_request_fidelity_into(
    request_id: u32,
    tenant_id: u16,
    req: &Request,
    out: &mut Vec<u8>,
) {
    out.clear();
    out.push(WIRE_VERSION_FIDELITY);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&tenant_id.to_le_bytes());
    encode_request_body(req, true, out);
    seal_in_place(out);
}

/// Serializes a [`Request`] as a v3 frame carrying `tenant_id` into
/// fresh bytes.
pub fn encode_request_tenant_framed(request_id: u32, tenant_id: u16, req: &Request) -> Bytes {
    let mut out = Vec::new();
    encode_request_tenant_into(request_id, tenant_id, req, &mut out);
    Bytes::from(out)
}

/// Serializes a [`Request`] under `request_id` into fresh bytes.
pub fn encode_request_framed(request_id: u32, req: &Request) -> Bytes {
    let mut out = Vec::new();
    encode_request_into(request_id, req, &mut out);
    Bytes::from(out)
}

/// Serializes a [`Request`] under request id 0 (single-exchange callers).
pub fn encode_request(req: &Request) -> Bytes {
    encode_request_framed(0, req)
}

/// Deserializes a [`Request`] together with its multiplexing id.
///
/// # Errors
///
/// Returns a [`WireError`] for any malformed input, including trailing
/// bytes, checksum mismatches, and foreign wire versions.
pub fn decode_request_framed(data: &[u8]) -> Result<(u32, Request), WireError> {
    let mut r = Reader::new(verify_checksum(data)?);
    let version = r.u8()?;
    let fidelity = match version {
        WIRE_VERSION => false,
        WIRE_VERSION_FIDELITY => true,
        v => return Err(WireError::Version(v)),
    };
    let request_id = r.u32()?;
    if fidelity {
        let _tenant = r.u16()?; // endpoint without tenant metering
    }
    let req = decode_request_body(&mut r, fidelity)?;
    r.finish()?;
    Ok((request_id, req))
}

/// Deserializes a [`Request`] together with its multiplexing id and
/// tenant id, negotiating the version per frame: v3 frames yield their
/// explicit tenant, v2 frames are attributed to tenant 0 — unless
/// `require_tenant` is set, in which case a v2 frame is rejected as
/// [`WireError::TenantMissing`].
///
/// # Errors
///
/// Returns a [`WireError`] for any malformed input, including trailing
/// bytes, checksum mismatches, foreign wire versions, and (when
/// required) missing tenant ids.
pub fn decode_request_tenant(
    data: &[u8],
    require_tenant: bool,
) -> Result<(u32, u16, Request), WireError> {
    let mut r = Reader::new(verify_checksum(data)?);
    let version = r.u8()?;
    let request_id;
    let tenant_id;
    let mut fidelity = false;
    match version {
        WIRE_VERSION_TENANT => {
            request_id = r.u32()?;
            tenant_id = r.u16()?;
        }
        WIRE_VERSION_FIDELITY => {
            request_id = r.u32()?;
            tenant_id = r.u16()?;
            fidelity = true;
        }
        WIRE_VERSION => {
            if require_tenant {
                return Err(WireError::TenantMissing);
            }
            request_id = r.u32()?;
            tenant_id = 0;
        }
        v => return Err(WireError::Version(v)),
    }
    let req = decode_request_body(&mut r, fidelity)?;
    r.finish()?;
    Ok((request_id, tenant_id, req))
}

/// Deserializes a [`Request`], discarding the multiplexing id.
///
/// # Errors
///
/// Same conditions as [`decode_request_framed`].
pub fn decode_request(data: &[u8]) -> Result<Request, WireError> {
    decode_request_framed(data).map(|(_, req)| req)
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Serializes a [`Response`] under `request_id` into a caller-provided
/// buffer (cleared first). The hot-path form: a reused buffer makes
/// steady-state encoding allocation-free.
///
/// A data response carrying a served fidelity tier is emitted as a v4
/// frame with the tier byte directly under the CRC trailer; every other
/// response keeps the bit-stable v2 encoding.
pub fn encode_response_into(request_id: u32, resp: &Response, out: &mut Vec<u8>) {
    let tier = match resp {
        Response::Data(d) => d.tier,
        _ => None,
    };
    out.clear();
    out.push(if tier.is_some() { WIRE_VERSION_FIDELITY } else { WIRE_VERSION });
    out.extend_from_slice(&request_id.to_le_bytes());
    match resp {
        Response::Configured => out.push(0x11),
        Response::Data(d) => {
            out.push(0x12);
            out.extend_from_slice(&d.sample_id.to_le_bytes());
            out.extend_from_slice(&d.ops_applied.to_le_bytes());
            encode_stage_data(&d.data, out);
            if let Some(t) = tier {
                out.push(t);
            }
        }
        Response::Error { sample_id, message } => {
            out.push(0x13);
            match sample_id {
                Some(id) => {
                    out.push(1);
                    out.extend_from_slice(&id.to_le_bytes());
                }
                None => out.push(0),
            }
            let msg = message.as_bytes();
            out.extend_from_slice(&(msg.len().min(u16::MAX as usize) as u16).to_le_bytes());
            out.extend_from_slice(&msg[..msg.len().min(u16::MAX as usize)]);
        }
    }
    seal_in_place(out);
}

/// Serializes a [`Response`] under `request_id` into fresh bytes.
pub fn encode_response_framed(request_id: u32, resp: &Response) -> Bytes {
    let mut out = Vec::new();
    encode_response_into(request_id, resp, &mut out);
    Bytes::from(out)
}

/// Serializes a [`Response`] under request id 0 (single-exchange callers).
pub fn encode_response(resp: &Response) -> Bytes {
    encode_response_framed(0, resp)
}

/// Deserializes a [`Response`] together with its multiplexing id.
///
/// # Errors
///
/// Returns a [`WireError`] for any malformed input, including trailing
/// bytes, checksum mismatches, and foreign wire versions.
pub fn decode_response_framed(data: &[u8]) -> Result<(u32, Response), WireError> {
    let mut r = Reader::new(verify_checksum(data)?);
    let version = r.u8()?;
    let fidelity = match version {
        WIRE_VERSION => false,
        WIRE_VERSION_FIDELITY => true,
        v => return Err(WireError::Version(v)),
    };
    let request_id = r.u32()?;
    let resp = match r.u8()? {
        0x11 => Response::Configured,
        0x12 => {
            let sample_id = r.u64()?;
            let ops_applied = r.u32()?;
            let data = decode_stage_data(&mut r)?;
            let tier = if fidelity { decode_tier_byte(r.u8()?)? } else { None };
            Response::Data(FetchResponse { sample_id, ops_applied, data, tier })
        }
        0x13 => {
            let sample_id = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                _ => return Err(WireError::Invalid("error sample flag")),
            };
            let len = {
                let s = r.take(2)?;
                u16::from_le_bytes(s.try_into().map_err(|_| WireError::Truncated)?) as usize
            };
            let message = String::from_utf8_lossy(r.take(len)?).into_owned();
            Response::Error { sample_id, message }
        }
        t => return Err(WireError::BadTag(t)),
    };
    r.finish()?;
    Ok((request_id, resp))
}

/// Deserializes a [`Response`], discarding the multiplexing id.
///
/// # Errors
///
/// Same conditions as [`decode_response_framed`].
pub fn decode_response(data: &[u8]) -> Result<Response, WireError> {
    decode_response_framed(data).map(|(_, resp)| resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagery::Rgb;

    #[test]
    fn request_roundtrips() {
        let reqs = [
            Request::Configure(SessionConfig {
                dataset_seed: 42,
                pipeline: PipelineSpec::standard_train(),
            }),
            Request::Configure(SessionConfig {
                dataset_seed: 0,
                pipeline: PipelineSpec::standard_eval(),
            }),
            Request::Fetch(FetchRequest::new(7, 3, SplitPoint::new(2))),
            Request::Fetch(FetchRequest::new(u64::MAX, 0, SplitPoint::NONE)),
            Request::Fetch(FetchRequest::new(9, 1, SplitPoint::new(2)).with_reencode(70)),
            Request::Shutdown,
        ];
        for req in &reqs {
            let bytes = encode_request(req);
            assert_eq!(&decode_request(&bytes).unwrap(), req, "roundtrip {req:?}");
        }
    }

    /// Prefixes a hand-crafted tag+payload body with the v2 header and
    /// re-seals it with a valid CRC trailer, so a test exercises the
    /// structural parser rather than the version or checksum gates.
    fn sealed(body: Vec<u8>) -> Vec<u8> {
        let mut out = vec![WIRE_VERSION];
        out.extend_from_slice(&7u32.to_le_bytes());
        out.extend_from_slice(&body);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    #[test]
    fn fetch_request_is_compact() {
        let bytes = encode_request(&Request::Fetch(FetchRequest::new(1, 1, SplitPoint::new(2))));
        assert!(bytes.len() <= 28, "fetch request is {} bytes", bytes.len());
    }

    #[test]
    fn request_ids_roundtrip_on_both_message_kinds() {
        for id in [0u32, 1, 0xdead_beef, u32::MAX] {
            let req = Request::Fetch(FetchRequest::new(3, 1, SplitPoint::new(2)));
            let bytes = encode_request_framed(id, &req);
            assert_eq!(decode_request_framed(&bytes).unwrap(), (id, req));
            assert_eq!(peek_request_id(&bytes), Some(id));

            let resp = Response::Configured;
            let bytes = encode_response_framed(id, &resp);
            assert_eq!(decode_response_framed(&bytes).unwrap(), (id, resp));
            assert_eq!(peek_request_id(&bytes), Some(id));
        }
    }

    #[test]
    fn tenant_frames_roundtrip_with_id_and_tenant() {
        for (id, t) in [(0u32, 0u16), (7, 1), (0xdead_beef, 41), (u32::MAX, u16::MAX)] {
            let req = Request::Fetch(FetchRequest::new(3, 1, SplitPoint::new(2)));
            let bytes = encode_request_tenant_framed(id, t, &req);
            assert_eq!(decode_request_tenant(&bytes, true).unwrap(), (id, t, req.clone()));
            assert_eq!(decode_request_tenant(&bytes, false).unwrap(), (id, t, req));
            assert_eq!(peek_request_id(&bytes), Some(id));
        }
    }

    #[test]
    fn v2_frames_negotiate_to_the_default_tenant() {
        let req = Request::Fetch(FetchRequest::new(3, 1, SplitPoint::NONE));
        let bytes = encode_request_framed(9, &req);
        assert_eq!(decode_request_tenant(&bytes, false).unwrap(), (9, 0, req));
    }

    #[test]
    fn v2_frames_are_rejected_when_a_tenant_is_required() {
        let req = Request::Fetch(FetchRequest::new(3, 1, SplitPoint::NONE));
        let bytes = encode_request_framed(9, &req);
        assert_eq!(decode_request_tenant(&bytes, true), Err(WireError::TenantMissing));
    }

    #[test]
    fn v3_frames_are_foreign_to_the_legacy_request_decoder() {
        // An old (v2-only) server sees a v3 frame as an unsupported
        // version, never as a misparsed v2 message.
        let req = Request::Shutdown;
        let bytes = encode_request_tenant_framed(1, 5, &req);
        assert_eq!(decode_request_framed(&bytes), Err(WireError::Version(WIRE_VERSION_TENANT)));
    }

    #[test]
    fn tenant_id_is_protected_by_the_checksum() {
        let req = Request::Fetch(FetchRequest::new(3, 1, SplitPoint::new(2)));
        let mut bytes = encode_request_tenant_framed(11, 6, &req).to_vec();
        bytes[5] ^= 0x01; // inside the little-endian tenant id
        assert_eq!(decode_request_tenant(&bytes, false), Err(WireError::ChecksumMismatch));
    }

    #[test]
    fn tenant_encode_into_reuses_the_buffer_without_reallocating() {
        let req = Request::Fetch(FetchRequest::new(7, 3, SplitPoint::new(2)));
        let mut buf = Vec::new();
        encode_request_tenant_into(5, 1, &req, &mut buf);
        let (ptr, cap) = (buf.as_ptr(), buf.capacity());
        for id in 0..1000u32 {
            encode_request_tenant_into(id, (id % 7) as u16, &req, &mut buf);
            let (got_id, got_tenant, _) = decode_request_tenant(&buf, true).unwrap();
            assert_eq!((got_id, got_tenant), (id, (id % 7) as u16));
        }
        assert_eq!(buf.as_ptr(), ptr, "buffer reallocated on the hot path");
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn fidelity_requests_roundtrip_on_every_decoder() {
        for tier in 0..codec::MAX_TIERS as u8 {
            let req = Request::Fetch(FetchRequest::new(3, 1, SplitPoint::NONE).with_max_tier(tier));
            let bytes = encode_request_framed(5, &req);
            assert_eq!(bytes[0], WIRE_VERSION_FIDELITY, "cap forces a v4 frame");
            assert_eq!(decode_request_framed(&bytes).unwrap(), (5, req.clone()));
            // The tenant-aware decoder sees tenant 0 and the same request,
            // even when it requires an explicit tenant (v4 carries one).
            assert_eq!(decode_request_tenant(&bytes, true).unwrap(), (5, 0, req));
        }
    }

    #[test]
    fn fidelity_requests_keep_their_tenant() {
        let req = Request::Fetch(FetchRequest::new(3, 1, SplitPoint::NONE).with_max_tier(2));
        let bytes = encode_request_tenant_framed(9, 41, &req);
        assert_eq!(bytes[0], WIRE_VERSION_FIDELITY);
        assert_eq!(decode_request_tenant(&bytes, true).unwrap(), (9, 41, req));
    }

    #[test]
    fn uncapped_requests_stay_bit_identical_to_v2_and_v3() {
        // The digest-pinning guarantee: a request without a fidelity cap
        // must encode exactly as it did before the v4 bump.
        let req = Request::Fetch(FetchRequest::new(3, 1, SplitPoint::new(2)));
        assert_eq!(encode_request_framed(5, &req)[0], WIRE_VERSION);
        assert_eq!(encode_request_tenant_framed(5, 7, &req)[0], WIRE_VERSION_TENANT);
    }

    #[test]
    fn served_tier_roundtrips_under_the_crc_trailer() {
        let resp = Response::Data(FetchResponse {
            sample_id: 9,
            ops_applied: 0,
            data: StageData::Encoded(Bytes::from_static(b"tiered prefix")),
            tier: Some(1),
        });
        let bytes = encode_response_framed(4, &resp);
        assert_eq!(bytes[0], WIRE_VERSION_FIDELITY, "served tier forces a v4 frame");
        assert_eq!(decode_response_framed(&bytes).unwrap(), (4, resp));
        // The tier byte sits directly under the CRC trailer: flipping it
        // must fail the checksum, never downgrade silently.
        let mut corrupt = bytes.to_vec();
        let at = corrupt.len() - 5;
        corrupt[at] ^= 0x01;
        assert_eq!(decode_response_framed(&corrupt), Err(WireError::ChecksumMismatch));
    }

    #[test]
    fn full_fidelity_responses_stay_bit_identical_to_v2() {
        let resp = Response::Data(FetchResponse {
            sample_id: 9,
            ops_applied: 2,
            data: StageData::Encoded(Bytes::from_static(b"payload")),
            tier: None,
        });
        assert_eq!(encode_response_framed(4, &resp)[0], WIRE_VERSION);
    }

    #[test]
    fn out_of_range_wire_tiers_are_rejected() {
        // Hand-craft a v4 data response whose tier byte is 8 (valid tiers
        // are 0..8, 0xFF is the sentinel).
        let resp = Response::Data(FetchResponse {
            sample_id: 1,
            ops_applied: 0,
            data: StageData::Encoded(Bytes::from_static(b"x")),
            tier: Some(0),
        });
        let mut bytes = encode_response_framed(0, &resp).to_vec();
        let at = bytes.len() - 5;
        bytes[at] = codec::MAX_TIERS as u8;
        let crc_at = bytes.len() - 4;
        let crc = crc32(&bytes[..crc_at]);
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_response_framed(&bytes),
            Err(WireError::Invalid("fidelity tier out of range"))
        );
    }

    #[test]
    fn request_id_is_protected_by_the_checksum() {
        // A flipped bit inside the multiplexing id must never re-route a
        // response to the wrong caller: it fails the CRC instead.
        let resp = Response::Data(FetchResponse {
            sample_id: 9,
            ops_applied: 2,
            data: StageData::Encoded(Bytes::from_static(b"payload")),
            tier: None,
        });
        let mut bytes = encode_response_framed(41, &resp).to_vec();
        bytes[3] ^= 0x04; // inside the little-endian request id
        assert_eq!(decode_response_framed(&bytes), Err(WireError::ChecksumMismatch));
    }

    #[test]
    fn version_1_frames_are_rejected_as_foreign_not_misparsed() {
        // A v1 frame opened directly with the tag byte; its first byte now
        // reads as a version. Every v1 tag is a typed rejection, never a
        // wrong-but-valid message (the compatibility gate for the bump).
        for tag in [0x01u8, 0x02, 0x03, 0x11, 0x12, 0x13] {
            let mut body = vec![tag];
            body.extend_from_slice(&1u64.to_le_bytes());
            let crc = crc32(&body);
            body.extend_from_slice(&crc.to_le_bytes());
            assert_eq!(decode_request(&body), Err(WireError::Version(tag)), "tag 0x{tag:02x}");
            assert_eq!(decode_response(&body), Err(WireError::Version(tag)), "tag 0x{tag:02x}");
        }
    }

    #[test]
    fn encode_into_reuses_the_buffer_without_reallocating() {
        // The hot-path proof: after one warm-up encode sizes the buffer,
        // repeated encodes of same-shaped frames never reallocate — the
        // buffer's pointer and capacity stay put.
        let req = Request::Fetch(FetchRequest::new(7, 3, SplitPoint::new(2)));
        let mut buf = Vec::new();
        encode_request_into(5, &req, &mut buf);
        let (ptr, cap) = (buf.as_ptr(), buf.capacity());
        for id in 0..1000u32 {
            encode_request_into(id, &req, &mut buf);
            assert_eq!(decode_request_framed(&buf).unwrap().0, id);
        }
        assert_eq!(buf.as_ptr(), ptr, "buffer reallocated on the hot path");
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_slice_by_8_matches_byte_at_a_time_at_every_alignment() {
        fn reference(data: &[u8]) -> u32 {
            let mut c = 0xffff_ffffu32;
            for &b in data {
                c = CRC_TABLES[0][((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
            }
            c ^ 0xffff_ffff
        }
        // Lengths straddling every chunk boundary and a payload-sized blob.
        let blob: Vec<u8> = (0..4096u32).map(|i| (i.wrapping_mul(31) >> 3) as u8).collect();
        for len in (0..64).chain([255, 1024, 4095, 4096]) {
            assert_eq!(crc32(&blob[..len]), reference(&blob[..len]), "len {len}");
        }
    }

    #[test]
    fn checksum_mismatch_detected_even_when_parse_would_succeed() {
        // Flip a bit inside the sample id: structurally still a perfectly
        // valid fetch request, but the checksum catches it.
        let mut bytes =
            encode_request(&Request::Fetch(FetchRequest::new(7, 3, SplitPoint::new(2)))).to_vec();
        bytes[1] ^= 0x01;
        assert_eq!(decode_request(&bytes), Err(WireError::ChecksumMismatch));
    }

    #[test]
    fn corrupted_trailer_detected() {
        let mut bytes = encode_response(&Response::Configured).to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80;
        assert_eq!(decode_response(&bytes), Err(WireError::ChecksumMismatch));
    }

    #[test]
    fn response_roundtrips_all_payload_kinds() {
        let img = RasterImage::filled(5, 4, Rgb::new(1, 2, 3));
        let tensor = imagery::Tensor::from_image(&img);
        let payloads = [
            StageData::Encoded(Bytes::from_static(b"raw bytes")),
            StageData::Image(img),
            StageData::Tensor(tensor),
        ];
        for p in payloads {
            let resp = Response::Data(FetchResponse {
                sample_id: 9,
                ops_applied: 2,
                data: p.clone(),
                tier: None,
            });
            let bytes = encode_response(&resp);
            // Responses are `PartialEq`, so the roundtrip asserts every
            // field (payload bytes included) in one exhaustive comparison.
            assert_eq!(decode_response(&bytes).unwrap(), resp, "roundtrip {:?}", p.kind());
        }
    }

    #[test]
    fn error_response_roundtrips() {
        for sample_id in [None, Some(5u64)] {
            let resp = Response::Error { sample_id, message: "object not found".into() };
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp, "roundtrip {sample_id:?}");
        }
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let resp = Response::Data(FetchResponse {
            sample_id: 1,
            ops_applied: 1,
            data: StageData::Image(RasterImage::filled(8, 8, Rgb::gray(7))),
            tier: None,
        });
        let bytes = encode_response(&resp);
        for len in 0..bytes.len() {
            assert!(
                decode_response(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        // A body with junk after a complete message, under a valid CRC
        // (appending to a sealed frame would fail the checksum instead).
        let mut body = vec![0x03]; // Shutdown
        body.push(0);
        assert_eq!(decode_request(&sealed(body)), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn absurd_lengths_rejected_without_allocation() {
        // Encoded payload claiming 4 GiB.
        let mut body = vec![0x12];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.push(0x00);
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_response(&sealed(body)),
            Err(WireError::Invalid("payload length over cap"))
        ));
    }

    #[test]
    fn ill_typed_pipeline_rejected() {
        // Configure with [ToTensor] (cannot consume encoded input).
        let mut body = vec![0x01];
        body.extend_from_slice(&0u64.to_le_bytes());
        body.push(1); // one op
        body.push(3); // ToTensor
        assert_eq!(decode_request(&sealed(body)), Err(WireError::Invalid("ill-typed pipeline")));
    }

    #[test]
    fn fuzz_decode_never_panics() {
        // Deterministic pseudo-random byte soup.
        let mut state = 0x12345678u64;
        for len in 0..200usize {
            let mut buf = Vec::with_capacity(len);
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                buf.push((state >> 33) as u8);
            }
            let _ = decode_request(&buf);
            let _ = decode_response(&buf);
        }
    }
}
