//! A harness running several live TCP storage servers as one fleet.
//!
//! [`MultiServerHarness`] partitions an [`ObjectStore`] across N nodes by a
//! caller-supplied placement function (each node stores the samples it owns
//! as primary *or* replica), binds one [`TcpStorageServer`] per node on an
//! ephemeral loopback port, and exposes per-node addresses, clients, byte
//! meters, and a `kill` switch for failover experiments. The placement
//! function is deliberately a plain closure — the `fleet` crate's
//! `ShardMap::owners` slots straight in without this crate depending on it.

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;

use netsim::MeterSnapshot;

use netsim::TrafficMeter;

use crate::chaos::{FaultPlan, FaultRecord, ServerFaultInjector};
use crate::tcp::{TcpStorageClient, TcpStorageServer};
use crate::{ObjectStore, ServerConfig};

/// Typed construction failures for a [`MultiServerHarness`], so a caller
/// can tell a bad fleet shape from a bad placement from one specific
/// node's socket refusing to bind.
#[derive(Debug)]
#[non_exhaustive]
pub enum HarnessError {
    /// The fleet was asked to spawn zero nodes.
    EmptyFleet,
    /// The placement function returned a node index past the fleet size.
    OwnerOutOfRange {
        /// The offending owner index.
        owner: usize,
        /// The fleet size it exceeded.
        nodes: usize,
    },
    /// One node's server failed to bind; the others (which may have bound
    /// fine) are shut down before this surfaces.
    Bind {
        /// Which node failed.
        node: usize,
        /// The underlying socket error.
        source: io::Error,
    },
    /// One node's startup thread panicked before reporting an outcome —
    /// surfaced as a typed error instead of cascading the panic into the
    /// caller.
    NodeStartPanicked {
        /// Which node's thread died.
        node: usize,
    },
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::EmptyFleet => write!(f, "fleet needs at least one node"),
            HarnessError::OwnerOutOfRange { owner, nodes } => {
                write!(f, "owner {owner} out of range for {nodes} nodes")
            }
            HarnessError::Bind { node, source } => {
                write!(f, "node {node} failed to bind: {source}")
            }
            HarnessError::NodeStartPanicked { node } => {
                write!(f, "node {node}'s startup thread panicked")
            }
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Bind { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<HarnessError> for io::Error {
    fn from(e: HarnessError) -> io::Error {
        match e {
            HarnessError::Bind { source, .. } => source,
            other => io::Error::new(io::ErrorKind::InvalidInput, other.to_string()),
        }
    }
}

/// One node of a [`MultiServerHarness`].
#[derive(Debug)]
struct Node {
    server: Option<TcpStorageServer>,
    addr: SocketAddr,
    meter: TrafficMeter,
    stored: usize,
    injector: Option<Arc<ServerFaultInjector>>,
}

/// Several live TCP storage servers, each holding one shard of a corpus.
#[derive(Debug)]
pub struct MultiServerHarness {
    nodes: Vec<Node>,
}

impl MultiServerHarness {
    /// Splits `store` across `nodes` servers and starts them all.
    ///
    /// `owners(sample_id)` returns the ordered node list holding that
    /// sample (primary first); the sample's bytes are replicated onto each
    /// node in the list. Every server runs `config` (cores, bandwidth cap,
    /// queue depth).
    ///
    /// # Errors
    ///
    /// Returns a typed [`HarnessError`]: `EmptyFleet` for a zero-node
    /// fleet, `OwnerOutOfRange` for a bad placement, and `Bind` naming the
    /// specific node whose socket failed (converts into `io::Error` for
    /// callers that want one).
    pub fn spawn<F>(
        store: &ObjectStore,
        nodes: usize,
        config: ServerConfig,
        owners: F,
    ) -> Result<MultiServerHarness, HarnessError>
    where
        F: Fn(u64) -> Vec<usize>,
    {
        Self::spawn_inner(store, nodes, config, owners, None)
    }

    /// Like [`MultiServerHarness::spawn`], but every node injects faults
    /// from `plan`. Each node's injector runs the same schedule under a
    /// seed derived deterministically from the plan seed and node index,
    /// so a fleet-wide chaos run reproduces exactly from one seed. Read
    /// the injected-fault history back with
    /// [`MultiServerHarness::fault_log`].
    ///
    /// # Errors
    ///
    /// Same conditions as `spawn`.
    pub fn spawn_with_chaos<F>(
        store: &ObjectStore,
        nodes: usize,
        config: ServerConfig,
        owners: F,
        plan: &FaultPlan,
    ) -> Result<MultiServerHarness, HarnessError>
    where
        F: Fn(u64) -> Vec<usize>,
    {
        Self::spawn_inner(store, nodes, config, owners, Some(plan))
    }

    fn spawn_inner<F>(
        store: &ObjectStore,
        nodes: usize,
        config: ServerConfig,
        owners: F,
        plan: Option<&FaultPlan>,
    ) -> Result<MultiServerHarness, HarnessError>
    where
        F: Fn(u64) -> Vec<usize>,
    {
        if nodes == 0 {
            return Err(HarnessError::EmptyFleet);
        }
        let mut shards: Vec<ObjectStore> = (0..nodes).map(|_| ObjectStore::new()).collect();
        for (id, bytes) in store.iter() {
            for node in owners(id) {
                if node >= nodes {
                    return Err(HarnessError::OwnerOutOfRange { owner: node, nodes });
                }
                shards[node].insert(id, bytes.clone());
            }
        }
        // Bind every node concurrently — fleet startup costs one bind, not
        // N serial ones. Each thread reports its own typed outcome.
        let results: Vec<Result<Node, HarnessError>> = std::thread::scope(|s| {
            let handles: Vec<_> = shards
                .into_iter()
                .enumerate()
                .map(|(n, shard)| {
                    let injector = plan.map(|p| {
                        // Domain-separated per-node seed: same fleet seed,
                        // distinct per-node schedules, fully reproducible.
                        let node_seed =
                            p.seed() ^ (0x6e6f_6465 + n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                        Arc::new(ServerFaultInjector::new(n, p.clone().reseeded(node_seed)))
                    });
                    s.spawn(move || {
                        let stored = shard.len();
                        let server = TcpStorageServer::bind_with_injector(
                            shard,
                            config,
                            "127.0.0.1:0",
                            injector.clone(),
                        )
                        .map_err(|source| HarnessError::Bind { node: n, source })?;
                        Ok(Node {
                            addr: server.local_addr(),
                            meter: server.meter(),
                            server: Some(server),
                            stored,
                            injector,
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(n, h)| {
                    h.join().unwrap_or_else(|_| Err(HarnessError::NodeStartPanicked { node: n }))
                })
                .collect()
        });
        let mut out = Vec::with_capacity(nodes);
        let mut first_error = None;
        for result in results {
            match result {
                Ok(node) => out.push(node),
                Err(e) => first_error = first_error.or(Some(e)),
            }
        }
        if let Some(e) = first_error {
            // Partial fleets don't leak: nodes that did bind are torn down.
            for mut node in out {
                if let Some(server) = node.server.take() {
                    server.shutdown();
                }
            }
            return Err(e);
        }
        Ok(MultiServerHarness { nodes: out })
    }

    /// Number of nodes (killed ones included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the harness has no nodes (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The bound address of `node`.
    pub fn addr(&self, node: usize) -> SocketAddr {
        self.nodes[node].addr
    }

    /// Samples stored on `node` (as primary or replica).
    pub fn stored_samples(&self, node: usize) -> usize {
        self.nodes[node].stored
    }

    /// Connects a fresh client to `node`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (e.g. the node was killed).
    pub fn client(&self, node: usize) -> io::Result<TcpStorageClient> {
        TcpStorageClient::connect(self.nodes[node].addr)
    }

    /// Connects one client per node, in node order.
    ///
    /// # Errors
    ///
    /// Propagates the first connection failure.
    pub fn clients(&self) -> io::Result<Vec<TcpStorageClient>> {
        (0..self.len()).map(|n| self.client(n)).collect()
    }

    /// Response bytes `node` has written so far (survives a kill).
    pub fn response_bytes(&self, node: usize) -> u64 {
        self.nodes[node].meter.bytes()
    }

    /// Labeled per-node traffic readings (`node0`, `node1`, …), taken now.
    pub fn traffic(&self) -> Vec<MeterSnapshot> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(n, node)| node.meter.snapshot(format!("node{n}")))
            .collect()
    }

    /// Fleet-wide aggregate of every node's response traffic.
    pub fn traffic_total(&self) -> MeterSnapshot {
        MeterSnapshot::merge("fleet", self.traffic())
    }

    /// Faults injected by `node` so far, sorted by
    /// `(sample, epoch, attempt)` (empty without chaos).
    pub fn fault_log(&self, node: usize) -> Vec<FaultRecord> {
        self.nodes[node].injector.as_ref().map(|i| i.log()).unwrap_or_default()
    }

    /// Every node's injected faults merged, sorted by
    /// `(node, sample, epoch, attempt)` — the canonical sequence to
    /// compare across same-seed chaos runs.
    pub fn fault_logs(&self) -> Vec<FaultRecord> {
        let mut all: Vec<FaultRecord> = (0..self.len()).flat_map(|n| self.fault_log(n)).collect();
        all.sort_unstable();
        all
    }

    /// Total faults injected fleet-wide so far.
    pub fn faults_injected(&self) -> usize {
        self.nodes.iter().filter_map(|n| n.injector.as_ref()).map(|i| i.injected()).sum()
    }

    /// Whether `node` is still serving.
    pub fn is_alive(&self, node: usize) -> bool {
        self.nodes[node].server.is_some()
    }

    /// Kills `node`: stops its server and closes its connections. Clients
    /// observe `Disconnected` on their next request. Idempotent.
    pub fn kill(&mut self, node: usize) {
        if let Some(server) = self.nodes[node].server.take() {
            server.shutdown();
        }
    }

    /// Shuts every surviving node down.
    pub fn shutdown(mut self) {
        for node in &mut self.nodes {
            if let Some(server) = node.server.take() {
                server.shutdown();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Bandwidth;
    use pipeline::{PipelineSpec, SplitPoint};

    fn config() -> ServerConfig {
        ServerConfig {
            cores: 2,
            bandwidth: Bandwidth::from_gbps(10.0),
            queue_depth: 16,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn chaos_harness_logs_reproduce_per_seed() {
        use crate::chaos::FaultPlan;
        use crate::Deadline;
        use pipeline::PipelineSpec;

        let ds = datasets::DatasetSpec::mini(8, 33);
        let store = ObjectStore::materialize_dataset(&ds, 0..8);
        let run = |seed: u64| {
            let plan = FaultPlan::quiet(seed).with_errors(0.5);
            let harness = MultiServerHarness::spawn_with_chaos(
                &store,
                2,
                config(),
                |id| vec![(id % 2) as usize],
                &plan,
            )
            .unwrap();
            for node in 0..2 {
                let mut client = harness
                    .client(node)
                    .unwrap()
                    .with_deadline(Deadline::after(std::time::Duration::from_secs(5)));
                client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
                for id in 0..8u64 {
                    if (id % 2) as usize != node {
                        continue;
                    }
                    let reqs = vec![crate::FetchRequest::new(id, 0, pipeline::SplitPoint::NONE)];
                    // Injected errors are transient: one retry converges.
                    for _ in 0..3 {
                        if client.fetch_many_requests(&reqs).is_ok() {
                            break;
                        }
                    }
                }
            }
            let log = harness.fault_logs();
            harness.shutdown();
            log
        };
        let a = run(5);
        let b = run(5);
        let c = run(6);
        assert!(!a.is_empty(), "a 50% error rate over 8 samples must fire");
        assert_eq!(a, b, "same seed, same fault sequence");
        assert_ne!(a, c, "different seed, different fault sequence");
    }

    #[test]
    fn construction_failures_are_typed() {
        let store = ObjectStore::new();
        assert!(matches!(
            MultiServerHarness::spawn(&store, 0, config(), |_| vec![0]),
            Err(HarnessError::EmptyFleet)
        ));
        let ds = datasets::DatasetSpec::mini(2, 30);
        let store = ObjectStore::materialize_dataset(&ds, 0..2);
        let err = MultiServerHarness::spawn(&store, 2, config(), |_| vec![5]).unwrap_err();
        assert!(matches!(err, HarnessError::OwnerOutOfRange { owner: 5, nodes: 2 }), "{err}");
        // Typed errors still flow into io::Error for io::Result callers.
        let as_io: io::Error = err.into();
        assert_eq!(as_io.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn bind_failure_names_the_node_and_tears_down_survivors() {
        let ds = datasets::DatasetSpec::mini(2, 30);
        let store = ObjectStore::materialize_dataset(&ds, 0..2);
        let bad = ServerConfig { cores: 0, ..config() };
        let err =
            MultiServerHarness::spawn(&store, 3, bad, |id| vec![(id % 3) as usize]).unwrap_err();
        match err {
            HarnessError::Bind { node, source } => {
                assert!(node < 3);
                assert_eq!(source.kind(), io::ErrorKind::InvalidInput);
            }
            other => panic!("expected Bind, got {other:?}"),
        }
    }

    #[test]
    fn shards_partition_and_replicate_the_corpus() {
        let ds = datasets::DatasetSpec::mini(12, 31);
        let store = ObjectStore::materialize_dataset(&ds, 0..12);
        // Placement: primary = id % 3, replica = (id + 1) % 3.
        let harness = MultiServerHarness::spawn(&store, 3, config(), |id| {
            vec![(id % 3) as usize, ((id + 1) % 3) as usize]
        })
        .unwrap();
        // Each node holds its primaries plus its predecessors' replicas.
        for node in 0..3 {
            assert_eq!(harness.stored_samples(node), 8, "node {node}");
        }
        // A client of node 1 can fetch anything node 1 stores.
        let mut client = harness.client(1).unwrap();
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        let reqs = vec![crate::FetchRequest::new(1, 0, SplitPoint::NONE)];
        assert_eq!(client.fetch_many_requests(&reqs).unwrap().len(), 1);
        harness.shutdown();
    }

    #[test]
    fn killed_node_disconnects_its_clients() {
        let ds = datasets::DatasetSpec::mini(4, 32);
        let store = ObjectStore::materialize_dataset(&ds, 0..4);
        let mut harness =
            MultiServerHarness::spawn(&store, 2, config(), |id| vec![(id % 2) as usize]).unwrap();
        let mut client = harness.client(0).unwrap();
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        assert!(harness.is_alive(0));
        harness.kill(0);
        assert!(!harness.is_alive(0));
        let reqs = vec![crate::FetchRequest::new(0, 0, SplitPoint::NONE)];
        let err = client.fetch_many_requests(&reqs).unwrap_err();
        assert!(matches!(err, crate::ClientError::Disconnected));
        // Survivor keeps serving, and the meter of the corpse still reads.
        let mut ok = harness.client(1).unwrap();
        ok.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        let reqs = vec![crate::FetchRequest::new(1, 0, SplitPoint::NONE)];
        assert_eq!(ok.fetch_many_requests(&reqs).unwrap().len(), 1);
        let total = harness.traffic_total();
        assert_eq!(total.bytes, harness.response_bytes(0) + harness.response_bytes(1));
        assert!(total.bytes > 0);
        harness.shutdown();
    }
}
