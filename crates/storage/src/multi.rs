//! A harness running several live TCP storage servers as one fleet.
//!
//! [`MultiServerHarness`] partitions an [`ObjectStore`] across N nodes by a
//! caller-supplied placement function (each node stores the samples it owns
//! as primary *or* replica), binds one [`TcpStorageServer`] per node on an
//! ephemeral loopback port, and exposes per-node addresses, clients, byte
//! meters, and a `kill` switch for failover experiments. The placement
//! function is deliberately a plain closure — the `fleet` crate's
//! `ShardMap::owners` slots straight in without this crate depending on it.

use std::io;
use std::net::SocketAddr;

use netsim::MeterSnapshot;

use netsim::TrafficMeter;

use crate::tcp::{TcpStorageClient, TcpStorageServer};
use crate::{ObjectStore, ServerConfig};

/// One node of a [`MultiServerHarness`].
#[derive(Debug)]
struct Node {
    server: Option<TcpStorageServer>,
    addr: SocketAddr,
    meter: TrafficMeter,
    stored: usize,
}

/// Several live TCP storage servers, each holding one shard of a corpus.
#[derive(Debug)]
pub struct MultiServerHarness {
    nodes: Vec<Node>,
}

impl MultiServerHarness {
    /// Splits `store` across `nodes` servers and starts them all.
    ///
    /// `owners(sample_id)` returns the ordered node list holding that
    /// sample (primary first); the sample's bytes are replicated onto each
    /// node in the list. Every server runs `config` (cores, bandwidth cap,
    /// queue depth).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is zero or `owners` names a node out of range.
    pub fn spawn<F>(
        store: &ObjectStore,
        nodes: usize,
        config: ServerConfig,
        owners: F,
    ) -> io::Result<MultiServerHarness>
    where
        F: Fn(u64) -> Vec<usize>,
    {
        assert!(nodes > 0, "fleet needs at least one node");
        let mut shards: Vec<ObjectStore> = (0..nodes).map(|_| ObjectStore::new()).collect();
        for (id, bytes) in store.iter() {
            for node in owners(id) {
                assert!(node < nodes, "owner {node} out of range for {nodes} nodes");
                shards[node].insert(id, bytes.clone());
            }
        }
        let mut out = Vec::with_capacity(nodes);
        for shard in shards {
            let stored = shard.len();
            let server = TcpStorageServer::bind(shard, config, "127.0.0.1:0")?;
            out.push(Node {
                addr: server.local_addr(),
                meter: server.meter(),
                server: Some(server),
                stored,
            });
        }
        Ok(MultiServerHarness { nodes: out })
    }

    /// Number of nodes (killed ones included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the harness has no nodes (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The bound address of `node`.
    pub fn addr(&self, node: usize) -> SocketAddr {
        self.nodes[node].addr
    }

    /// Samples stored on `node` (as primary or replica).
    pub fn stored_samples(&self, node: usize) -> usize {
        self.nodes[node].stored
    }

    /// Connects a fresh client to `node`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (e.g. the node was killed).
    pub fn client(&self, node: usize) -> io::Result<TcpStorageClient> {
        TcpStorageClient::connect(self.nodes[node].addr)
    }

    /// Connects one client per node, in node order.
    ///
    /// # Errors
    ///
    /// Propagates the first connection failure.
    pub fn clients(&self) -> io::Result<Vec<TcpStorageClient>> {
        (0..self.len()).map(|n| self.client(n)).collect()
    }

    /// Response bytes `node` has written so far (survives a kill).
    pub fn response_bytes(&self, node: usize) -> u64 {
        self.nodes[node].meter.bytes()
    }

    /// Labeled per-node traffic readings (`node0`, `node1`, …), taken now.
    pub fn traffic(&self) -> Vec<MeterSnapshot> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(n, node)| node.meter.snapshot(format!("node{n}")))
            .collect()
    }

    /// Fleet-wide aggregate of every node's response traffic.
    pub fn traffic_total(&self) -> MeterSnapshot {
        MeterSnapshot::merge("fleet", self.traffic())
    }

    /// Whether `node` is still serving.
    pub fn is_alive(&self, node: usize) -> bool {
        self.nodes[node].server.is_some()
    }

    /// Kills `node`: stops its server and closes its connections. Clients
    /// observe `Disconnected` on their next request. Idempotent.
    pub fn kill(&mut self, node: usize) {
        if let Some(server) = self.nodes[node].server.take() {
            server.shutdown();
        }
    }

    /// Shuts every surviving node down.
    pub fn shutdown(mut self) {
        for node in &mut self.nodes {
            if let Some(server) = node.server.take() {
                server.shutdown();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Bandwidth;
    use pipeline::{PipelineSpec, SplitPoint};

    fn config() -> ServerConfig {
        ServerConfig { cores: 2, bandwidth: Bandwidth::from_gbps(10.0), queue_depth: 16 }
    }

    #[test]
    fn shards_partition_and_replicate_the_corpus() {
        let ds = datasets::DatasetSpec::mini(12, 31);
        let store = ObjectStore::materialize_dataset(&ds, 0..12);
        // Placement: primary = id % 3, replica = (id + 1) % 3.
        let harness = MultiServerHarness::spawn(&store, 3, config(), |id| {
            vec![(id % 3) as usize, ((id + 1) % 3) as usize]
        })
        .unwrap();
        // Each node holds its primaries plus its predecessors' replicas.
        for node in 0..3 {
            assert_eq!(harness.stored_samples(node), 8, "node {node}");
        }
        // A client of node 1 can fetch anything node 1 stores.
        let mut client = harness.client(1).unwrap();
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        let reqs = vec![crate::FetchRequest::new(1, 0, SplitPoint::NONE)];
        assert_eq!(client.fetch_many_requests(&reqs).unwrap().len(), 1);
        harness.shutdown();
    }

    #[test]
    fn killed_node_disconnects_its_clients() {
        let ds = datasets::DatasetSpec::mini(4, 32);
        let store = ObjectStore::materialize_dataset(&ds, 0..4);
        let mut harness =
            MultiServerHarness::spawn(&store, 2, config(), |id| vec![(id % 2) as usize]).unwrap();
        let mut client = harness.client(0).unwrap();
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        assert!(harness.is_alive(0));
        harness.kill(0);
        assert!(!harness.is_alive(0));
        let reqs = vec![crate::FetchRequest::new(0, 0, SplitPoint::NONE)];
        let err = client.fetch_many_requests(&reqs).unwrap_err();
        assert!(matches!(err, crate::ClientError::Disconnected));
        // Survivor keeps serving, and the meter of the corpse still reads.
        let mut ok = harness.client(1).unwrap();
        ok.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        let reqs = vec![crate::FetchRequest::new(1, 0, SplitPoint::NONE)];
        assert_eq!(ok.fetch_many_requests(&reqs).unwrap().len(), 1);
        let total = harness.traffic_total();
        assert_eq!(total.bytes, harness.response_bytes(0) + harness.response_bytes(1));
        assert!(total.bytes > 0);
        harness.shutdown();
    }
}
