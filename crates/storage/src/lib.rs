//! The remote storage node: object store, fetch protocol, near-storage
//! execution, and a live threaded server.
//!
//! This crate is the paper's storage server (Figure 2, steps d–e): the
//! compute node sends **fetch requests carrying offload directives** — which
//! prefix of the preprocessing pipeline to run near the data — and the
//! server answers with raw or partially preprocessed bytes.
//!
//! * [`ObjectStore`] — the in-memory dataset cache (the paper pins its
//!   subsets in RAM).
//! * [`wire`] — a hand-rolled, length-prefixed binary wire format for
//!   requests, responses, and [`pipeline::StageData`] payloads. Decoding is
//!   total: corrupt bytes produce errors, never panics.
//! * [`NearStorageExecutor`] — applies an offloaded pipeline prefix to a
//!   stored object, reproducing exactly what the compute node would have
//!   computed (deterministic per-(sample, epoch, op) augmentation streams).
//! * [`StorageServer`] / [`StorageClient`] — a real multi-threaded server
//!   and its client, connected by bandwidth-throttled in-process pipes
//!   ([`netsim::ThrottledPipe`]), so end-to-end examples move real bytes
//!   through a real 500 Mbps bottleneck.
//!
//! The failure-handling layer (this crate's chaos era):
//!
//! * [`wire`] frames carry a CRC32 trailer; bit corruption surfaces as
//!   [`wire::WireError::ChecksumMismatch`] → [`ClientError::Corrupted`].
//! * [`Deadline`] — per-exchange time budgets on [`TcpStorageClient`],
//!   replacing the old hardcoded read timeout.
//! * [`chaos`] — seeded, deterministic fault injection (client decorator
//!   and server-side injector) over `(sample, epoch, attempt)` keys.
//! * [`health`] — a circuit breaker per node:
//!   [`HealthTrackingTransport`] fails fast while a node is degraded and
//!   probes it back to health after a deterministic cooldown schedule.
//!
//! # Example
//!
//! ```
//! use storage::{ObjectStore, StorageServer, ServerConfig};
//! use pipeline::{PipelineSpec, SplitPoint};
//! use netsim::Bandwidth;
//!
//! // Three tiny samples.
//! let ds = datasets::DatasetSpec::mini(3, 9);
//! let store = ObjectStore::materialize_dataset(&ds, 0..3);
//!
//! let mut server = StorageServer::spawn(store, ServerConfig {
//!     cores: 2,
//!     bandwidth: Bandwidth::from_gbps(10.0),
//!     queue_depth: 16,
//!     ..ServerConfig::default()
//! });
//! let mut client = server.client();
//! client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
//! // Offload Decode + RandomResizedCrop for sample 1, epoch 0.
//! let data = client.fetch(1, 0, SplitPoint::new(2)).unwrap();
//! assert_eq!(data.byte_len(), 150_528);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod client;
mod deadline;
mod executor;
pub mod health;
pub mod multi;
mod object_store;
pub mod protocol;
mod retry;
mod server;
pub mod tcp;
mod transport;
pub mod wire;

pub use chaos::{FaultInjectingTransport, FaultKind, FaultPlan, FaultRecord, ServerFaultInjector};
pub use client::{ClientError, StorageClient};
pub use deadline::Deadline;
pub use executor::{ExecError, NearStorageExecutor};
pub use health::{
    BreakerConfig, BreakerState, HealthSnapshot, HealthTrackingTransport, NodeHealthHandle,
};
pub use multi::{HarnessError, MultiServerHarness};
pub use object_store::ObjectStore;
pub use protocol::{FetchRequest, FetchResponse, Request, Response, SessionConfig};
pub use retry::{BackoffConfig, RetryingTransport};
pub use server::{ServerConfig, StorageServer};
pub use tcp::{TcpStorageClient, TcpStorageServer};
pub use transport::FetchTransport;
