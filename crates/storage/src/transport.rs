//! Transport abstraction over the two client implementations.
//!
//! [`StorageClient`] (in-process throttled pipes) and [`TcpStorageClient`]
//! (real sockets) expose the same protocol surface; `FetchTransport` lets
//! higher layers — notably the `sophon` data loader — run over either
//! without caring which.

use pipeline::PipelineSpec;

use crate::{ClientError, FetchRequest, FetchResponse, StorageClient, TcpStorageClient};

/// A connection capable of configuring a session and fetching samples.
pub trait FetchTransport {
    /// Configures the session pipeline; must precede fetches.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport or server failures.
    fn configure(&mut self, dataset_seed: u64, pipeline: PipelineSpec) -> Result<(), ClientError>;

    /// Issues all requests up front and collects every response (any
    /// order).
    ///
    /// # Errors
    ///
    /// Returns the first failure.
    fn fetch_many_requests(
        &mut self,
        requests: &[FetchRequest],
    ) -> Result<Vec<FetchResponse>, ClientError>;
}

impl FetchTransport for StorageClient {
    fn configure(&mut self, dataset_seed: u64, pipeline: PipelineSpec) -> Result<(), ClientError> {
        StorageClient::configure(self, dataset_seed, pipeline)
    }

    fn fetch_many_requests(
        &mut self,
        requests: &[FetchRequest],
    ) -> Result<Vec<FetchResponse>, ClientError> {
        StorageClient::fetch_many_requests(self, requests)
    }
}

impl FetchTransport for TcpStorageClient {
    fn configure(&mut self, dataset_seed: u64, pipeline: PipelineSpec) -> Result<(), ClientError> {
        TcpStorageClient::configure(self, dataset_seed, pipeline)
    }

    fn fetch_many_requests(
        &mut self,
        requests: &[FetchRequest],
    ) -> Result<Vec<FetchResponse>, ClientError> {
        TcpStorageClient::fetch_many_requests(self, requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Bandwidth;
    use pipeline::SplitPoint;

    fn fetch_over<T: FetchTransport>(t: &mut T, seed: u64) -> usize {
        t.configure(seed, PipelineSpec::standard_train()).unwrap();
        let reqs: Vec<_> =
            (0..3u64).map(|id| FetchRequest::new(id, 0, SplitPoint::new(2))).collect();
        t.fetch_many_requests(&reqs).unwrap().len()
    }

    #[test]
    fn both_transports_satisfy_the_trait() {
        let ds = datasets::DatasetSpec::mini(3, 81);
        let store = crate::ObjectStore::materialize_dataset(&ds, 0..3);

        let mut server = crate::StorageServer::spawn(
            store.clone(),
            crate::ServerConfig {
                cores: 2,
                bandwidth: Bandwidth::from_gbps(10.0),
                queue_depth: 16,
                ..crate::ServerConfig::default()
            },
        );
        let mut pipe_client = server.client();
        assert_eq!(fetch_over(&mut pipe_client, ds.seed), 3);
        server.shutdown();

        let tcp_server = crate::TcpStorageServer::bind(
            store,
            crate::ServerConfig {
                cores: 2,
                bandwidth: Bandwidth::from_gbps(10.0),
                queue_depth: 16,
                ..crate::ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let mut tcp_client = TcpStorageClient::connect(tcp_server.local_addr()).unwrap();
        assert_eq!(fetch_over(&mut tcp_client, ds.seed), 3);
        tcp_server.shutdown();
    }
}
