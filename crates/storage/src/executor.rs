use pipeline::{PipelineError, SampleKey, StageData};

use crate::protocol::{FetchRequest, FetchResponse, SessionConfig};
use crate::ObjectStore;

/// Errors from near-storage execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// The requested sample is not in the object store.
    UnknownSample(u64),
    /// The offloaded prefix failed (bad split, decode failure, …).
    Pipeline(PipelineError),
    /// The re-encode directive carried an out-of-range quality.
    InvalidQuality(u8),
    /// Re-encoding was requested but the split's output is not an image.
    ReencodeNotImage,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownSample(id) => write!(f, "unknown sample {id}"),
            ExecError::Pipeline(e) => write!(f, "offloaded preprocessing failed: {e}"),
            ExecError::InvalidQuality(q) => write!(f, "re-encode quality {q} out of range"),
            ExecError::ReencodeNotImage => {
                write!(f, "re-encode requested but offloaded output is not an image")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PipelineError> for ExecError {
    fn from(e: PipelineError) -> Self {
        ExecError::Pipeline(e)
    }
}

/// Applies offloaded pipeline prefixes to stored objects.
///
/// This is the paper's near-storage processing hook (Ceph object classes /
/// S3 Object Lambda in their discussion): given a fetch request with an
/// offload directive, it loads the raw object and runs the directed prefix,
/// with augmentation streams keyed exactly as the compute node would key
/// them.
#[derive(Debug, Clone)]
pub struct NearStorageExecutor {
    store: ObjectStore,
    config: SessionConfig,
}

impl NearStorageExecutor {
    /// Creates an executor over a store for one training session.
    pub fn new(store: ObjectStore, config: SessionConfig) -> NearStorageExecutor {
        NearStorageExecutor { store, config }
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Executes one fetch request.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownSample`] for missing objects and
    /// [`ExecError::Pipeline`] when the prefix fails.
    pub fn execute(&self, req: FetchRequest) -> Result<FetchResponse, ExecError> {
        let bytes = self.store.get(req.sample_id).ok_or(ExecError::UnknownSample(req.sample_id))?;

        // Brownout serving: a fidelity-capped raw fetch of a tiered object
        // ships the tier prefix straight from storage — no re-encode, no
        // pipeline work, strictly fewer bytes on the wire. The cap is
        // advisory for classic (non-tiered) objects, which have no
        // truncation boundaries and are served whole.
        if let (Some(cap), true) = (req.max_tier, req.split == pipeline::SplitPoint::NONE) {
            if let Ok(index) = codec::TierIndex::parse(&bytes) {
                let served = cap.min(index.full_tier());
                if served < index.full_tier() {
                    let prefix = codec::truncate_to_tier(&bytes, served)
                        .expect("tier validated against the parsed index");
                    return Ok(FetchResponse {
                        sample_id: req.sample_id,
                        ops_applied: 0,
                        data: StageData::Encoded(bytes.slice(0..prefix.len())),
                        tier: Some(served),
                    });
                }
            }
        }

        let key = SampleKey::new(self.config.dataset_seed, req.sample_id, req.epoch);
        let mut data =
            self.config.pipeline.run_prefix(StageData::Encoded(bytes), req.split, key)?;
        if let Some(q) = req.reencode_quality {
            let quality = codec::Quality::new(q).ok_or(ExecError::InvalidQuality(q))?;
            let StageData::Image(img) = &data else {
                return Err(ExecError::ReencodeNotImage);
            };
            data = StageData::Encoded(codec::encode(img, quality).into());
        }
        Ok(FetchResponse {
            sample_id: req.sample_id,
            ops_applied: req.split.offloaded_ops() as u32,
            data,
            tier: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::{PipelineSpec, SplitPoint};

    fn executor() -> NearStorageExecutor {
        let ds = datasets::DatasetSpec::mini(3, 4);
        let store = ObjectStore::materialize_dataset(&ds, 0..3);
        NearStorageExecutor::new(
            store,
            SessionConfig { dataset_seed: 4, pipeline: PipelineSpec::standard_train() },
        )
    }

    #[test]
    fn split_zero_returns_raw_bytes() {
        let ex = executor();
        let resp = ex.execute(FetchRequest::new(0, 0, SplitPoint::NONE)).unwrap();
        assert_eq!(resp.ops_applied, 0);
        assert!(resp.data.as_encoded().is_some());
    }

    #[test]
    fn split_two_returns_cropped_image() {
        let ex = executor();
        let resp = ex.execute(FetchRequest::new(1, 0, SplitPoint::new(2))).unwrap();
        assert_eq!(resp.ops_applied, 2);
        assert_eq!(resp.data.byte_len(), 150_528);
    }

    #[test]
    fn unknown_sample_reported() {
        let ex = executor();
        let err = ex.execute(FetchRequest::new(99, 0, SplitPoint::NONE)).unwrap_err();
        assert_eq!(err, ExecError::UnknownSample(99));
    }

    #[test]
    fn invalid_split_reported() {
        let ex = executor();
        let err = ex.execute(FetchRequest::new(0, 0, SplitPoint::new(9))).unwrap_err();
        assert!(matches!(err, ExecError::Pipeline(_)));
    }

    #[test]
    fn fidelity_capped_raw_fetch_serves_a_tier_prefix() {
        let ds = datasets::DatasetSpec::mini(2, 4);
        let spec = codec::TierSpec::default();
        let store = ObjectStore::materialize_dataset_tiered(&ds, 0..2, &spec);
        let full = store.get(0).unwrap();
        let ex = NearStorageExecutor::new(
            store,
            SessionConfig { dataset_seed: 4, pipeline: PipelineSpec::standard_train() },
        );
        let resp = ex.execute(FetchRequest::new(0, 0, SplitPoint::NONE).with_max_tier(0)).unwrap();
        assert_eq!(resp.tier, Some(0));
        let served = resp.data.as_encoded().unwrap();
        assert!(served.len() < full.len(), "tier 0 prefix must shrink the payload");
        assert_eq!(&full[..served.len()], served, "prefix is a literal truncation");
        assert_eq!(codec::decode_tiered(served).unwrap().tier, 0);
    }

    #[test]
    fn fidelity_cap_at_or_above_the_ladder_serves_full_and_unmarked() {
        let ds = datasets::DatasetSpec::mini(1, 4);
        let spec = codec::TierSpec::default();
        let store = ObjectStore::materialize_dataset_tiered(&ds, 0..1, &spec);
        let full = store.get(0).unwrap();
        let ex = NearStorageExecutor::new(
            store,
            SessionConfig { dataset_seed: 4, pipeline: PipelineSpec::standard_train() },
        );
        for cap in [2u8, 7] {
            let resp =
                ex.execute(FetchRequest::new(0, 0, SplitPoint::NONE).with_max_tier(cap)).unwrap();
            assert_eq!(resp.tier, None, "full-fidelity serves carry no tier marker");
            assert_eq!(resp.data.as_encoded().unwrap(), &full[..]);
        }
    }

    #[test]
    fn fidelity_cap_is_advisory_for_classic_objects() {
        let ex = executor(); // classic v2 store
        let full = ex.execute(FetchRequest::new(0, 0, SplitPoint::NONE)).unwrap();
        let capped =
            ex.execute(FetchRequest::new(0, 0, SplitPoint::NONE).with_max_tier(0)).unwrap();
        assert_eq!(capped.tier, None);
        assert_eq!(capped.data.as_encoded(), full.data.as_encoded());
    }

    #[test]
    fn fidelity_cap_does_not_disturb_offloaded_prefixes() {
        let ds = datasets::DatasetSpec::mini(1, 4);
        let store = ObjectStore::materialize_dataset_tiered(&ds, 0..1, &codec::TierSpec::default());
        let ex = NearStorageExecutor::new(
            store,
            SessionConfig { dataset_seed: 4, pipeline: PipelineSpec::standard_train() },
        );
        let resp =
            ex.execute(FetchRequest::new(0, 0, SplitPoint::new(2)).with_max_tier(0)).unwrap();
        assert_eq!(resp.tier, None, "offloaded samples are not browned out");
        assert_eq!(resp.ops_applied, 2);
    }

    #[test]
    fn prefix_matches_compute_side_execution() {
        // The executor's output must equal what the compute node would have
        // produced for the same key — the split-equivalence guarantee across
        // the wire.
        let ds = datasets::DatasetSpec::mini(2, 11);
        let store = ObjectStore::materialize_dataset(&ds, 0..2);
        let spec = PipelineSpec::standard_train();
        let ex = NearStorageExecutor::new(
            store.clone(),
            SessionConfig { dataset_seed: 11, pipeline: spec.clone() },
        );
        let resp = ex.execute(FetchRequest::new(1, 5, SplitPoint::new(2))).unwrap();
        let local = spec
            .run_prefix(
                StageData::Encoded(store.get(1).unwrap()),
                SplitPoint::new(2),
                SampleKey::new(11, 1, 5),
            )
            .unwrap();
        assert_eq!(resp.data.as_image(), local.as_image());
    }
}
