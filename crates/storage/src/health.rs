//! Per-node health tracking with a circuit breaker.
//!
//! Retrying forever treats a dead node like a slow one; a storage fleet
//! needs the opposite: notice a node is failing, stop hammering it, and
//! let the planner route around it. [`HealthTrackingTransport`] wraps any
//! [`FetchTransport`] and counts consecutive batch failures. Past a
//! threshold the breaker *opens*: requests fail fast with
//! [`ClientError::CircuitOpen`] without touching the wire. After a
//! cooldown the breaker goes *half-open* and admits exactly one probe — a
//! success closes it, a failure re-opens it with a doubled cooldown
//! (capped). The cooldown schedule is a pure function of the trip count,
//! so breaker behaviour under a scripted failure sequence is fully
//! deterministic.
//!
//! The breaker core operates on *virtual* elapsed time ([`Duration`]
//! values), which keeps the state machine unit-testable without sleeping;
//! the transport layer feeds it wall-clock durations from a monotonic
//! start point. A cloneable [`NodeHealthHandle`] shares the breaker state,
//! so callers can watch a node's health even after the transport itself
//! has moved into a worker thread (the fleet scatter-gather pattern).

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use pipeline::PipelineSpec;

use crate::{ClientError, FetchRequest, FetchResponse, FetchTransport};

/// Breaker thresholds and cooldown schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Cooldown before the first half-open probe; doubles per consecutive
    /// trip.
    pub cooldown: Duration,
    /// Ceiling for the doubled cooldown.
    pub cooldown_cap: Duration,
}

impl BreakerConfig {
    /// Production defaults: trip after 3 consecutive failures, 100 ms
    /// first cooldown, 2 s cap.
    pub fn new() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
            cooldown_cap: Duration::from_secs(2),
        }
    }
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig::new()
    }
}

/// The breaker's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests fail fast until the cooldown elapses.
    Open,
    /// Cooled down: exactly one probe request is admitted.
    HalfOpen,
}

/// A point-in-time reading of one node's health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Current breaker position.
    pub state: BreakerState,
    /// Consecutive failures since the last success.
    pub consecutive_failures: u32,
    /// Total failed batches observed.
    pub total_failures: u64,
    /// Total successful batches observed.
    pub total_successes: u64,
    /// How many times the breaker has tripped open.
    pub times_opened: u64,
}

/// The breaker state machine, clocked by virtual elapsed time.
#[derive(Debug)]
pub struct BreakerCore {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    /// Consecutive trips without an intervening close (drives doubling).
    trips: u32,
    opened_at: Option<Duration>,
    total_failures: u64,
    total_successes: u64,
    times_opened: u64,
}

impl BreakerCore {
    /// A closed breaker with `config`.
    pub fn new(config: BreakerConfig) -> BreakerCore {
        BreakerCore {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
            opened_at: None,
            total_failures: 0,
            total_successes: 0,
            times_opened: 0,
        }
    }

    /// Current breaker position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The cooldown for the current open period: `cooldown × 2^(trips-1)`,
    /// capped. Deterministic per trip count.
    pub fn current_cooldown(&self) -> Duration {
        let doublings = self.trips.saturating_sub(1).min(16);
        self.config.cooldown.saturating_mul(1u32 << doublings).min(self.config.cooldown_cap)
    }

    /// Whether a request may proceed at virtual time `now`. An open
    /// breaker whose cooldown has elapsed transitions to half-open and
    /// admits this call as the probe.
    pub fn allow(&mut self, now: Duration) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let opened = self.opened_at.unwrap_or(Duration::ZERO);
                if now.saturating_sub(opened) >= self.current_cooldown() {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
            // A probe is already in flight; everyone else waits.
            BreakerState::HalfOpen => false,
        }
    }

    /// Records a successful batch: closes the breaker and resets the trip
    /// history.
    pub fn on_success(&mut self, _now: Duration) {
        self.total_successes += 1;
        self.consecutive_failures = 0;
        self.trips = 0;
        self.opened_at = None;
        self.state = BreakerState::Closed;
    }

    /// Records a failed batch at virtual time `now`, tripping the breaker
    /// when warranted.
    pub fn on_failure(&mut self, now: Duration) {
        self.total_failures += 1;
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => {
                self.consecutive_failures += 1;
                self.trip(now);
            }
            BreakerState::Open => {
                // Failures reported while open (e.g. racing threads) keep
                // the breaker open; the clock is not restarted.
                self.consecutive_failures += 1;
            }
        }
    }

    fn trip(&mut self, now: Duration) {
        self.state = BreakerState::Open;
        self.trips += 1;
        self.times_opened += 1;
        self.opened_at = Some(now);
    }

    /// A point-in-time health reading.
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            state: self.state,
            consecutive_failures: self.consecutive_failures,
            total_failures: self.total_failures,
            total_successes: self.total_successes,
            times_opened: self.times_opened,
        }
    }
}

/// A cloneable, thread-safe view of one node's breaker state.
#[derive(Debug, Clone)]
pub struct NodeHealthHandle {
    core: Arc<Mutex<BreakerCore>>,
}

impl NodeHealthHandle {
    /// A point-in-time health reading.
    pub fn snapshot(&self) -> HealthSnapshot {
        self.core.lock().snapshot()
    }

    /// Whether the node is currently degraded (breaker not closed).
    pub fn is_degraded(&self) -> bool {
        self.core.lock().state() != BreakerState::Closed
    }
}

/// A [`FetchTransport`] decorator that runs every batch through a circuit
/// breaker.
#[derive(Debug)]
pub struct HealthTrackingTransport<T> {
    inner: T,
    core: Arc<Mutex<BreakerCore>>,
    started: Instant,
}

impl<T: FetchTransport> HealthTrackingTransport<T> {
    /// Wraps `inner` with a fresh breaker.
    pub fn new(inner: T, config: BreakerConfig) -> HealthTrackingTransport<T> {
        HealthTrackingTransport {
            inner,
            core: Arc::new(Mutex::new(BreakerCore::new(config))),
            started: Instant::now(),
        }
    }

    /// A cloneable handle observing this node's health — take one before
    /// moving the transport into a worker thread.
    pub fn handle(&self) -> NodeHealthHandle {
        NodeHealthHandle { core: Arc::clone(&self.core) }
    }

    /// A reference to the wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: FetchTransport> FetchTransport for HealthTrackingTransport<T> {
    fn configure(&mut self, dataset_seed: u64, pipeline: PipelineSpec) -> Result<(), ClientError> {
        self.inner.configure(dataset_seed, pipeline)
    }

    fn fetch_many_requests(
        &mut self,
        requests: &[FetchRequest],
    ) -> Result<Vec<FetchResponse>, ClientError> {
        if !self.core.lock().allow(self.started.elapsed()) {
            return Err(ClientError::CircuitOpen);
        }
        match self.inner.fetch_many_requests(requests) {
            Ok(out) => {
                self.core.lock().on_success(self.started.elapsed());
                Ok(out)
            }
            Err(e) => {
                self.core.lock().on_failure(self.started.elapsed());
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use pipeline::{SplitPoint, StageData};

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn config() -> BreakerConfig {
        BreakerConfig { failure_threshold: 2, cooldown: ms(100), cooldown_cap: ms(400) }
    }

    #[test]
    fn full_cycle_closed_open_halfopen_closed() {
        let mut b = BreakerCore::new(config());
        assert_eq!(b.state(), BreakerState::Closed);

        // Two consecutive failures trip it.
        assert!(b.allow(ms(0)));
        b.on_failure(ms(0));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(ms(1)));
        b.on_failure(ms(1));
        assert_eq!(b.state(), BreakerState::Open);

        // While open, requests are refused.
        assert!(!b.allow(ms(50)));
        assert!(!b.allow(ms(100)));

        // Cooldown elapsed: exactly one probe is admitted.
        assert!(b.allow(ms(101)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(ms(102)), "second caller must wait for the probe");

        // Probe succeeds: closed, counters reset.
        b.on_success(ms(103));
        assert_eq!(b.state(), BreakerState::Closed);
        let snap = b.snapshot();
        assert_eq!(snap.consecutive_failures, 0);
        assert_eq!(snap.times_opened, 1);
        assert_eq!(snap.total_failures, 2);
        assert_eq!(snap.total_successes, 1);
    }

    #[test]
    fn cooldown_doubles_per_consecutive_trip_and_caps() {
        let mut b = BreakerCore::new(config());
        b.on_failure(ms(0));
        b.on_failure(ms(0)); // trip 1
        assert_eq!(b.current_cooldown(), ms(100));

        // Probe at 100ms fails: trip 2, cooldown doubles to 200ms.
        assert!(b.allow(ms(100)));
        b.on_failure(ms(100));
        assert_eq!(b.current_cooldown(), ms(200));
        assert!(!b.allow(ms(250)), "only 150ms into a 200ms cooldown");

        // Probe at 300ms fails: trip 3, cooldown 400ms (at the cap).
        assert!(b.allow(ms(300)));
        b.on_failure(ms(300));
        assert_eq!(b.current_cooldown(), ms(400));

        // Trip 4 would double to 800ms but the cap holds it at 400ms.
        assert!(b.allow(ms(700)));
        b.on_failure(ms(700));
        assert_eq!(b.current_cooldown(), ms(400));
        assert_eq!(b.snapshot().times_opened, 4);

        // A successful probe resets the schedule to the base cooldown.
        assert!(b.allow(ms(1100)));
        b.on_success(ms(1100));
        b.on_failure(ms(1101));
        b.on_failure(ms(1101));
        assert_eq!(b.current_cooldown(), ms(100));
    }

    #[test]
    fn scripted_sequence_is_deterministic() {
        // The same scripted failure/clock sequence yields the same
        // decisions, twice.
        let run = || {
            let mut b = BreakerCore::new(config());
            let script: [(u64, bool); 7] = [
                (0, false),
                (1, false),
                (120, true), // probe fails
                (200, false),
                (330, true), // 2nd probe (cooldown 200ms) fails
                (900, true),
                (901, false),
            ];
            let mut decisions = Vec::new();
            for (t, _expect_probe) in script {
                let allowed = b.allow(ms(t));
                decisions.push((t, allowed, b.state()));
                if allowed {
                    b.on_failure(ms(t));
                }
            }
            decisions
        };
        assert_eq!(run(), run());
    }

    /// Scripted inner transport for breaker-through-the-trait tests.
    struct Scripted {
        outcomes: std::collections::VecDeque<bool>,
        calls: usize,
    }

    impl FetchTransport for Scripted {
        fn configure(&mut self, _: u64, _: PipelineSpec) -> Result<(), ClientError> {
            Ok(())
        }

        fn fetch_many_requests(
            &mut self,
            requests: &[FetchRequest],
        ) -> Result<Vec<FetchResponse>, ClientError> {
            self.calls += 1;
            if self.outcomes.pop_front().unwrap_or(true) {
                Ok(requests
                    .iter()
                    .map(|r| FetchResponse {
                        sample_id: r.sample_id,
                        ops_applied: 0,
                        data: StageData::Encoded(Bytes::from_static(b"ok")),
                        tier: None,
                    })
                    .collect())
            } else {
                Err(ClientError::Server { sample_id: None, message: "boom".into() })
            }
        }
    }

    #[test]
    fn transport_fails_fast_while_open_without_calling_inner() {
        let inner = Scripted { outcomes: vec![false, false].into(), calls: 0 };
        let cfg = BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(60),
            cooldown_cap: Duration::from_secs(60),
        };
        let mut t = HealthTrackingTransport::new(inner, cfg);
        let handle = t.handle();
        let reqs = vec![FetchRequest::new(1, 0, SplitPoint::NONE)];
        assert!(t.fetch_many_requests(&reqs).is_err());
        assert!(!handle.is_degraded());
        assert!(t.fetch_many_requests(&reqs).is_err());
        assert!(handle.is_degraded());
        assert_eq!(handle.snapshot().state, BreakerState::Open);
        // Open: fail-fast, inner untouched.
        assert!(matches!(t.fetch_many_requests(&reqs), Err(ClientError::CircuitOpen)));
        assert_eq!(t.inner().calls, 2);
    }

    #[test]
    fn transport_recovers_after_cooldown_via_probe() {
        let inner = Scripted { outcomes: vec![false, false, true].into(), calls: 0 };
        let cfg = BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(5),
            cooldown_cap: Duration::from_millis(5),
        };
        let mut t = HealthTrackingTransport::new(inner, cfg);
        let handle = t.handle();
        let reqs = vec![FetchRequest::new(1, 0, SplitPoint::NONE)];
        assert!(t.fetch_many_requests(&reqs).is_err());
        assert!(t.fetch_many_requests(&reqs).is_err());
        assert!(handle.is_degraded());
        std::thread::sleep(Duration::from_millis(10));
        // Cooldown elapsed: the probe goes through and closes the breaker.
        assert!(t.fetch_many_requests(&reqs).is_ok());
        assert!(!handle.is_degraded());
        assert_eq!(handle.snapshot().state, BreakerState::Closed);
    }

    #[test]
    fn works_under_the_loader_trait_bound() {
        fn assert_transport<X: FetchTransport>() {}
        assert_transport::<HealthTrackingTransport<crate::TcpStorageClient>>();
        assert_transport::<
            crate::RetryingTransport<HealthTrackingTransport<crate::TcpStorageClient>>,
        >();
    }
}
