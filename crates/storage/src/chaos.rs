//! Deterministic fault injection for the storage data path.
//!
//! A [`FaultPlan`] is a seeded schedule deciding, for every
//! `(sample, epoch, attempt)` fetch, whether to inject a fault and which
//! kind: drop the response, delay it, truncate its frame, flip a bit, or
//! replace it with a server error. Decisions are a pure SplitMix64 hash of
//! the key — the same discipline [`BackoffConfig`](crate::BackoffConfig)
//! uses for jitter — so two runs with the same seed inject the *identical*
//! fault sequence, and a chaos failure found in CI reproduces locally from
//! nothing but the seed.
//!
//! The plan drives two injectors:
//!
//! * [`FaultInjectingTransport`] — a client-side [`FetchTransport`]
//!   decorator that perturbs batches before/after they reach the inner
//!   transport. Corruption faults round-trip the real response through the
//!   [`wire`] encoder, mutate the encoded bytes, and feed them back through
//!   the real decoder, so the production CRC path is what detects them.
//! * [`ServerFaultInjector`] — shared state a
//!   [`TcpStorageServer`](crate::TcpStorageServer) consults per fetch; the
//!   connection writer then drops, delays, truncates, or bit-flips the
//!   already-encoded response frame on the wire itself.
//!
//! Every plan stops injecting once a key's attempt count reaches
//! [`FaultPlan::fault_attempts`], so a bounded retry budget always
//! converges: chaos perturbs the path, it never makes progress impossible.

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

use parking_lot::Mutex;
use pipeline::PipelineSpec;

use crate::protocol::Response;
use crate::wire;
use crate::{ClientError, FetchRequest, FetchResponse, FetchTransport};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The response is never delivered; the client's deadline fires.
    Drop,
    /// The response is delivered late by the embedded duration.
    Delay(Duration),
    /// The encoded response frame loses its tail bytes.
    Truncate,
    /// One bit of the encoded response frame is flipped.
    BitFlip,
    /// The response is replaced by a server-side error.
    Error,
}

impl FaultKind {
    /// Short label for logs.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay(_) => "delay",
            FaultKind::Truncate => "truncate",
            FaultKind::BitFlip => "bit-flip",
            FaultKind::Error => "error",
        }
    }
}

/// A fault decision plus the deterministic salt that parameterizes it
/// (which byte to cut, which bit to flip).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDirective {
    /// What to do to the response.
    pub kind: FaultKind,
    /// Seeded randomness for the fault's parameters.
    pub salt: u64,
}

/// One injected fault, as recorded by an injector's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultRecord {
    /// Node the injector belongs to (0 for a lone transport).
    pub node: usize,
    /// The faulted sample.
    pub sample_id: u64,
    /// The faulted epoch.
    pub epoch: u64,
    /// 0-based attempt index for this `(sample, epoch)` key.
    pub attempt: u32,
    /// Short label of the injected fault kind.
    pub kind: &'static str,
}

/// A stateless SplitMix64 scramble (same constants as
/// [`BackoffConfig`](crate::BackoffConfig)'s jitter stream).
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash of a full fault key.
fn mix_key(seed: u64, sample: u64, epoch: u64, attempt: u32) -> u64 {
    mix(mix(mix(mix(seed) ^ sample) ^ epoch) ^ u64::from(attempt))
}

/// Maps a hash onto the unit interval.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A seeded, deterministic fault schedule over `(sample, epoch, attempt)`
/// keys.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    drop_rate: f64,
    delay_rate: f64,
    delay: Duration,
    truncate_rate: f64,
    bit_flip_rate: f64,
    error_rate: f64,
    fault_attempts: u32,
    scripted: BTreeMap<(u64, u64, u32), FaultKind>,
}

impl FaultPlan {
    /// A plan that injects nothing (rates all zero); add faults with the
    /// builder methods or [`FaultPlan::script`].
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::from_millis(2),
            truncate_rate: 0.0,
            bit_flip_rate: 0.0,
            error_rate: 0.0,
            fault_attempts: 1,
            scripted: BTreeMap::new(),
        }
    }

    /// The aggressive chaos preset: every fault kind at a rate that makes
    /// multi-fault batches routine, injecting on the first two attempts of
    /// each key.
    pub fn aggressive(seed: u64) -> FaultPlan {
        FaultPlan::quiet(seed)
            .with_drops(0.04)
            .with_delays(0.10, Duration::from_millis(2))
            .with_truncations(0.05)
            .with_bit_flips(0.05)
            .with_errors(0.05)
            .with_fault_attempts(2)
    }

    /// Sets the response-drop rate.
    pub fn with_drops(mut self, rate: f64) -> FaultPlan {
        self.drop_rate = rate;
        self
    }

    /// Sets the delay rate and per-fault delay.
    pub fn with_delays(mut self, rate: f64, delay: Duration) -> FaultPlan {
        self.delay_rate = rate;
        self.delay = delay;
        self
    }

    /// Sets the frame-truncation rate.
    pub fn with_truncations(mut self, rate: f64) -> FaultPlan {
        self.truncate_rate = rate;
        self
    }

    /// Sets the bit-flip rate.
    pub fn with_bit_flips(mut self, rate: f64) -> FaultPlan {
        self.bit_flip_rate = rate;
        self
    }

    /// Sets the injected-server-error rate.
    pub fn with_errors(mut self, rate: f64) -> FaultPlan {
        self.error_rate = rate;
        self
    }

    /// Random faults only strike while a key's attempt index is below
    /// `n` — the convergence guarantee for bounded retry budgets.
    /// Scripted faults are exempt.
    pub fn with_fault_attempts(mut self, n: u32) -> FaultPlan {
        self.fault_attempts = n;
        self
    }

    /// Forces a specific fault for one exact `(sample, epoch, attempt)`
    /// key, overriding the random schedule.
    pub fn script(mut self, sample: u64, epoch: u64, attempt: u32, kind: FaultKind) -> FaultPlan {
        self.scripted.insert((sample, epoch, attempt), kind);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The same schedule parameters under a different seed (used to derive
    /// per-node plans from one fleet seed).
    pub fn reseeded(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Attempt index at/after which random faults stop firing.
    pub fn fault_attempts(&self) -> u32 {
        self.fault_attempts
    }

    /// The fault (if any) for one `(sample, epoch, attempt)` fetch — a pure
    /// function of the plan.
    pub fn fault_for(&self, sample: u64, epoch: u64, attempt: u32) -> Option<FaultDirective> {
        let h = mix_key(self.seed, sample, epoch, attempt);
        let salt = mix(h);
        if let Some(&kind) = self.scripted.get(&(sample, epoch, attempt)) {
            return Some(FaultDirective { kind, salt });
        }
        if attempt >= self.fault_attempts {
            return None;
        }
        let u = unit(h);
        let mut edge = self.drop_rate;
        if u < edge {
            return Some(FaultDirective { kind: FaultKind::Drop, salt });
        }
        edge += self.delay_rate;
        if u < edge {
            return Some(FaultDirective { kind: FaultKind::Delay(self.delay), salt });
        }
        edge += self.truncate_rate;
        if u < edge {
            return Some(FaultDirective { kind: FaultKind::Truncate, salt });
        }
        edge += self.bit_flip_rate;
        if u < edge {
            return Some(FaultDirective { kind: FaultKind::BitFlip, salt });
        }
        edge += self.error_rate;
        if u < edge {
            return Some(FaultDirective { kind: FaultKind::Error, salt });
        }
        None
    }
}

/// Removes 1–16 tail bytes from an encoded frame (salt-directed).
pub fn truncate_payload(payload: &mut Vec<u8>, salt: u64) {
    if payload.is_empty() {
        return;
    }
    let cut = 1 + (salt as usize) % payload.len().min(16);
    payload.truncate(payload.len().saturating_sub(cut));
}

/// Flips one bit of an encoded frame (salt-directed).
pub fn flip_bit(payload: &mut [u8], salt: u64) {
    if payload.is_empty() {
        return;
    }
    let idx = (salt as usize) % payload.len();
    let bit = ((salt >> 32) % 8) as u8;
    payload[idx] ^= 1 << bit;
}

/// Shared per-node injector a TCP server consults for every fetch.
///
/// Tracks attempt counts per `(sample, epoch)` key (each generated
/// response bumps the key) and records every injected fault, so a chaos
/// run can assert the exact fault sequence afterwards.
#[derive(Debug)]
pub struct ServerFaultInjector {
    node: usize,
    plan: FaultPlan,
    attempts: Mutex<HashMap<(u64, u64), u32>>,
    log: Mutex<Vec<FaultRecord>>,
}

impl ServerFaultInjector {
    /// An injector for `node` driven by `plan`.
    pub fn new(node: usize, plan: FaultPlan) -> ServerFaultInjector {
        ServerFaultInjector {
            node,
            plan,
            attempts: Mutex::new(HashMap::new()),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Decides the fault for the next response to `(sample, epoch)`,
    /// bumping the key's attempt counter and logging any hit.
    pub fn decide(&self, sample: u64, epoch: u64) -> Option<FaultDirective> {
        let attempt = {
            let mut attempts = self.attempts.lock();
            let slot = attempts.entry((sample, epoch)).or_insert(0);
            let current = *slot;
            *slot += 1;
            current
        };
        let directive = self.plan.fault_for(sample, epoch, attempt);
        if let Some(d) = directive {
            self.log.lock().push(FaultRecord {
                node: self.node,
                sample_id: sample,
                epoch,
                attempt,
                kind: d.kind.name(),
            });
        }
        directive
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> usize {
        self.log.lock().len()
    }

    /// The fault log, sorted by `(sample, epoch, attempt)` so logs from
    /// different runs compare independent of worker-thread interleaving.
    pub fn log(&self) -> Vec<FaultRecord> {
        let mut log = self.log.lock().clone();
        log.sort_unstable();
        log
    }
}

/// A client-side [`FetchTransport`] decorator injecting faults from a
/// [`FaultPlan`].
///
/// Per batch call, every request's `(sample, epoch)` attempt counter is
/// bumped and the first faulted request (in batch order) decides the
/// batch's fate — one injected fault per call keeps attempt accounting
/// deterministic. Corruption faults are applied to the *encoded* response
/// and pushed through the real wire decoder, so what the caller observes
/// is exactly what the CRC layer produces.
#[derive(Debug)]
pub struct FaultInjectingTransport<T> {
    inner: T,
    node: usize,
    plan: FaultPlan,
    attempts: HashMap<(u64, u64), u32>,
    log: Vec<FaultRecord>,
}

impl<T: FetchTransport> FaultInjectingTransport<T> {
    /// Wraps `inner` with faults drawn from `plan` (node label 0).
    pub fn new(inner: T, plan: FaultPlan) -> FaultInjectingTransport<T> {
        Self::for_node(inner, 0, plan)
    }

    /// Wraps `inner`, labelling log records with `node`.
    pub fn for_node(inner: T, node: usize, plan: FaultPlan) -> FaultInjectingTransport<T> {
        FaultInjectingTransport { inner, node, plan, attempts: HashMap::new(), log: Vec::new() }
    }

    /// Faults injected so far, in injection order.
    pub fn log(&self) -> &[FaultRecord] {
        &self.log
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> usize {
        self.log.len()
    }

    /// A reference to the wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Corrupts the target response via a wire round-trip and returns the
    /// decoder's verdict as the batch error.
    fn corrupt_and_decode(
        resp: &FetchResponse,
        kind: FaultKind,
        salt: u64,
    ) -> Result<Vec<FetchResponse>, ClientError> {
        let mut bytes = wire::encode_response(&Response::Data(resp.clone())).to_vec();
        match kind {
            FaultKind::Truncate => truncate_payload(&mut bytes, salt),
            _ => flip_bit(&mut bytes, salt),
        }
        match wire::decode_response(&bytes) {
            Err(e) => Err(ClientError::from(e)),
            // CRC32 catches every ≤32-bit burst, so this arm is
            // unreachable for single flips; stay total anyway.
            Ok(_) => Err(ClientError::Corrupted),
        }
    }
}

impl<T: FetchTransport> FetchTransport for FaultInjectingTransport<T> {
    fn configure(&mut self, dataset_seed: u64, pipeline: PipelineSpec) -> Result<(), ClientError> {
        self.inner.configure(dataset_seed, pipeline)
    }

    fn fetch_many_requests(
        &mut self,
        requests: &[FetchRequest],
    ) -> Result<Vec<FetchResponse>, ClientError> {
        let mut fault: Option<(u64, FaultDirective)> = None;
        for req in requests {
            let slot = self.attempts.entry((req.sample_id, req.epoch)).or_insert(0);
            let attempt = *slot;
            *slot += 1;
            if fault.is_none() {
                if let Some(d) = self.plan.fault_for(req.sample_id, req.epoch, attempt) {
                    self.log.push(FaultRecord {
                        node: self.node,
                        sample_id: req.sample_id,
                        epoch: req.epoch,
                        attempt,
                        kind: d.kind.name(),
                    });
                    fault = Some((req.sample_id, d));
                }
            }
        }
        match fault {
            None => self.inner.fetch_many_requests(requests),
            Some((_, FaultDirective { kind: FaultKind::Drop, .. })) => {
                Err(ClientError::DeadlineExceeded)
            }
            Some((_, FaultDirective { kind: FaultKind::Delay(d), .. })) => {
                std::thread::sleep(d);
                self.inner.fetch_many_requests(requests)
            }
            Some((sample_id, FaultDirective { kind: FaultKind::Error, .. })) => {
                Err(ClientError::Server {
                    sample_id: Some(sample_id),
                    message: "injected storage fault".into(),
                })
            }
            Some((sample_id, FaultDirective { kind, salt })) => {
                let out = self.inner.fetch_many_requests(requests)?;
                match out.iter().find(|r| r.sample_id == sample_id) {
                    Some(resp) => Self::corrupt_and_decode(resp, kind, salt),
                    None => Ok(out),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use pipeline::{SplitPoint, StageData};

    /// Always succeeds, returning a fixed payload per request.
    struct Perfect {
        calls: usize,
    }

    impl FetchTransport for Perfect {
        fn configure(&mut self, _: u64, _: PipelineSpec) -> Result<(), ClientError> {
            Ok(())
        }

        fn fetch_many_requests(
            &mut self,
            requests: &[FetchRequest],
        ) -> Result<Vec<FetchResponse>, ClientError> {
            self.calls += 1;
            Ok(requests
                .iter()
                .map(|r| FetchResponse {
                    sample_id: r.sample_id,
                    ops_applied: 0,
                    data: StageData::Encoded(Bytes::from_static(b"sample payload bytes")),
                    tier: None,
                })
                .collect())
        }
    }

    fn reqs(ids: &[u64]) -> Vec<FetchRequest> {
        ids.iter().map(|&id| FetchRequest::new(id, 0, SplitPoint::NONE)).collect()
    }

    #[test]
    fn fault_schedule_is_a_pure_function_of_the_seed() {
        let a = FaultPlan::aggressive(7);
        let b = FaultPlan::aggressive(7);
        let c = FaultPlan::aggressive(8);
        let key_faults = |p: &FaultPlan| -> Vec<Option<&'static str>> {
            (0..200u64).map(|s| p.fault_for(s, 1, 0).map(|d| d.kind.name())).collect()
        };
        assert_eq!(key_faults(&a), key_faults(&b), "same seed, same schedule");
        assert_ne!(key_faults(&a), key_faults(&c), "different seed, different schedule");
        // The aggressive preset actually fires at these rates over 200 keys.
        assert!(key_faults(&a).iter().flatten().count() > 20);
    }

    #[test]
    fn faults_stop_after_the_attempt_bound() {
        let plan = FaultPlan::aggressive(11);
        for sample in 0..100u64 {
            for attempt in plan.fault_attempts()..plan.fault_attempts() + 4 {
                assert_eq!(plan.fault_for(sample, 0, attempt), None, "attempt {attempt} faulted");
            }
        }
    }

    #[test]
    fn scripted_faults_override_the_schedule() {
        let plan = FaultPlan::quiet(3).script(9, 2, 1, FaultKind::BitFlip);
        assert_eq!(plan.fault_for(9, 2, 1).map(|d| d.kind), Some(FaultKind::BitFlip));
        assert_eq!(plan.fault_for(9, 2, 0), None);
        assert_eq!(plan.fault_for(8, 2, 1), None);
    }

    #[test]
    fn drop_fault_surfaces_as_deadline_exceeded_then_clears() {
        let plan = FaultPlan::quiet(5).script(1, 0, 0, FaultKind::Drop);
        let mut t = FaultInjectingTransport::new(Perfect { calls: 0 }, plan);
        assert!(matches!(t.fetch_many_requests(&reqs(&[1])), Err(ClientError::DeadlineExceeded)));
        // Attempt 1 is clean: the retry converges.
        assert_eq!(t.fetch_many_requests(&reqs(&[1])).unwrap().len(), 1);
        assert_eq!(t.injected(), 1);
        assert_eq!(t.log()[0].kind, "drop");
    }

    #[test]
    fn corruption_faults_are_detected_by_the_real_decoder() {
        for kind in [FaultKind::Truncate, FaultKind::BitFlip] {
            let plan = FaultPlan::quiet(5).script(2, 0, 0, kind);
            let mut t = FaultInjectingTransport::new(Perfect { calls: 0 }, plan);
            let err = t.fetch_many_requests(&reqs(&[2])).unwrap_err();
            assert!(
                matches!(err, ClientError::Corrupted | ClientError::Wire(_)),
                "{kind:?} surfaced as {err:?}"
            );
            assert_eq!(t.fetch_many_requests(&reqs(&[2])).unwrap().len(), 1);
        }
    }

    #[test]
    fn error_fault_names_the_sample() {
        let plan = FaultPlan::quiet(5).script(3, 0, 0, FaultKind::Error);
        let mut t = FaultInjectingTransport::new(Perfect { calls: 0 }, plan);
        match t.fetch_many_requests(&reqs(&[3])).unwrap_err() {
            ClientError::Server { sample_id, .. } => assert_eq!(sample_id, Some(3)),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn one_fault_per_batch_and_attempts_advance_together() {
        // Both samples scripted to fault on attempt 0; only the first in
        // batch order fires, but both attempt counters advance.
        let plan =
            FaultPlan::quiet(5).script(1, 0, 0, FaultKind::Error).script(2, 0, 0, FaultKind::Error);
        let mut t = FaultInjectingTransport::new(Perfect { calls: 0 }, plan);
        assert!(t.fetch_many_requests(&reqs(&[1, 2])).is_err());
        assert_eq!(t.injected(), 1);
        // Attempt 1 for both keys: clean.
        assert_eq!(t.fetch_many_requests(&reqs(&[1, 2])).unwrap().len(), 2);
    }

    #[test]
    fn server_injector_counts_attempts_and_logs_sorted() {
        let plan =
            FaultPlan::quiet(5).script(4, 0, 0, FaultKind::Drop).script(1, 0, 1, FaultKind::Error);
        let inj = ServerFaultInjector::new(2, plan);
        assert_eq!(inj.decide(4, 0).map(|d| d.kind), Some(FaultKind::Drop));
        assert_eq!(inj.decide(1, 0), None); // attempt 0: clean
        assert_eq!(inj.decide(1, 0).map(|d| d.kind), Some(FaultKind::Error));
        assert_eq!(inj.decide(4, 0), None); // attempt 1: clean
        let log = inj.log();
        assert_eq!(log.len(), 2);
        assert_eq!((log[0].sample_id, log[0].attempt, log[0].node), (1, 1, 2));
        assert_eq!((log[1].sample_id, log[1].attempt), (4, 0));
    }

    #[test]
    fn corruption_helpers_always_mutate() {
        let mut frame = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        let original = frame.clone();
        flip_bit(&mut frame, 0xdead_beef_cafe_f00d);
        assert_ne!(frame, original);
        let mut frame = original.clone();
        truncate_payload(&mut frame, 0x1234_5678);
        assert!(frame.len() < original.len());
    }
}
