//! Typed protocol messages between the compute node and the storage server.
//!
//! The key novelty relative to a plain object-fetch protocol is that a
//! [`FetchRequest`] carries an **offload directive** — the [`SplitPoint`]
//! naming how many pipeline operations the storage node should apply before
//! responding (paper Figure 2, step d).

use pipeline::{PipelineSpec, SplitPoint, StageData};

/// Session-level configuration sent once before fetching.
///
/// Carrying the pipeline and dataset seed up front lets each fetch request
/// stay a dozen bytes, and guarantees both nodes derive identical
/// augmentation streams.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Dataset seed (keys the augmentation streams).
    pub dataset_seed: u64,
    /// The preprocessing pipeline this training job runs.
    pub pipeline: PipelineSpec,
}

/// A request for one sample, with its offload directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchRequest {
    /// Sample to fetch.
    pub sample_id: u64,
    /// Current training epoch (augmentations vary per epoch).
    pub epoch: u64,
    /// How many leading pipeline operations to execute near storage.
    pub split: SplitPoint,
    /// When set and the offloaded prefix produces a raster image, the
    /// server re-encodes it at this quality before transfer (the selective
    /// compression extension); the client transparently decodes.
    pub reencode_quality: Option<u8>,
    /// Fidelity cap for brownout serving: when set and the stored object is
    /// a tiered SJPG stream served raw, the server truncates it at this
    /// tier's boundary instead of shipping the full encoding. `None` means
    /// full fidelity. The cap is advisory — classic (non-tiered) objects
    /// are served whole.
    pub max_tier: Option<u8>,
}

impl FetchRequest {
    /// A plain fetch with an offload directive and no re-compression.
    pub fn new(sample_id: u64, epoch: u64, split: SplitPoint) -> FetchRequest {
        FetchRequest { sample_id, epoch, split, reencode_quality: None, max_tier: None }
    }

    /// Adds transfer-time re-compression at `quality`.
    #[must_use]
    pub fn with_reencode(mut self, quality: u8) -> FetchRequest {
        self.reencode_quality = Some(quality);
        self
    }

    /// Caps the served fidelity at `tier` (brownout serving).
    #[must_use]
    pub fn with_max_tier(mut self, tier: u8) -> FetchRequest {
        self.max_tier = Some(tier);
        self
    }
}

/// Messages from client to server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Establish the session pipeline.
    Configure(SessionConfig),
    /// Fetch one sample.
    Fetch(FetchRequest),
    /// Ask the server to stop after draining queued work.
    Shutdown,
}

/// A successful fetch result.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchResponse {
    /// The sample this data belongs to.
    pub sample_id: u64,
    /// Number of pipeline operations the server applied.
    pub ops_applied: u32,
    /// The (possibly partially preprocessed) payload.
    pub data: StageData,
    /// The fidelity tier the payload was truncated to, when the server
    /// browned out this sample; `None` means the full encoding was served.
    /// Carried on the wire under the CRC trailer since wire version 4.
    pub tier: Option<u8>,
}

impl FetchResponse {
    /// Recovers the stage value the compute node should continue from,
    /// transparently decoding a re-compressed payload: a response whose
    /// `ops_applied > 0` but whose payload is encoded bytes was
    /// re-compressed by the server (selective compression) and must be
    /// decoded back to a raster before the pipeline suffix runs.
    ///
    /// # Errors
    ///
    /// Propagates codec failures for corrupt re-compressed payloads.
    pub fn unpack(self) -> Result<StageData, codec::CodecError> {
        match (&self.data, self.ops_applied) {
            (StageData::Encoded(bytes), n) if n > 0 => Ok(StageData::Image(codec::decode(bytes)?)),
            _ => Ok(self.data),
        }
    }
}

/// Messages from server to client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session configured.
    Configured,
    /// Fetched data.
    Data(FetchResponse),
    /// A request failed; `sample_id` is `None` for session-level failures.
    Error {
        /// The failing sample, when the error is per-sample.
        sample_id: Option<u64>,
        /// Human-readable description.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_request_is_small_and_copyable() {
        let r = FetchRequest::new(1, 2, SplitPoint::new(3));
        let r2 = r; // Copy
        assert_eq!(r, r2);
        assert!(std::mem::size_of::<FetchRequest>() <= 32);
        assert_eq!(r.with_reencode(70).reencode_quality, Some(70));
    }

    #[test]
    fn session_config_carries_pipeline() {
        let c = SessionConfig { dataset_seed: 5, pipeline: PipelineSpec::standard_train() };
        assert_eq!(c.pipeline.len(), 5);
    }
}
