//! Retry decorator for fetch transports.
//!
//! Storage services hiccup: a worker restarts, a connection drops a
//! response, a transient overload sheds a request. [`RetryingTransport`]
//! wraps any [`FetchTransport`] and retries failed batch fetches a bounded
//! number of times. Because fetches are read-only and near-storage
//! execution is deterministic per `(sample, epoch, split)`, retries are
//! idempotent by construction.

use pipeline::PipelineSpec;

use crate::{ClientError, FetchRequest, FetchResponse, FetchTransport};

/// A [`FetchTransport`] that retries failed fetch batches.
#[derive(Debug)]
pub struct RetryingTransport<T> {
    inner: T,
    max_retries: u32,
    retries_used: u64,
}

impl<T: FetchTransport> RetryingTransport<T> {
    /// Wraps `inner`, allowing up to `max_retries` re-attempts per batch.
    pub fn new(inner: T, max_retries: u32) -> RetryingTransport<T> {
        RetryingTransport { inner, max_retries, retries_used: 0 }
    }

    /// Total retries performed so far (observability).
    pub fn retries_used(&self) -> u64 {
        self.retries_used
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: FetchTransport> FetchTransport for RetryingTransport<T> {
    fn configure(
        &mut self,
        dataset_seed: u64,
        pipeline: PipelineSpec,
    ) -> Result<(), ClientError> {
        self.inner.configure(dataset_seed, pipeline)
    }

    fn fetch_many_requests(
        &mut self,
        requests: &[FetchRequest],
    ) -> Result<Vec<FetchResponse>, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.inner.fetch_many_requests(requests) {
                Ok(r) => return Ok(r),
                // A hung-up transport cannot recover by resending.
                Err(ClientError::Disconnected) => return Err(ClientError::Disconnected),
                Err(e) => {
                    if attempt >= self.max_retries {
                        return Err(e);
                    }
                    attempt += 1;
                    self.retries_used += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::SplitPoint;
    use pipeline::StageData;

    /// A scripted transport: each `fetch_many_requests` call pops the next
    /// outcome.
    struct Scripted {
        outcomes: std::collections::VecDeque<Result<(), ClientError>>,
        calls: usize,
    }

    impl Scripted {
        fn new(outcomes: Vec<Result<(), ClientError>>) -> Scripted {
            Scripted { outcomes: outcomes.into(), calls: 0 }
        }
    }

    impl FetchTransport for Scripted {
        fn configure(&mut self, _: u64, _: PipelineSpec) -> Result<(), ClientError> {
            Ok(())
        }

        fn fetch_many_requests(
            &mut self,
            requests: &[FetchRequest],
        ) -> Result<Vec<FetchResponse>, ClientError> {
            self.calls += 1;
            match self.outcomes.pop_front().expect("script exhausted") {
                Ok(()) => Ok(requests
                    .iter()
                    .map(|r| FetchResponse {
                        sample_id: r.sample_id,
                        ops_applied: 0,
                        data: StageData::Encoded(bytes::Bytes::from_static(b"payload")),
                    })
                    .collect()),
                Err(e) => Err(e),
            }
        }
    }

    fn server_err() -> ClientError {
        ClientError::Server { sample_id: Some(1), message: "transient".into() }
    }

    fn reqs() -> Vec<FetchRequest> {
        vec![FetchRequest::new(1, 0, SplitPoint::NONE)]
    }

    #[test]
    fn transient_failures_are_retried() {
        let scripted = Scripted::new(vec![Err(server_err()), Err(server_err()), Ok(())]);
        let mut t = RetryingTransport::new(scripted, 3);
        let out = t.fetch_many_requests(&reqs()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(t.retries_used(), 2);
        assert_eq!(t.into_inner().calls, 3);
    }

    #[test]
    fn retry_budget_is_respected() {
        let scripted = Scripted::new(vec![Err(server_err()), Err(server_err())]);
        let mut t = RetryingTransport::new(scripted, 1);
        assert!(t.fetch_many_requests(&reqs()).is_err());
        assert_eq!(t.retries_used(), 1);
    }

    #[test]
    fn disconnection_is_not_retried() {
        let scripted = Scripted::new(vec![Err(ClientError::Disconnected)]);
        let mut t = RetryingTransport::new(scripted, 5);
        assert!(matches!(
            t.fetch_many_requests(&reqs()),
            Err(ClientError::Disconnected)
        ));
        assert_eq!(t.retries_used(), 0);
    }

    #[test]
    fn zero_budget_means_single_attempt() {
        let scripted = Scripted::new(vec![Err(server_err())]);
        let mut t = RetryingTransport::new(scripted, 0);
        assert!(t.fetch_many_requests(&reqs()).is_err());
        assert_eq!(t.into_inner().calls, 1);
    }

    #[test]
    fn works_under_the_loader_trait_bound() {
        // Compile-time check: RetryingTransport<T> is itself a transport.
        fn assert_transport<X: FetchTransport>() {}
        assert_transport::<RetryingTransport<crate::StorageClient>>();
        assert_transport::<RetryingTransport<crate::TcpStorageClient>>();
    }
}
