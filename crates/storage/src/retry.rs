//! Retry decorator for fetch transports.
//!
//! Storage services hiccup: a worker restarts, a connection drops a
//! response, a transient overload sheds a request. [`RetryingTransport`]
//! wraps any [`FetchTransport`] and retries failed batch fetches a bounded
//! number of times. Because fetches are read-only and near-storage
//! execution is deterministic per `(sample, epoch, split)`, retries are
//! idempotent by construction.
//!
//! Re-attempts back off exponentially with deterministic, seedable jitter
//! ([`BackoffConfig`]) rather than hammering a struggling server in a hot
//! loop: attempt `k` sleeps `base × 2^k`, jittered by up to half of
//! itself, capped per attempt. The jitter stream is a plain
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) step keyed by the
//! configured seed, so two identically-seeded transports sleep identical
//! schedules — failure reproductions stay deterministic end to end.

use std::time::Duration;

use pipeline::PipelineSpec;

use crate::{ClientError, FetchRequest, FetchResponse, FetchTransport};

/// Backoff schedule for [`RetryingTransport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Delay before the first re-attempt; doubles each retry.
    pub base: Duration,
    /// Hard ceiling for any single attempt's delay (after jitter).
    pub cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl BackoffConfig {
    /// Production defaults: 50 ms base, 2 s per-attempt cap.
    pub fn new(seed: u64) -> BackoffConfig {
        BackoffConfig { base: Duration::from_millis(50), cap: Duration::from_secs(2), seed }
    }

    /// No sleeping at all — the pre-backoff behaviour; also what tests
    /// use to stay fast.
    pub fn none() -> BackoffConfig {
        BackoffConfig { base: Duration::ZERO, cap: Duration::ZERO, seed: 0 }
    }

    /// Delay for re-attempt `attempt` (0-based), advancing `jitter_state`.
    fn delay(&self, attempt: u32, jitter_state: &mut u64) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let exp = self.base.saturating_mul(1u32 << attempt.min(16));
        // Jitter in [0, exp/2): spreads identically-failing clients apart
        // while keeping the schedule a pure function of the seed.
        let half = exp / 2;
        let jitter = if half.is_zero() {
            Duration::ZERO
        } else {
            // SplitMix64 step.
            *jitter_state = jitter_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *jitter_state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            Duration::from_nanos(z % half.as_nanos().max(1) as u64)
        };
        (exp + jitter).min(self.cap)
    }
}

/// A [`FetchTransport`] that retries failed fetch batches with
/// exponential backoff.
#[derive(Debug)]
pub struct RetryingTransport<T> {
    inner: T,
    max_retries: u32,
    backoff: BackoffConfig,
    jitter_state: u64,
    retries_used: u64,
    backoff_waited: Duration,
}

impl<T: FetchTransport> RetryingTransport<T> {
    /// Wraps `inner`, allowing up to `max_retries` re-attempts per batch
    /// with the default backoff schedule (seeded from `max_retries` for
    /// determinism; use [`RetryingTransport::with_backoff`] to choose).
    pub fn new(inner: T, max_retries: u32) -> RetryingTransport<T> {
        Self::with_backoff(inner, max_retries, BackoffConfig::new(u64::from(max_retries)))
    }

    /// Wraps `inner` with an explicit backoff schedule.
    pub fn with_backoff(
        inner: T,
        max_retries: u32,
        backoff: BackoffConfig,
    ) -> RetryingTransport<T> {
        RetryingTransport {
            inner,
            max_retries,
            backoff,
            jitter_state: backoff.seed,
            retries_used: 0,
            backoff_waited: Duration::ZERO,
        }
    }

    /// Total retries performed so far (observability).
    pub fn retries_used(&self) -> u64 {
        self.retries_used
    }

    /// Total time spent sleeping between attempts (observability).
    pub fn backoff_waited(&self) -> Duration {
        self.backoff_waited
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: FetchTransport> FetchTransport for RetryingTransport<T> {
    fn configure(&mut self, dataset_seed: u64, pipeline: PipelineSpec) -> Result<(), ClientError> {
        self.inner.configure(dataset_seed, pipeline)
    }

    fn fetch_many_requests(
        &mut self,
        requests: &[FetchRequest],
    ) -> Result<Vec<FetchResponse>, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.inner.fetch_many_requests(requests) {
                Ok(r) => return Ok(r),
                // A hung-up transport cannot recover by resending.
                Err(ClientError::Disconnected) => return Err(ClientError::Disconnected),
                Err(e) => {
                    if attempt >= self.max_retries {
                        return Err(e);
                    }
                    let delay = self.backoff.delay(attempt, &mut self.jitter_state);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                        self.backoff_waited += delay;
                    }
                    attempt += 1;
                    self.retries_used += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::SplitPoint;
    use pipeline::StageData;

    /// A scripted transport: each `fetch_many_requests` call pops the next
    /// outcome.
    struct Scripted {
        outcomes: std::collections::VecDeque<Result<(), ClientError>>,
        calls: usize,
    }

    impl Scripted {
        fn new(outcomes: Vec<Result<(), ClientError>>) -> Scripted {
            Scripted { outcomes: outcomes.into(), calls: 0 }
        }
    }

    impl FetchTransport for Scripted {
        fn configure(&mut self, _: u64, _: PipelineSpec) -> Result<(), ClientError> {
            Ok(())
        }

        fn fetch_many_requests(
            &mut self,
            requests: &[FetchRequest],
        ) -> Result<Vec<FetchResponse>, ClientError> {
            self.calls += 1;
            match self.outcomes.pop_front().expect("script exhausted") {
                Ok(()) => Ok(requests
                    .iter()
                    .map(|r| FetchResponse {
                        sample_id: r.sample_id,
                        ops_applied: 0,
                        data: StageData::Encoded(bytes::Bytes::from_static(b"payload")),
                        tier: None,
                    })
                    .collect()),
                Err(e) => Err(e),
            }
        }
    }

    fn server_err() -> ClientError {
        ClientError::Server { sample_id: Some(1), message: "transient".into() }
    }

    fn reqs() -> Vec<FetchRequest> {
        vec![FetchRequest::new(1, 0, SplitPoint::NONE)]
    }

    #[test]
    fn transient_failures_are_retried() {
        let scripted = Scripted::new(vec![Err(server_err()), Err(server_err()), Ok(())]);
        let mut t = RetryingTransport::new(scripted, 3);
        let out = t.fetch_many_requests(&reqs()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(t.retries_used(), 2);
        assert_eq!(t.into_inner().calls, 3);
    }

    #[test]
    fn retry_budget_is_respected() {
        let scripted = Scripted::new(vec![Err(server_err()), Err(server_err())]);
        let mut t = RetryingTransport::new(scripted, 1);
        assert!(t.fetch_many_requests(&reqs()).is_err());
        assert_eq!(t.retries_used(), 1);
    }

    #[test]
    fn corruption_and_deadline_and_breaker_errors_are_retried() {
        // The chaos-era transient errors: a corrupted frame, an expired
        // deadline, and an open breaker all deserve another attempt.
        for transient in
            [ClientError::Corrupted, ClientError::DeadlineExceeded, ClientError::CircuitOpen]
        {
            let scripted = Scripted::new(vec![Err(transient.clone()), Ok(())]);
            let mut t = RetryingTransport::new(scripted, 2);
            let out = t.fetch_many_requests(&reqs()).unwrap();
            assert_eq!(out.len(), 1, "{transient:?} must be retryable");
            assert_eq!(t.retries_used(), 1);
        }
    }

    #[test]
    fn disconnection_is_not_retried() {
        let scripted = Scripted::new(vec![Err(ClientError::Disconnected)]);
        let mut t = RetryingTransport::new(scripted, 5);
        assert!(matches!(t.fetch_many_requests(&reqs()), Err(ClientError::Disconnected)));
        assert_eq!(t.retries_used(), 0);
    }

    #[test]
    fn zero_budget_means_single_attempt() {
        let scripted = Scripted::new(vec![Err(server_err())]);
        let mut t = RetryingTransport::new(scripted, 0);
        assert!(t.fetch_many_requests(&reqs()).is_err());
        assert_eq!(t.into_inner().calls, 1);
    }

    #[test]
    fn backoff_sleeps_between_attempts_and_counts_the_wait() {
        let scripted = Scripted::new(vec![Err(server_err()), Err(server_err()), Ok(())]);
        let backoff = BackoffConfig {
            base: Duration::from_micros(200),
            cap: Duration::from_millis(5),
            seed: 7,
        };
        let mut t = RetryingTransport::with_backoff(scripted, 3, backoff);
        let started = std::time::Instant::now();
        t.fetch_many_requests(&reqs()).unwrap();
        let waited = t.backoff_waited();
        // Two retries: 200µs + 400µs exponential floor, each plus up to
        // half itself in jitter, both under the cap.
        assert!(waited >= Duration::from_micros(600), "waited {waited:?}");
        assert!(waited <= Duration::from_micros(900), "waited {waited:?}");
        assert!(started.elapsed() >= waited, "sleeps must actually happen");
        assert_eq!(t.retries_used(), 2);
    }

    #[test]
    fn backoff_schedule_is_deterministic_per_seed() {
        let run = |seed| {
            let scripted = Scripted::new(vec![
                Err(server_err()),
                Err(server_err()),
                Err(server_err()),
                Ok(()),
            ]);
            let backoff = BackoffConfig {
                base: Duration::from_micros(100),
                cap: Duration::from_millis(5),
                seed,
            };
            let mut t = RetryingTransport::with_backoff(scripted, 4, backoff);
            t.fetch_many_requests(&reqs()).unwrap();
            t.backoff_waited()
        };
        assert_eq!(run(42), run(42), "same seed, same schedule");
        assert_ne!(run(42), run(43), "different seeds must jitter apart");
    }

    #[test]
    fn per_attempt_delay_is_capped() {
        let scripted = Scripted::new(vec![
            Err(server_err()),
            Err(server_err()),
            Err(server_err()),
            Err(server_err()),
            Ok(()),
        ]);
        // Base 1ms doubling would reach 8ms by attempt 3; the 1ms cap
        // flattens every attempt.
        let backoff = BackoffConfig {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(1),
            seed: 0,
        };
        let mut t = RetryingTransport::with_backoff(scripted, 4, backoff);
        t.fetch_many_requests(&reqs()).unwrap();
        assert_eq!(t.retries_used(), 4);
        assert!(
            t.backoff_waited() <= Duration::from_millis(4),
            "waited {:?} despite a 1ms/attempt cap",
            t.backoff_waited()
        );
    }

    #[test]
    fn none_backoff_never_sleeps() {
        let scripted = Scripted::new(vec![Err(server_err()), Ok(())]);
        let mut t = RetryingTransport::with_backoff(scripted, 1, BackoffConfig::none());
        t.fetch_many_requests(&reqs()).unwrap();
        assert_eq!(t.backoff_waited(), Duration::ZERO);
        assert_eq!(t.retries_used(), 1);
    }

    #[test]
    fn works_under_the_loader_trait_bound() {
        // Compile-time check: RetryingTransport<T> is itself a transport.
        fn assert_transport<X: FetchTransport>() {}
        assert_transport::<RetryingTransport<crate::StorageClient>>();
        assert_transport::<RetryingTransport<crate::TcpStorageClient>>();
    }
}
