//! Per-request time budgets.
//!
//! The TCP client used to hide a hardcoded 50 ms read timeout deep in the
//! connection setup; a slow-but-correct server looked exactly like a dead
//! one. A [`Deadline`] makes the budget explicit: it is carried by the
//! client, started afresh at the top of every public call, and converted
//! into socket read timeouts as the remaining budget shrinks. Expiry
//! surfaces as [`ClientError::DeadlineExceeded`](crate::ClientError), which
//! the retry layer treats as transient — the canonical answer to a dropped
//! response frame.

use std::time::{Duration, Instant};

/// A time budget for one protocol exchange (configure or fetch batch).
///
/// `Deadline::NONE` means "block forever" — the pre-deadline behaviour and
/// the default. A finite deadline bounds the whole exchange, not each
/// individual read: the remaining budget shrinks as responses stream in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Deadline {
    budget: Option<Duration>,
}

impl Deadline {
    /// No deadline: block until the transport fails outright.
    pub const NONE: Deadline = Deadline { budget: None };

    /// The default socket poll interval servers use between liveness
    /// checks (the constant that used to be buried in the TCP accept
    /// path).
    pub const DEFAULT_POLL: Duration = Duration::from_millis(50);

    /// A budget of `d` from the moment a request is issued.
    pub fn after(d: Duration) -> Deadline {
        Deadline { budget: Some(d) }
    }

    /// The configured budget, when finite.
    pub fn budget(&self) -> Option<Duration> {
        self.budget
    }

    /// Whether this deadline ever expires.
    pub fn is_finite(&self) -> bool {
        self.budget.is_some()
    }

    /// The absolute expiry for an exchange starting now.
    pub fn expiry_from_now(&self) -> Option<Instant> {
        self.budget.map(|b| Instant::now() + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        assert_eq!(Deadline::NONE.budget(), None);
        assert!(!Deadline::NONE.is_finite());
        assert_eq!(Deadline::NONE.expiry_from_now(), None);
        assert_eq!(Deadline::default(), Deadline::NONE);
    }

    #[test]
    fn finite_budget_yields_a_future_expiry() {
        let d = Deadline::after(Duration::from_millis(250));
        assert_eq!(d.budget(), Some(Duration::from_millis(250)));
        assert!(d.is_finite());
        let expiry = d.expiry_from_now().unwrap();
        assert!(expiry > Instant::now());
        assert!(expiry <= Instant::now() + Duration::from_millis(250));
    }
}
