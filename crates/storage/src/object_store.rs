use std::collections::HashMap;
use std::ops::Range;

use bytes::Bytes;

/// An in-memory object store mapping sample ids to encoded bytes.
///
/// Mirrors the paper's setup where the dataset subset is cached in the
/// storage node's RAM so intra-node read bandwidth vastly exceeds the
/// inter-node link.
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    objects: HashMap<u64, Bytes>,
    total_bytes: u64,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> ObjectStore {
        ObjectStore::default()
    }

    /// Builds a store from `(id, bytes)` pairs.
    pub fn from_objects<I>(objects: I) -> ObjectStore
    where
        I: IntoIterator<Item = (u64, Bytes)>,
    {
        let mut store = ObjectStore::new();
        for (id, bytes) in objects {
            store.insert(id, bytes);
        }
        store
    }

    /// Materializes the given id range of a dataset through the real codec.
    ///
    /// Rendering is the expensive path — intended for the modest corpus
    /// sizes used by functional tests and the live demo.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the dataset length.
    pub fn materialize_dataset(ds: &datasets::DatasetSpec, ids: Range<u64>) -> ObjectStore {
        Self::from_objects(ids.map(|id| (id, Bytes::from(ds.materialize(id)))))
    }

    /// Materializes the given id range as **tiered** (progressive) streams
    /// so the server can brown out samples by truncating at tier
    /// boundaries. Same pixels as [`ObjectStore::materialize_dataset`];
    /// only the byte layout differs.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the dataset length.
    pub fn materialize_dataset_tiered(
        ds: &datasets::DatasetSpec,
        ids: Range<u64>,
        tiers: &codec::TierSpec,
    ) -> ObjectStore {
        Self::from_objects(ids.map(|id| (id, Bytes::from(ds.materialize_tiered(id, tiers)))))
    }

    /// Inserts (or replaces) an object; returns the previous bytes, if any.
    pub fn insert(&mut self, id: u64, bytes: Bytes) -> Option<Bytes> {
        self.total_bytes += bytes.len() as u64;
        let prev = self.objects.insert(id, bytes);
        if let Some(p) = &prev {
            self.total_bytes -= p.len() as u64;
        }
        prev
    }

    /// Fetches an object's bytes (cheaply cloned, shared buffer).
    pub fn get(&self, id: u64) -> Option<Bytes> {
        self.objects.get(&id).cloned()
    }

    /// Whether the store holds an object for `id`.
    pub fn contains(&self, id: u64) -> bool {
        self.objects.contains_key(&id)
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Iterates `(id, bytes)` pairs (arbitrary order; bytes are cheaply
    /// cloned shared buffers).
    pub fn iter(&self) -> impl Iterator<Item = (u64, Bytes)> + '_ {
        self.objects.iter().map(|(&id, b)| (id, b.clone()))
    }

    /// Persists every object to `dir` as `<id>.sjpg` files (creating the
    /// directory), so a corpus can be served by a cold-started node without
    /// re-rendering.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn persist_dir<P: AsRef<std::path::Path>>(&self, dir: P) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        for (id, bytes) in &self.objects {
            std::fs::write(dir.join(format!("{id}.sjpg")), bytes)?;
        }
        Ok(())
    }

    /// Loads a store persisted by [`ObjectStore::persist_dir`]. Files that
    /// do not match the `<id>.sjpg` pattern are ignored.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn load_dir<P: AsRef<std::path::Path>>(dir: P) -> std::io::Result<ObjectStore> {
        let mut store = ObjectStore::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if path.extension().and_then(|e| e.to_str()) != Some("sjpg") {
                continue;
            }
            let Ok(id) = stem.parse::<u64>() else {
                continue;
            };
            store.insert(id, Bytes::from(std::fs::read(&path)?));
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut s = ObjectStore::new();
        assert!(s.is_empty());
        s.insert(7, Bytes::from_static(b"abc"));
        assert_eq!(s.get(7).unwrap(), Bytes::from_static(b"abc"));
        assert!(s.get(8).is_none());
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_bytes(), 3);
    }

    #[test]
    fn replace_updates_accounting() {
        let mut s = ObjectStore::new();
        s.insert(1, Bytes::from_static(b"aaaa"));
        let prev = s.insert(1, Bytes::from_static(b"bb"));
        assert_eq!(prev.unwrap(), Bytes::from_static(b"aaaa"));
        assert_eq!(s.total_bytes(), 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn persist_and_load_roundtrip() {
        let mut store = ObjectStore::new();
        store.insert(0, Bytes::from_static(b"alpha"));
        store.insert(7, Bytes::from_static(b"beta"));
        let dir = std::env::temp_dir().join(format!("sophon-store-test-{}", std::process::id()));
        store.persist_dir(&dir).unwrap();
        // A stray non-matching file must be ignored.
        std::fs::write(dir.join("README.txt"), b"not a sample").unwrap();
        let loaded = ObjectStore::load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(0).unwrap(), Bytes::from_static(b"alpha"));
        assert_eq!(loaded.get(7).unwrap(), Bytes::from_static(b"beta"));
        assert_eq!(loaded.total_bytes(), store.total_bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_errors() {
        assert!(ObjectStore::load_dir("/nonexistent/sophon-nowhere").is_err());
    }

    #[test]
    fn materialize_dataset_stores_decodable_objects() {
        let ds = datasets::DatasetSpec::mini(4, 3);
        let store = ObjectStore::materialize_dataset(&ds, 0..4);
        assert_eq!(store.len(), 4);
        for id in 0..4 {
            let bytes = store.get(id).unwrap();
            assert!(codec::decode(&bytes).is_ok(), "object {id} must decode");
        }
        assert!(store.total_bytes() > 0);
    }
}
