use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel;
use netsim::{Bandwidth, PipeReceiver, PipeSender, ThrottledPipe, TrafficMeter};
use parking_lot::RwLock;

use crate::protocol::{Request, Response};
use crate::wire;
use crate::{NearStorageExecutor, ObjectStore, StorageClient};

/// Configuration of a live storage server.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads for near-storage preprocessing (the storage node's
    /// preprocessing core count in the paper's Figure 4 sweep).
    pub cores: usize,
    /// Bandwidth cap on the response path (the 500 Mbps link).
    pub bandwidth: Bandwidth,
    /// Response queue depth in messages.
    pub queue_depth: usize,
    /// How often blocking waits wake to check for shutdown — the idle
    /// poll granularity (formerly a hardcoded 50 ms constant).
    pub read_poll: Duration,
    /// Backpressure bound for the pipelined TCP server: how many decoded
    /// requests one connection may have in flight before the event loop
    /// stops reading its socket (TCP backpressure then propagates to the
    /// client). Connections beyond this depth are never starved — reading
    /// resumes as soon as responses drain.
    pub max_in_flight: usize,
}

impl Default for ServerConfig {
    /// Two cores behind a 1 Gbps link, depth-16 queue, default poll,
    /// 64 in-flight requests per connection.
    fn default() -> Self {
        ServerConfig {
            cores: 2,
            bandwidth: Bandwidth::from_gbps(1.0),
            queue_depth: 16,
            read_poll: crate::Deadline::DEFAULT_POLL,
            max_in_flight: 64,
        }
    }
}

/// A live, multi-threaded storage server.
///
/// `cores` worker threads pull wire-encoded requests from a shared queue,
/// execute them against the object store (running any offloaded pipeline
/// prefix), and push wire-encoded responses through a bandwidth-throttled
/// pipe — the in-process equivalent of the paper's gRPC storage service
/// behind a 500 Mbps link.
#[derive(Debug)]
pub struct StorageServer {
    req_tx: Option<channel::Sender<bytes::Bytes>>,
    resp_rx: Option<PipeReceiver>,
    resp_meter: TrafficMeter,
    req_meter: TrafficMeter,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl StorageServer {
    /// Spawns the server's worker threads.
    ///
    /// # Panics
    ///
    /// Panics when `config.cores` is zero.
    pub fn spawn(store: ObjectStore, config: ServerConfig) -> StorageServer {
        assert!(config.cores > 0, "server needs at least one core");
        let (req_tx, req_rx) = channel::unbounded::<bytes::Bytes>();
        let (resp_tx, resp_rx) = ThrottledPipe::new(config.bandwidth, config.queue_depth);
        let resp_meter = resp_tx.meter().clone();
        let req_meter = TrafficMeter::new();
        let stop = Arc::new(AtomicBool::new(false));
        let session: Arc<RwLock<Option<NearStorageExecutor>>> = Arc::new(RwLock::new(None));
        let store = Arc::new(store);

        let workers = (0..config.cores)
            .map(|_| {
                let req_rx = req_rx.clone();
                let resp_tx = resp_tx.clone();
                let stop = Arc::clone(&stop);
                let session = Arc::clone(&session);
                let store = Arc::clone(&store);
                let req_meter = req_meter.clone();
                std::thread::spawn(move || {
                    worker_loop(&req_rx, &resp_tx, &stop, &session, &store, &req_meter);
                })
            })
            .collect();

        StorageServer {
            req_tx: Some(req_tx),
            resp_rx: Some(resp_rx),
            resp_meter,
            req_meter,
            stop,
            workers,
        }
    }

    /// Creates the client endpoint.
    ///
    /// # Panics
    ///
    /// Panics when called more than once — the pipe has a single consumer.
    pub fn client(&mut self) -> StorageClient {
        let resp_rx = self.resp_rx.take().expect("client() may only be called once");
        let req_tx = self.req_tx.clone().expect("server is running");
        StorageClient::new(req_tx, resp_rx)
    }

    /// Bytes sent over the response path so far (the experiment's "data
    /// traffic" reading).
    pub fn response_bytes(&self) -> u64 {
        self.resp_meter.bytes()
    }

    /// Bytes received on the request path so far.
    pub fn request_bytes(&self) -> u64 {
        self.req_meter.bytes()
    }

    /// Stops the workers and waits for them to exit.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.req_tx = None; // disconnect the queue
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for StorageServer {
    fn drop(&mut self) {
        // Non-blocking teardown: signal and disconnect; threads exit on
        // their next poll. `shutdown()` is the graceful, joining variant.
        self.stop.store(true, Ordering::SeqCst);
        self.req_tx = None;
    }
}

fn worker_loop(
    req_rx: &channel::Receiver<bytes::Bytes>,
    resp_tx: &PipeSender,
    stop: &AtomicBool,
    session: &RwLock<Option<NearStorageExecutor>>,
    store: &Arc<ObjectStore>,
    req_meter: &TrafficMeter,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let msg = match req_rx.recv_timeout(Duration::from_millis(20)) {
            Ok(m) => m,
            Err(channel::RecvTimeoutError::Timeout) => continue,
            Err(channel::RecvTimeoutError::Disconnected) => return,
        };
        req_meter.record(msg.len() as u64);
        // Echo the request's multiplexing id on the reply; a frame whose
        // body failed to parse still gets its id echoed best-effort so the
        // error routes back to the caller that triggered it.
        let (request_id, response) = match wire::decode_request_framed(&msg) {
            Ok((id, Request::Configure(cfg))) => {
                *session.write() = Some(NearStorageExecutor::new(ObjectStore::clone(store), cfg));
                (id, Response::Configured)
            }
            Ok((id, Request::Fetch(req))) => {
                let executor = session.read().clone();
                let response = match executor {
                    Some(ex) => match ex.execute(req) {
                        Ok(resp) => Response::Data(resp),
                        Err(e) => Response::Error {
                            sample_id: Some(req.sample_id),
                            message: e.to_string(),
                        },
                    },
                    None => Response::Error {
                        sample_id: Some(req.sample_id),
                        message: "session not configured".to_string(),
                    },
                };
                (id, response)
            }
            Ok((_, Request::Shutdown)) => {
                stop.store(true, Ordering::SeqCst);
                return;
            }
            Err(e) => (
                wire::peek_request_id(&msg).unwrap_or(0),
                Response::Error { sample_id: None, message: format!("bad request: {e}") },
            ),
        };
        if resp_tx.send(wire::encode_response_framed(request_id, &response)).is_err() {
            return; // client hung up
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::{PipelineSpec, SplitPoint};

    fn server_with(n: u64, cores: usize) -> (StorageServer, datasets::DatasetSpec) {
        let ds = datasets::DatasetSpec::mini(n, 31);
        let store = ObjectStore::materialize_dataset(&ds, 0..n);
        let server = StorageServer::spawn(
            store,
            ServerConfig {
                cores,
                bandwidth: Bandwidth::from_gbps(10.0),
                queue_depth: 32,
                ..ServerConfig::default()
            },
        );
        (server, ds)
    }

    #[test]
    fn configure_then_fetch() {
        let (mut server, ds) = server_with(2, 1);
        let mut client = server.client();
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        let data = client.fetch(0, 0, SplitPoint::NONE).unwrap();
        assert!(data.as_encoded().is_some());
        assert!(server.response_bytes() > 0);
        assert!(server.request_bytes() > 0);
        server.shutdown();
    }

    #[test]
    fn fetch_before_configure_errors() {
        let (mut server, _ds) = server_with(1, 1);
        let mut client = server.client();
        let err = client.fetch(0, 0, SplitPoint::NONE).unwrap_err();
        assert!(err.to_string().contains("not configured"), "{err}");
        server.shutdown();
    }

    #[test]
    fn parallel_workers_serve_many_requests() {
        let (mut server, ds) = server_with(4, 3);
        let mut client = server.client();
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        let reqs: Vec<_> = (0..4u64)
            .flat_map(|id| (0..3u64).map(move |epoch| (id, epoch, SplitPoint::new(2))))
            .collect();
        let responses = client.fetch_many(&reqs).unwrap();
        assert_eq!(responses.len(), 12);
        for r in &responses {
            assert_eq!(r.data.byte_len(), 150_528);
        }
        server.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_server_rejected() {
        let (server, _) = server_with(1, 1);
        server.shutdown();
        let _ = StorageServer::spawn(
            ObjectStore::new(),
            ServerConfig {
                cores: 0,
                bandwidth: Bandwidth::from_gbps(1.0),
                queue_depth: 1,
                ..ServerConfig::default()
            },
        );
    }
}
