//! A real TCP transport for the fetch protocol.
//!
//! [`StorageServer`](crate::StorageServer) demonstrates the data path with
//! in-process pipes; this module runs the same protocol over actual sockets
//! — length-prefixed frames on `TcpStream`s, a shared worker pool for
//! near-storage preprocessing, and a shared token bucket capping response
//! bandwidth — the closest local analogue of the paper's gRPC service
//! behind a 500 Mbps link.
//!
//! Frame format: `u32` little-endian payload length (capped at
//! [`wire::MAX_PAYLOAD`]) followed by the payload (a [`wire`]-encoded
//! request or response).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel;
use netsim::{TokenBucket, TrafficMeter};
use parking_lot::{Mutex, RwLock};
use pipeline::{PipelineSpec, SplitPoint, StageData};

use crate::protocol::{FetchRequest, FetchResponse, Request, Response};
use crate::wire;
use crate::{ClientError, NearStorageExecutor, ObjectStore, ServerConfig};

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_frame<W: Write>(mut w: W, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() as u64 <= u64::from(wire::MAX_PAYLOAD), "frame over cap");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Propagates socket errors; oversized declared lengths surface as
/// `InvalidData` before any allocation.
pub fn read_frame<R: Read>(mut r: R) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > wire::MAX_PAYLOAD {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame length over cap"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

struct Job {
    request: Request,
    session: Arc<RwLock<Option<NearStorageExecutor>>>,
    reply: channel::Sender<Response>,
}

/// A storage server listening on a real TCP socket.
#[derive(Debug)]
pub struct TcpStorageServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    meter: TrafficMeter,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TcpStorageServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// serving.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics when `config.cores` is zero.
    pub fn bind(store: ObjectStore, config: ServerConfig, addr: &str) -> io::Result<Self> {
        assert!(config.cores > 0, "server needs at least one core");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let meter = TrafficMeter::new();
        let bucket = Arc::new(Mutex::new(TokenBucket::new(
            config.bandwidth,
            (config.bandwidth.bytes_per_second() * 0.02).max(1500.0) as usize,
        )));

        let (work_tx, work_rx) = channel::unbounded::<Job>();
        let workers = (0..config.cores)
            .map(|_| {
                let rx = work_rx.clone();
                let store = store.clone();
                std::thread::spawn(move || worker_loop(&rx, &store))
            })
            .collect();

        let accept_stop = Arc::clone(&stop);
        let accept_meter = meter.clone();
        let accept_thread = std::thread::spawn(move || {
            accept_loop(&listener, &accept_stop, &work_tx, &bucket, &accept_meter);
        });

        Ok(TcpStorageServer {
            addr: local,
            stop,
            meter,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bytes written to clients so far.
    pub fn response_bytes(&self) -> u64 {
        self.meter.bytes()
    }

    /// A clone of the response-byte meter (keeps counting after the
    /// server is consumed by `shutdown`).
    pub fn meter(&self) -> TrafficMeter {
        self.meter.clone()
    }

    /// Stops accepting, drains workers, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for TcpStorageServer {
    fn drop(&mut self) {
        // Signal-only teardown (non-blocking); `shutdown()` joins.
        self.stop.store(true, Ordering::SeqCst);
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &Arc<AtomicBool>,
    work_tx: &channel::Sender<Job>,
    bucket: &Arc<Mutex<TokenBucket>>,
    meter: &TrafficMeter,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let work_tx = work_tx.clone();
                let stop = Arc::clone(stop);
                let bucket = Arc::clone(bucket);
                let meter = meter.clone();
                connections.push(std::thread::spawn(move || {
                    let _ = serve_connection(stream, &work_tx, &stop, &bucket, &meter);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for c in connections {
        let _ = c.join();
    }
}

fn serve_connection(
    stream: TcpStream,
    work_tx: &channel::Sender<Job>,
    stop: &Arc<AtomicBool>,
    bucket: &Arc<Mutex<TokenBucket>>,
    meter: &TrafficMeter,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut reader = stream.try_clone()?;
    let session: Arc<RwLock<Option<NearStorageExecutor>>> = Arc::new(RwLock::new(None));
    let (reply_tx, reply_rx) = channel::unbounded::<Response>();

    // Writer thread: throttle + frame every response.
    let writer_stream = stream;
    let writer_bucket = Arc::clone(bucket);
    let writer_meter = meter.clone();
    let writer = std::thread::spawn(move || -> io::Result<()> {
        let mut out = writer_stream;
        while let Ok(resp) = reply_rx.recv() {
            let payload = wire::encode_response(&resp);
            let delay = writer_bucket.lock().delay_for(payload.len());
            if delay > Duration::ZERO {
                std::thread::sleep(delay);
            }
            writer_meter.record(payload.len() as u64);
            write_frame(&mut out, &payload)?;
        }
        Ok(())
    });

    // Reader loop: decode frames into jobs.
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break, // EOF or hard error: connection done
        };
        let response_or_job = match wire::decode_request(&frame) {
            Ok(request) => Job { request, session: Arc::clone(&session), reply: reply_tx.clone() },
            Err(e) => {
                let _ = reply_tx.send(Response::Error {
                    sample_id: None,
                    message: format!("bad request: {e}"),
                });
                continue;
            }
        };
        if matches!(response_or_job.request, Request::Shutdown) {
            stop.store(true, Ordering::SeqCst);
            break;
        }
        if work_tx.send(response_or_job).is_err() {
            break;
        }
    }
    drop(reply_tx);
    let _ = writer.join();
    Ok(())
}

fn worker_loop(rx: &channel::Receiver<Job>, store: &ObjectStore) {
    while let Ok(job) = rx.recv() {
        let response = match job.request {
            Request::Configure(cfg) => {
                *job.session.write() = Some(NearStorageExecutor::new(store.clone(), cfg));
                Response::Configured
            }
            Request::Fetch(req) => {
                let executor = job.session.read().clone();
                match executor {
                    Some(ex) => match ex.execute(req) {
                        Ok(resp) => Response::Data(resp),
                        Err(e) => Response::Error {
                            sample_id: Some(req.sample_id),
                            message: e.to_string(),
                        },
                    },
                    None => Response::Error {
                        sample_id: Some(req.sample_id),
                        message: "session not configured".to_string(),
                    },
                }
            }
            Request::Shutdown => continue, // handled at the connection layer
        };
        if job.reply.send(response).is_err() {
            return;
        }
    }
}

/// Client for a [`TcpStorageServer`].
#[derive(Debug)]
pub struct TcpStorageClient {
    stream: TcpStream,
    pending: std::collections::HashMap<u64, FetchResponse>,
}

impl TcpStorageClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> io::Result<TcpStorageClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpStorageClient { stream, pending: std::collections::HashMap::new() })
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &wire::encode_request(req))
            .map_err(|_| ClientError::Disconnected)
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let frame = read_frame(&mut self.stream).map_err(|_| ClientError::Disconnected)?;
        Ok(wire::decode_response(&frame)?)
    }

    /// Configures the session pipeline; must precede fetches.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on socket failures, malformed responses, or
    /// server-side errors.
    pub fn configure(
        &mut self,
        dataset_seed: u64,
        pipeline: PipelineSpec,
    ) -> Result<(), ClientError> {
        self.send(&Request::Configure(crate::SessionConfig { dataset_seed, pipeline }))?;
        match self.recv()? {
            Response::Configured => Ok(()),
            Response::Error { sample_id, message } => {
                Err(ClientError::Server { sample_id, message })
            }
            Response::Data(_) => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches one sample with an offload directive.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on socket failures, malformed responses, or a
    /// server-reported failure for this sample.
    pub fn fetch(
        &mut self,
        sample_id: u64,
        epoch: u64,
        split: SplitPoint,
    ) -> Result<StageData, ClientError> {
        self.send(&Request::Fetch(FetchRequest::new(sample_id, epoch, split)))?;
        if let Some(resp) = self.pending.remove(&sample_id) {
            return Ok(resp.data);
        }
        loop {
            match self.recv()? {
                Response::Data(d) if d.sample_id == sample_id => return Ok(d.data),
                Response::Data(d) => {
                    self.pending.insert(d.sample_id, d);
                }
                Response::Error { sample_id, message } => {
                    return Err(ClientError::Server { sample_id, message })
                }
                Response::Configured => return Err(ClientError::UnexpectedResponse),
            }
        }
    }

    /// Fetches with full request control (offload split plus optional
    /// transfer-time re-compression), blocking for the response.
    ///
    /// # Errors
    ///
    /// Same conditions as `fetch`.
    pub fn fetch_request(&mut self, req: FetchRequest) -> Result<FetchResponse, ClientError> {
        self.send(&Request::Fetch(req))?;
        if let Some(resp) = self.pending.remove(&req.sample_id) {
            return Ok(resp);
        }
        loop {
            match self.recv()? {
                Response::Data(d) if d.sample_id == req.sample_id => return Ok(d),
                Response::Data(d) => {
                    self.pending.insert(d.sample_id, d);
                }
                Response::Error { sample_id, message } => {
                    return Err(ClientError::Server { sample_id, message })
                }
                Response::Configured => return Err(ClientError::UnexpectedResponse),
            }
        }
    }

    /// Pipelined variant of `fetch_many` with full request control.
    ///
    /// # Errors
    ///
    /// Returns the first failure.
    pub fn fetch_many_requests(
        &mut self,
        requests: &[FetchRequest],
    ) -> Result<Vec<FetchResponse>, ClientError> {
        for req in requests {
            self.send(&Request::Fetch(*req))?;
        }
        let mut out = Vec::with_capacity(requests.len());
        for _ in 0..requests.len() {
            match self.recv()? {
                Response::Data(d) => out.push(d),
                Response::Error { sample_id, message } => {
                    return Err(ClientError::Server { sample_id, message })
                }
                Response::Configured => return Err(ClientError::UnexpectedResponse),
            }
        }
        Ok(out)
    }

    /// Issues all requests up front, then collects every response.
    ///
    /// # Errors
    ///
    /// Returns the first failure.
    pub fn fetch_many(
        &mut self,
        requests: &[(u64, u64, SplitPoint)],
    ) -> Result<Vec<FetchResponse>, ClientError> {
        for &(sample_id, epoch, split) in requests {
            self.send(&Request::Fetch(FetchRequest::new(sample_id, epoch, split)))?;
        }
        let mut out = Vec::with_capacity(requests.len());
        for _ in 0..requests.len() {
            match self.recv()? {
                Response::Data(d) => out.push(d),
                Response::Error { sample_id, message } => {
                    return Err(ClientError::Server { sample_id, message })
                }
                Response::Configured => return Err(ClientError::UnexpectedResponse),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Bandwidth;

    fn spawn_server(n: u64, cores: usize) -> (TcpStorageServer, datasets::DatasetSpec) {
        let ds = datasets::DatasetSpec::mini(n, 61);
        let store = ObjectStore::materialize_dataset(&ds, 0..n);
        let server = TcpStorageServer::bind(
            store,
            ServerConfig { cores, bandwidth: Bandwidth::from_gbps(10.0), queue_depth: 32 },
            "127.0.0.1:0",
        )
        .unwrap();
        (server, ds)
    }

    #[test]
    fn fetch_over_real_sockets() {
        let (server, ds) = spawn_server(3, 2);
        let mut client = TcpStorageClient::connect(server.local_addr()).unwrap();
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        let raw = client.fetch(0, 0, SplitPoint::NONE).unwrap();
        assert!(raw.as_encoded().is_some());
        let cropped = client.fetch(1, 0, SplitPoint::new(2)).unwrap();
        assert_eq!(cropped.byte_len(), 150_528);
        assert!(server.response_bytes() > 150_528);
        server.shutdown();
    }

    #[test]
    fn pipelined_fetches_over_tcp() {
        let (server, ds) = spawn_server(4, 3);
        let mut client = TcpStorageClient::connect(server.local_addr()).unwrap();
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        let reqs: Vec<_> = (0..4u64).map(|id| (id, 0u64, SplitPoint::new(2))).collect();
        let responses = client.fetch_many(&reqs).unwrap();
        assert_eq!(responses.len(), 4);
        let mut ids: Vec<_> = responses.iter().map(|r| r.sample_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        server.shutdown();
    }

    #[test]
    fn two_concurrent_clients() {
        let (server, ds) = spawn_server(2, 2);
        let addr = server.local_addr();
        let seed = ds.seed;
        let threads: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = TcpStorageClient::connect(addr).unwrap();
                    client.configure(seed, PipelineSpec::standard_train()).unwrap();
                    let data = client.fetch(1, 3, SplitPoint::new(2)).unwrap();
                    data.as_image().unwrap().as_raw().to_vec()
                })
            })
            .collect();
        let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        // Same sample, same epoch, same split: identical bytes for both
        // clients (deterministic near-storage execution).
        assert_eq!(results[0], results[1]);
        server.shutdown();
    }

    #[test]
    fn unconfigured_fetch_errors_over_tcp() {
        let (server, _ds) = spawn_server(1, 1);
        let mut client = TcpStorageClient::connect(server.local_addr()).unwrap();
        let err = client.fetch(0, 0, SplitPoint::NONE).unwrap_err();
        assert!(err.to_string().contains("not configured"));
        server.shutdown();
    }

    #[test]
    fn frame_roundtrip_and_cap() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame").unwrap();
        let got = read_frame(&buf[..]).unwrap();
        assert_eq!(got, b"hello frame");
        // Oversized declared length is rejected before allocation.
        let mut bogus = Vec::new();
        bogus.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_frame(&bogus[..]).is_err());
    }
}
