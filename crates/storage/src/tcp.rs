//! A real TCP transport for the fetch protocol.
//!
//! [`StorageServer`](crate::StorageServer) demonstrates the data path with
//! in-process pipes; this module runs the same protocol over actual sockets
//! — length-prefixed frames on `TcpStream`s, a shared worker pool for
//! near-storage preprocessing, and a shared token bucket capping response
//! bandwidth — the closest local analogue of the paper's gRPC service
//! behind a 500 Mbps link.
//!
//! Frame format: `u32` little-endian payload length (capped at
//! [`wire::MAX_PAYLOAD`]) followed by the payload (a [`wire`]-encoded
//! request or response).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel;
use netsim::{TokenBucket, TrafficMeter};
use parking_lot::{Mutex, RwLock};
use pipeline::{PipelineSpec, SplitPoint, StageData};

use crate::chaos::{FaultDirective, FaultKind, ServerFaultInjector};
use crate::protocol::{FetchRequest, FetchResponse, Request, Response};
use crate::wire::{self, WireError};
use crate::{chaos, ClientError, Deadline, NearStorageExecutor, ObjectStore, ServerConfig};

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates socket errors; an over-cap payload surfaces as
/// `InvalidInput` before any bytes hit the wire.
pub fn write_frame<W: Write>(mut w: W, payload: &[u8]) -> io::Result<()> {
    if payload.len() as u64 > u64::from(wire::MAX_PAYLOAD) {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame over cap"));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Propagates socket errors; oversized declared lengths surface as
/// `InvalidData` before any allocation.
pub fn read_frame<R: Read>(mut r: R) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > wire::MAX_PAYLOAD {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame length over cap"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// A response paired with the fault (if any) the writer must apply to it.
struct Reply {
    response: Response,
    fault: Option<FaultDirective>,
}

struct Job {
    request: Request,
    session: Arc<RwLock<Option<NearStorageExecutor>>>,
    reply: channel::Sender<Reply>,
}

/// A storage server listening on a real TCP socket.
#[derive(Debug)]
pub struct TcpStorageServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    meter: TrafficMeter,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TcpStorageServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// serving.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; a zero-core config surfaces as
    /// `InvalidInput`.
    pub fn bind(store: ObjectStore, config: ServerConfig, addr: &str) -> io::Result<Self> {
        Self::bind_with_injector(store, config, addr, None)
    }

    /// Like [`TcpStorageServer::bind`], but every fetch response first
    /// consults `injector` — the server-side half of the chaos layer.
    /// Faults are applied to the encoded frame on the wire itself: drops
    /// skip the write, delays sleep in the writer, truncations shorten
    /// the frame, bit-flips corrupt it. Configure responses are never
    /// faulted.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; a zero-core config surfaces as
    /// `InvalidInput`.
    pub fn bind_with_injector(
        store: ObjectStore,
        config: ServerConfig,
        addr: &str,
        injector: Option<Arc<ServerFaultInjector>>,
    ) -> io::Result<Self> {
        if config.cores == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "server needs at least one core",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let meter = TrafficMeter::new();
        let bucket = Arc::new(Mutex::new(TokenBucket::new(
            config.bandwidth,
            (config.bandwidth.bytes_per_second() * 0.02).max(1500.0) as usize,
        )));

        let (work_tx, work_rx) = channel::unbounded::<Job>();
        let workers = (0..config.cores)
            .map(|_| {
                let rx = work_rx.clone();
                let store = store.clone();
                let injector = injector.clone();
                std::thread::spawn(move || worker_loop(&rx, &store, injector.as_deref()))
            })
            .collect();

        let accept_stop = Arc::clone(&stop);
        let accept_meter = meter.clone();
        let read_poll = config.read_poll;
        let accept_thread = std::thread::spawn(move || {
            accept_loop(&listener, &accept_stop, &work_tx, &bucket, &accept_meter, read_poll);
        });

        Ok(TcpStorageServer {
            addr: local,
            stop,
            meter,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bytes written to clients so far.
    pub fn response_bytes(&self) -> u64 {
        self.meter.bytes()
    }

    /// A clone of the response-byte meter (keeps counting after the
    /// server is consumed by `shutdown`).
    pub fn meter(&self) -> TrafficMeter {
        self.meter.clone()
    }

    /// Stops accepting, drains workers, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for TcpStorageServer {
    fn drop(&mut self) {
        // Signal-only teardown (non-blocking); `shutdown()` joins.
        self.stop.store(true, Ordering::SeqCst);
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &Arc<AtomicBool>,
    work_tx: &channel::Sender<Job>,
    bucket: &Arc<Mutex<TokenBucket>>,
    meter: &TrafficMeter,
    read_poll: Duration,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let work_tx = work_tx.clone();
                let stop = Arc::clone(stop);
                let bucket = Arc::clone(bucket);
                let meter = meter.clone();
                connections.push(std::thread::spawn(move || {
                    let _ = serve_connection(stream, &work_tx, &stop, &bucket, &meter, read_poll);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for c in connections {
        let _ = c.join();
    }
}

fn serve_connection(
    stream: TcpStream,
    work_tx: &channel::Sender<Job>,
    stop: &Arc<AtomicBool>,
    bucket: &Arc<Mutex<TokenBucket>>,
    meter: &TrafficMeter,
    read_poll: Duration,
) -> io::Result<()> {
    stream.set_read_timeout(Some(read_poll))?;
    let mut reader = stream.try_clone()?;
    let session: Arc<RwLock<Option<NearStorageExecutor>>> = Arc::new(RwLock::new(None));
    let (reply_tx, reply_rx) = channel::unbounded::<Reply>();

    // Writer thread: throttle + frame every response, applying any
    // injected wire-level fault to the encoded bytes.
    let writer_stream = stream;
    let writer_bucket = Arc::clone(bucket);
    let writer_meter = meter.clone();
    let writer = std::thread::spawn(move || -> io::Result<()> {
        let mut out = writer_stream;
        while let Ok(reply) = reply_rx.recv() {
            let mut payload = wire::encode_response(&reply.response).to_vec();
            match reply.fault {
                Some(FaultDirective { kind: FaultKind::Drop, .. }) => continue,
                Some(FaultDirective { kind: FaultKind::Delay(d), .. }) => {
                    std::thread::sleep(d);
                }
                Some(FaultDirective { kind: FaultKind::Truncate, salt }) => {
                    chaos::truncate_payload(&mut payload, salt);
                }
                Some(FaultDirective { kind: FaultKind::BitFlip, salt }) => {
                    chaos::flip_bit(&mut payload, salt);
                }
                // Error faults were applied at the worker; nothing here.
                Some(FaultDirective { kind: FaultKind::Error, .. }) | None => {}
            }
            let delay = writer_bucket.lock().delay_for(payload.len());
            if delay > Duration::ZERO {
                std::thread::sleep(delay);
            }
            writer_meter.record(payload.len() as u64);
            write_frame(&mut out, &payload)?;
        }
        Ok(())
    });

    // Reader loop: decode frames into jobs.
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break, // EOF or hard error: connection done
        };
        let response_or_job = match wire::decode_request(&frame) {
            Ok(request) => Job { request, session: Arc::clone(&session), reply: reply_tx.clone() },
            Err(e) => {
                let _ = reply_tx.send(Reply {
                    response: Response::Error {
                        sample_id: None,
                        message: format!("bad request: {e}"),
                    },
                    fault: None,
                });
                continue;
            }
        };
        if matches!(response_or_job.request, Request::Shutdown) {
            stop.store(true, Ordering::SeqCst);
            break;
        }
        if work_tx.send(response_or_job).is_err() {
            break;
        }
    }
    drop(reply_tx);
    let _ = writer.join();
    Ok(())
}

fn worker_loop(
    rx: &channel::Receiver<Job>,
    store: &ObjectStore,
    injector: Option<&ServerFaultInjector>,
) {
    while let Ok(job) = rx.recv() {
        let reply = match job.request {
            Request::Configure(cfg) => {
                *job.session.write() = Some(NearStorageExecutor::new(store.clone(), cfg));
                Reply { response: Response::Configured, fault: None }
            }
            Request::Fetch(req) => {
                let fault = injector.and_then(|i| i.decide(req.sample_id, req.epoch));
                if matches!(fault, Some(FaultDirective { kind: FaultKind::Error, .. })) {
                    // Error faults replace the response before execution.
                    Reply {
                        response: Response::Error {
                            sample_id: Some(req.sample_id),
                            message: "injected storage fault".to_string(),
                        },
                        fault,
                    }
                } else {
                    let executor = job.session.read().clone();
                    let response = match executor {
                        Some(ex) => match ex.execute(req) {
                            Ok(resp) => Response::Data(resp),
                            Err(e) => Response::Error {
                                sample_id: Some(req.sample_id),
                                message: e.to_string(),
                            },
                        },
                        None => Response::Error {
                            sample_id: Some(req.sample_id),
                            message: "session not configured".to_string(),
                        },
                    };
                    Reply { response, fault }
                }
            }
            Request::Shutdown => continue, // handled at the connection layer
        };
        if job.reply.send(reply).is_err() {
            return;
        }
    }
}

/// Partially read frame state, persisted across deadline expiries so a
/// timed-out read never desynchronizes the stream: the next call resumes
/// the same frame exactly where the budget ran out.
#[derive(Debug, Default)]
struct FrameState {
    header: [u8; 4],
    header_got: usize,
    payload: Vec<u8>,
    payload_got: usize,
    expect: Option<usize>,
}

/// Client for a [`TcpStorageServer`].
#[derive(Debug)]
pub struct TcpStorageClient {
    stream: TcpStream,
    pending: std::collections::HashMap<u64, FetchResponse>,
    deadline: Deadline,
    frame: FrameState,
}

impl TcpStorageClient {
    /// Connects to a server (no deadline: reads block until the server
    /// answers or hangs up).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> io::Result<TcpStorageClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpStorageClient {
            stream,
            pending: std::collections::HashMap::new(),
            deadline: Deadline::NONE,
            frame: FrameState::default(),
        })
    }

    /// Sets the per-exchange time budget. Each public call (configure or
    /// fetch batch) starts a fresh budget; expiry surfaces as
    /// [`ClientError::DeadlineExceeded`].
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.deadline = deadline;
    }

    /// Builder form of [`TcpStorageClient::set_deadline`].
    pub fn with_deadline(mut self, deadline: Deadline) -> TcpStorageClient {
        self.deadline = deadline;
        self
    }

    /// The configured per-exchange deadline.
    pub fn deadline(&self) -> Deadline {
        self.deadline
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &wire::encode_request(req))
            .map_err(|_| ClientError::Disconnected)
    }

    /// Reads one frame, resuming any partial frame from a previous
    /// expired call, giving up when `expiry` passes.
    fn read_frame_within(&mut self, expiry: Option<Instant>) -> Result<Vec<u8>, ClientError> {
        loop {
            let timeout = match expiry {
                None => None,
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        return Err(ClientError::DeadlineExceeded);
                    }
                    Some(at - now)
                }
            };
            self.stream.set_read_timeout(timeout).map_err(|_| ClientError::Disconnected)?;
            let st = &mut self.frame;
            if let Some(want) = st.expect {
                if st.payload_got == want {
                    let frame = std::mem::take(&mut st.payload);
                    *st = FrameState::default();
                    return Ok(frame);
                }
                match self.stream.read(&mut st.payload[st.payload_got..]) {
                    Ok(0) => return Err(ClientError::Disconnected),
                    Ok(n) => st.payload_got += n,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut => {}
                    Err(_) => return Err(ClientError::Disconnected),
                }
            } else {
                match self.stream.read(&mut st.header[st.header_got..]) {
                    Ok(0) => return Err(ClientError::Disconnected),
                    Ok(n) => {
                        st.header_got += n;
                        if st.header_got == 4 {
                            let len = u32::from_le_bytes(st.header);
                            if len > wire::MAX_PAYLOAD {
                                return Err(ClientError::Wire(WireError::Invalid(
                                    "frame length over cap",
                                )));
                            }
                            st.expect = Some(len as usize);
                            st.payload = vec![0u8; len as usize];
                            st.payload_got = 0;
                        }
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut => {}
                    Err(_) => return Err(ClientError::Disconnected),
                }
            }
        }
    }

    fn recv_within(&mut self, expiry: Option<Instant>) -> Result<Response, ClientError> {
        let frame = self.read_frame_within(expiry)?;
        Ok(wire::decode_response(&frame)?)
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let expiry = self.deadline.expiry_from_now();
        self.recv_within(expiry)
    }

    /// Configures the session pipeline; must precede fetches.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on socket failures, malformed responses, or
    /// server-side errors.
    pub fn configure(
        &mut self,
        dataset_seed: u64,
        pipeline: PipelineSpec,
    ) -> Result<(), ClientError> {
        self.send(&Request::Configure(crate::SessionConfig { dataset_seed, pipeline }))?;
        match self.recv()? {
            Response::Configured => Ok(()),
            Response::Error { sample_id, message } => {
                Err(ClientError::Server { sample_id, message })
            }
            Response::Data(_) => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches one sample with an offload directive.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on socket failures, malformed responses, or a
    /// server-reported failure for this sample.
    pub fn fetch(
        &mut self,
        sample_id: u64,
        epoch: u64,
        split: SplitPoint,
    ) -> Result<StageData, ClientError> {
        let expiry = self.deadline.expiry_from_now();
        self.send(&Request::Fetch(FetchRequest::new(sample_id, epoch, split)))?;
        if let Some(resp) = self.pending.remove(&sample_id) {
            return Ok(resp.data);
        }
        loop {
            match self.recv_within(expiry)? {
                Response::Data(d) if d.sample_id == sample_id => return Ok(d.data),
                Response::Data(d) => {
                    self.pending.insert(d.sample_id, d);
                }
                Response::Error { sample_id, message } => {
                    return Err(ClientError::Server { sample_id, message })
                }
                Response::Configured => return Err(ClientError::UnexpectedResponse),
            }
        }
    }

    /// Fetches with full request control (offload split plus optional
    /// transfer-time re-compression), blocking for the response.
    ///
    /// # Errors
    ///
    /// Same conditions as `fetch`.
    pub fn fetch_request(&mut self, req: FetchRequest) -> Result<FetchResponse, ClientError> {
        let expiry = self.deadline.expiry_from_now();
        self.send(&Request::Fetch(req))?;
        if let Some(resp) = self.pending.remove(&req.sample_id) {
            return Ok(resp);
        }
        loop {
            match self.recv_within(expiry)? {
                Response::Data(d) if d.sample_id == req.sample_id => return Ok(d),
                Response::Data(d) => {
                    self.pending.insert(d.sample_id, d);
                }
                Response::Error { sample_id, message } => {
                    return Err(ClientError::Server { sample_id, message })
                }
                Response::Configured => return Err(ClientError::UnexpectedResponse),
            }
        }
    }

    /// Pipelined variant of `fetch_many` with full request control.
    ///
    /// Collects responses until every requested sample is satisfied, so
    /// stale responses from a previously timed-out exchange (duplicates or
    /// strays still in flight on this connection) are consumed and either
    /// claimed or discarded rather than corrupting the accounting.
    /// Responses return in request order.
    ///
    /// # Errors
    ///
    /// Returns the first failure; [`ClientError::DeadlineExceeded`] when
    /// the per-exchange budget runs out first.
    pub fn fetch_many_requests(
        &mut self,
        requests: &[FetchRequest],
    ) -> Result<Vec<FetchResponse>, ClientError> {
        let expiry = self.deadline.expiry_from_now();
        for req in requests {
            self.send(&Request::Fetch(*req))?;
        }
        let mut outstanding: std::collections::HashSet<u64> =
            requests.iter().map(|r| r.sample_id).collect();
        let mut got: std::collections::HashMap<u64, FetchResponse> =
            std::collections::HashMap::new();
        // Claim buffered strays from earlier single-fetch calls first.
        for req in requests {
            if let Some(resp) = self.pending.remove(&req.sample_id) {
                outstanding.remove(&req.sample_id);
                got.insert(req.sample_id, resp);
            }
        }
        while !outstanding.is_empty() {
            match self.recv_within(expiry)? {
                Response::Data(d) => {
                    if outstanding.remove(&d.sample_id) {
                        got.insert(d.sample_id, d);
                    }
                    // Otherwise: a duplicate or an unrequested stray from
                    // a timed-out exchange — dropped.
                }
                Response::Error { sample_id, message } => {
                    return Err(ClientError::Server { sample_id, message })
                }
                Response::Configured => return Err(ClientError::UnexpectedResponse),
            }
        }
        requests
            .iter()
            .map(|r| got.get(&r.sample_id).cloned().ok_or(ClientError::UnexpectedResponse))
            .collect()
    }

    /// Issues all requests up front, then collects every response.
    ///
    /// # Errors
    ///
    /// Returns the first failure.
    pub fn fetch_many(
        &mut self,
        requests: &[(u64, u64, SplitPoint)],
    ) -> Result<Vec<FetchResponse>, ClientError> {
        let full: Vec<FetchRequest> = requests
            .iter()
            .map(|&(sample_id, epoch, split)| FetchRequest::new(sample_id, epoch, split))
            .collect();
        self.fetch_many_requests(&full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Bandwidth;

    fn spawn_server(n: u64, cores: usize) -> (TcpStorageServer, datasets::DatasetSpec) {
        let ds = datasets::DatasetSpec::mini(n, 61);
        let store = ObjectStore::materialize_dataset(&ds, 0..n);
        let server = TcpStorageServer::bind(
            store,
            ServerConfig {
                cores,
                bandwidth: Bandwidth::from_gbps(10.0),
                queue_depth: 32,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        (server, ds)
    }

    #[test]
    fn fetch_over_real_sockets() {
        let (server, ds) = spawn_server(3, 2);
        let mut client = TcpStorageClient::connect(server.local_addr()).unwrap();
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        let raw = client.fetch(0, 0, SplitPoint::NONE).unwrap();
        assert!(raw.as_encoded().is_some());
        let cropped = client.fetch(1, 0, SplitPoint::new(2)).unwrap();
        assert_eq!(cropped.byte_len(), 150_528);
        assert!(server.response_bytes() > 150_528);
        server.shutdown();
    }

    #[test]
    fn pipelined_fetches_over_tcp() {
        let (server, ds) = spawn_server(4, 3);
        let mut client = TcpStorageClient::connect(server.local_addr()).unwrap();
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        let reqs: Vec<_> = (0..4u64).map(|id| (id, 0u64, SplitPoint::new(2))).collect();
        let responses = client.fetch_many(&reqs).unwrap();
        assert_eq!(responses.len(), 4);
        let mut ids: Vec<_> = responses.iter().map(|r| r.sample_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        server.shutdown();
    }

    #[test]
    fn two_concurrent_clients() {
        let (server, ds) = spawn_server(2, 2);
        let addr = server.local_addr();
        let seed = ds.seed;
        let threads: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = TcpStorageClient::connect(addr).unwrap();
                    client.configure(seed, PipelineSpec::standard_train()).unwrap();
                    let data = client.fetch(1, 3, SplitPoint::new(2)).unwrap();
                    data.as_image().unwrap().as_raw().to_vec()
                })
            })
            .collect();
        let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        // Same sample, same epoch, same split: identical bytes for both
        // clients (deterministic near-storage execution).
        assert_eq!(results[0], results[1]);
        server.shutdown();
    }

    #[test]
    fn unconfigured_fetch_errors_over_tcp() {
        let (server, _ds) = spawn_server(1, 1);
        let mut client = TcpStorageClient::connect(server.local_addr()).unwrap();
        let err = client.fetch(0, 0, SplitPoint::NONE).unwrap_err();
        assert!(err.to_string().contains("not configured"));
        server.shutdown();
    }

    #[test]
    fn frame_roundtrip_and_cap() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame").unwrap();
        let got = read_frame(&buf[..]).unwrap();
        assert_eq!(got, b"hello frame");
        // Oversized declared length is rejected before allocation.
        let mut bogus = Vec::new();
        bogus.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_frame(&bogus[..]).is_err());
        // Oversized outbound payloads error instead of panicking.
        let big = vec![0u8; (wire::MAX_PAYLOAD as usize) + 1];
        assert!(write_frame(Vec::new(), &big).is_err());
    }

    #[test]
    fn dropped_response_times_out_and_retry_recovers() {
        use crate::chaos::{FaultKind, FaultPlan, ServerFaultInjector};

        let ds = datasets::DatasetSpec::mini(2, 61);
        let store = ObjectStore::materialize_dataset(&ds, 0..2);
        // Drop sample 0's first response; everything else is clean.
        let plan = FaultPlan::quiet(1).script(0, 0, 0, FaultKind::Drop);
        let injector = Arc::new(ServerFaultInjector::new(0, plan));
        let server = TcpStorageServer::bind_with_injector(
            store,
            ServerConfig {
                cores: 2,
                bandwidth: Bandwidth::from_gbps(10.0),
                queue_depth: 32,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
            Some(Arc::clone(&injector)),
        )
        .unwrap();
        let mut client = TcpStorageClient::connect(server.local_addr())
            .unwrap()
            .with_deadline(Deadline::after(Duration::from_millis(300)));
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();

        let reqs = vec![FetchRequest::new(0, 0, SplitPoint::NONE)];
        let err = client.fetch_many_requests(&reqs).unwrap_err();
        assert!(matches!(err, ClientError::DeadlineExceeded), "{err:?}");
        // Attempt 1 is clean: the same connection recovers.
        assert_eq!(client.fetch_many_requests(&reqs).unwrap().len(), 1);
        assert_eq!(injector.injected(), 1);
        server.shutdown();
    }

    #[test]
    fn bit_flipped_response_surfaces_as_corrupted() {
        use crate::chaos::{FaultKind, FaultPlan, ServerFaultInjector};

        let ds = datasets::DatasetSpec::mini(1, 62);
        let store = ObjectStore::materialize_dataset(&ds, 0..1);
        let plan = FaultPlan::quiet(2).script(0, 0, 0, FaultKind::BitFlip);
        let injector = Arc::new(ServerFaultInjector::new(0, plan));
        let server = TcpStorageServer::bind_with_injector(
            store,
            ServerConfig {
                cores: 1,
                bandwidth: Bandwidth::from_gbps(10.0),
                queue_depth: 8,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
            Some(injector),
        )
        .unwrap();
        let mut client = TcpStorageClient::connect(server.local_addr())
            .unwrap()
            .with_deadline(Deadline::after(Duration::from_secs(2)));
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();

        let reqs = vec![FetchRequest::new(0, 0, SplitPoint::NONE)];
        let err = client.fetch_many_requests(&reqs).unwrap_err();
        assert!(matches!(err, ClientError::Corrupted), "{err:?}");
        assert_eq!(client.fetch_many_requests(&reqs).unwrap().len(), 1);
        server.shutdown();
    }
}
