//! A real TCP transport for the fetch protocol — pipelined and
//! multiplexed.
//!
//! [`StorageServer`](crate::StorageServer) demonstrates the data path with
//! in-process pipes; this module runs the same protocol over actual
//! sockets. Since the serving-path rebuild the server is
//! **readiness-driven**: one event-loop thread owns every connection as a
//! nonblocking `TcpStream`, demultiplexes incoming frames by their
//! [`wire`] `request_id` into the shared worker pool, and muxes completed
//! responses back out of order onto the right connection. A single
//! connection therefore carries many in-flight exchanges at once, bounded
//! by [`ServerConfig::max_in_flight`] — past that depth the loop stops
//! reading the socket and TCP backpressure propagates to the client.
//!
//! The hot path is allocation-conscious end to end: frames decode in
//! place out of per-connection scratch buffers that persist across frames,
//! responses encode into pooled buffers recycled once flushed, and every
//! socket write is a vectored `header+payload` pair — no intermediate
//! copies on either side.
//!
//! Frame format: `u32` little-endian payload length (capped at
//! [`wire::MAX_PAYLOAD`]) followed by the payload (a [`wire`]-encoded
//! request or response, which itself opens with the
//! `ver request_id` multiplexing header and ends with the CRC32 trailer).
//!
//! # Multi-tenancy
//!
//! The server is tenant-aware: v3 request frames carry a `tenant_id`
//! (v2 frames resolve to [`TenantId::DEFAULT`] unless the
//! [`TenantPolicy`] requires explicit ids), and dispatch to the worker
//! pool goes through a per-tenant deficit-weighted round-robin scheduler
//! instead of a FIFO — a backlogged tenant cannot starve others past its
//! weight share. Admission control runs at decode time: a tenant over
//! its in-flight bound or byte quota gets a typed, retryable
//! `tenant-throttled` error reply instead of a queue slot, and
//! per-tenant quota buckets are charged where pacing already happens —
//! at encode, when response bytes reach the wire.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel;
use netsim::{TokenBucket, TrafficMeter};
use parking_lot::RwLock;
use pipeline::{PipelineSpec, SplitPoint, StageData};
use tenant::{ByteBudget, DwrrScheduler, TenantId, TenantPolicy, TenantStats};

use crate::chaos::{FaultDirective, FaultKind, ServerFaultInjector};
use crate::client::{server_error, TENANT_THROTTLED_PREFIX};
use crate::protocol::{FetchRequest, FetchResponse, Request, Response};
use crate::wire::{self, WireError};
use crate::{chaos, ClientError, Deadline, NearStorageExecutor, ObjectStore, ServerConfig};

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates socket errors; an over-cap payload surfaces as
/// `InvalidInput` before any bytes hit the wire.
pub fn write_frame<W: Write>(mut w: W, payload: &[u8]) -> io::Result<()> {
    if payload.len() as u64 > u64::from(wire::MAX_PAYLOAD) {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame over cap"));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Writes one length-prefixed frame as a vectored `header+payload` pair —
/// the zero-copy variant of [`write_frame`]: the 4-byte length header and
/// the payload reach the socket in single `writev`-style calls without
/// being glued into an intermediate buffer.
///
/// # Errors
///
/// Propagates socket errors; an over-cap payload surfaces as
/// `InvalidInput` before any bytes hit the wire.
pub fn write_frame_vectored<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() as u64 > u64::from(wire::MAX_PAYLOAD) {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame over cap"));
    }
    let header = (payload.len() as u32).to_le_bytes();
    let total = header.len() + payload.len();
    let mut written = 0usize;
    while written < total {
        let n = if written < header.len() {
            let bufs = [IoSlice::new(&header[written..]), IoSlice::new(payload)];
            w.write_vectored(&bufs)?
        } else {
            w.write(&payload[written - header.len()..])?
        };
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::WriteZero, "socket closed mid-frame"));
        }
        written += n;
    }
    w.flush()
}

/// Reads one length-prefixed frame into a fresh buffer.
///
/// # Errors
///
/// Propagates socket errors; oversized declared lengths surface as
/// `InvalidData` before any allocation.
pub fn read_frame<R: Read>(mut r: R) -> io::Result<Vec<u8>> {
    let mut payload = Vec::new();
    read_frame_into(&mut r, &mut payload)?;
    Ok(payload)
}

/// Reads one length-prefixed frame into `payload` (cleared first), reusing
/// its capacity — the hot-path variant of [`read_frame`]: a steady-state
/// connection reads frames with zero per-frame allocations.
///
/// # Errors
///
/// Propagates socket errors; oversized declared lengths surface as
/// `InvalidData` before any allocation.
pub fn read_frame_into<R: Read>(r: &mut R, payload: &mut Vec<u8>) -> io::Result<()> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > wire::MAX_PAYLOAD {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame length over cap"));
    }
    payload.clear();
    payload.resize(len as usize, 0);
    r.read_exact(payload)
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// A request handed to the worker pool, tagged with its origin so the
/// event loop can mux the response back to the right connection.
struct Job {
    conn: u64,
    request_id: u32,
    tenant: TenantId,
    request: Request,
    session: Arc<RwLock<Option<NearStorageExecutor>>>,
}

/// A finished response heading back to the event loop, paired with the
/// fault (if any) the writer must apply to its encoded frame.
struct Reply {
    conn: u64,
    request_id: u32,
    tenant: TenantId,
    response: Response,
    fault: Option<FaultDirective>,
}

/// Incremental nonblocking frame reader: per-connection scratch that
/// persists across frames (and across `WouldBlock`s mid-frame), so a
/// steady-state connection parses frames with zero allocations.
#[derive(Debug, Default)]
struct FrameReader {
    header: [u8; 4],
    header_got: usize,
    payload: Vec<u8>,
    payload_got: usize,
    expect: Option<usize>,
}

/// Outcome of one [`FrameReader::poll`] step.
enum ReadStatus {
    /// A complete frame is buffered; process it, then call `reset`.
    Frame,
    /// No more bytes available right now.
    WouldBlock,
    /// Peer closed the read half (or the stream hard-errored).
    Closed,
}

impl FrameReader {
    /// Advances by at most one frame worth of reads on a nonblocking
    /// stream.
    fn poll<R: Read>(&mut self, r: &mut R) -> ReadStatus {
        loop {
            if let Some(want) = self.expect {
                if self.payload_got == want {
                    return ReadStatus::Frame;
                }
                match r.read(&mut self.payload[self.payload_got..]) {
                    Ok(0) => return ReadStatus::Closed,
                    Ok(n) => self.payload_got += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        return ReadStatus::WouldBlock
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return ReadStatus::Closed,
                }
            } else {
                match r.read(&mut self.header[self.header_got..]) {
                    Ok(0) => return ReadStatus::Closed,
                    Ok(n) => {
                        self.header_got += n;
                        if self.header_got == 4 {
                            let len = u32::from_le_bytes(self.header);
                            if len > wire::MAX_PAYLOAD {
                                return ReadStatus::Closed;
                            }
                            self.expect = Some(len as usize);
                            self.payload.clear();
                            self.payload.resize(len as usize, 0);
                            self.payload_got = 0;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        return ReadStatus::WouldBlock
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return ReadStatus::Closed,
                }
            }
        }
    }

    /// The completed frame's bytes (valid after `poll` returned `Frame`).
    fn frame(&self) -> &[u8] {
        &self.payload[..self.payload_got]
    }

    /// Clears per-frame state while keeping the payload buffer's capacity.
    fn reset(&mut self) {
        self.header_got = 0;
        self.payload_got = 0;
        self.expect = None;
        self.payload.clear();
    }
}

/// One response frame queued on a connection, with a release time from
/// injected delays and the shared bandwidth model.
///
/// The body starts [`OutBody::Pending`] and is encoded only when it
/// reaches the socket: a deep pipelined queue then holds cheap
/// refcounted responses rather than one fully-encoded frame per entry,
/// so queued memory stays O(connections x sample), not O(in-flight x
/// sample), and the encode-buffer pool covers every write.
struct OutFrame {
    tenant: TenantId,
    body: OutBody,
    not_before: Instant,
}

enum OutBody {
    /// Awaiting wire encoding (and any wire-level chaos mutation).
    Pending { request_id: u32, response: Response, fault: Option<FaultDirective> },
    /// On the wire, with resumable progress across `WouldBlock`s.
    Encoded { header: [u8; 4], payload: Vec<u8>, written: usize },
}

/// Per-connection state owned by the event loop.
struct Conn {
    stream: TcpStream,
    session: Arc<RwLock<Option<NearStorageExecutor>>>,
    reader: FrameReader,
    outq: VecDeque<OutFrame>,
    in_flight: usize,
    peer_closed: bool,
    dead: bool,
}

/// Upper bound on pooled response-encode buffers the event loop retains.
const SPARE_BUFFER_POOL: usize = 64;

/// Admission rejects a quota-metered tenant whose byte debt projects past
/// this horizon. Debts inside the horizon still queue (the quota bucket
/// paces their frames at encode), so short bursts ride out at the wire;
/// past it the tenant gets an immediate retryable throttle error instead
/// of holding a queue slot for a frame that cannot send for a while.
const QUOTA_REJECT_HORIZON_SECS: f64 = 0.1;

/// Per-tenant admission state: the policy, live in-flight counts, and
/// quota buckets. Grouped in one struct so admission can run while the
/// event loop holds a connection borrow (field-disjoint from `conns`).
struct Admission {
    policy: TenantPolicy,
    /// Live per-tenant request counts, across every connection.
    in_flight: BTreeMap<u16, usize>,
    /// Quota buckets, created lazily for metered tenants.
    quotas: BTreeMap<u16, ByteBudget>,
    /// Epoch converting wall clock to the buckets' `f64` seconds.
    started: Instant,
}

impl Admission {
    fn new(policy: TenantPolicy) -> Admission {
        Admission {
            policy,
            in_flight: BTreeMap::new(),
            quotas: BTreeMap::new(),
            started: Instant::now(),
        }
    }

    fn now_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Admission check for one decoded request: `None` admits,
    /// `Some(message)` rejects with a marker-prefixed reason the client
    /// surfaces as [`ClientError::TenantThrottled`].
    fn check(&mut self, tenant: TenantId) -> Option<String> {
        let spec = *self.policy.spec(tenant);
        let live = self.in_flight.get(&tenant.0).copied().unwrap_or(0);
        if live >= spec.max_in_flight {
            return Some(format!(
                "{TENANT_THROTTLED_PREFIX}{tenant} at its in-flight bound ({})",
                spec.max_in_flight
            ));
        }
        if let Some(rate) = spec.quota_bytes_per_sec {
            let now = self.now_secs();
            let budget = self
                .quotas
                .entry(tenant.0)
                .or_insert_with(|| ByteBudget::new(rate, spec.burst_bytes.max(1)));
            let debt = budget.debt(now);
            if debt > QUOTA_REJECT_HORIZON_SECS {
                return Some(format!(
                    "{TENANT_THROTTLED_PREFIX}{tenant} over its byte quota; clears in {:.0} ms",
                    debt * 1e3
                ));
            }
        }
        None
    }

    fn admitted(&mut self, tenant: TenantId) {
        *self.in_flight.entry(tenant.0).or_insert(0) += 1;
    }

    fn completed(&mut self, tenant: TenantId) {
        if let Some(n) = self.in_flight.get_mut(&tenant.0) {
            *n = n.saturating_sub(1);
        }
    }

    /// Charges a response's bytes to the tenant's quota bucket, returning
    /// the pacing delay (zero for unmetered tenants).
    fn charge(&mut self, tenant: TenantId, bytes: u64) -> Duration {
        let now = self.now_secs();
        match self.quotas.get_mut(&tenant.0) {
            Some(b) => Duration::from_secs_f64(b.charge(bytes, now)),
            None => Duration::ZERO,
        }
    }
}

/// A storage server listening on a real TCP socket.
#[derive(Debug)]
pub struct TcpStorageServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    meter: TrafficMeter,
    stats: Arc<RwLock<BTreeMap<u16, TenantStats>>>,
    event_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TcpStorageServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// serving.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; a zero-core config surfaces as
    /// `InvalidInput`.
    pub fn bind(store: ObjectStore, config: ServerConfig, addr: &str) -> io::Result<Self> {
        Self::bind_with_injector(store, config, addr, None)
    }

    /// Like [`TcpStorageServer::bind`], but every fetch response first
    /// consults `injector` — the server-side half of the chaos layer.
    /// Faults are applied to the encoded frame on the wire itself: drops
    /// skip the write, delays hold the frame past its release time,
    /// truncations shorten the frame, bit-flips corrupt it. Configure
    /// responses are never faulted.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; a zero-core or zero-in-flight config
    /// surfaces as `InvalidInput`.
    pub fn bind_with_injector(
        store: ObjectStore,
        config: ServerConfig,
        addr: &str,
        injector: Option<Arc<ServerFaultInjector>>,
    ) -> io::Result<Self> {
        Self::bind_with_policy(store, config, TenantPolicy::default(), addr, injector)
    }

    /// Like [`TcpStorageServer::bind_with_injector`], but serving under a
    /// [`TenantPolicy`]: requests are attributed to the tenant id in
    /// their (v3) frame, dispatched in deficit-weighted round-robin order
    /// across tenants, paced against per-tenant byte quotas, and rejected
    /// with a retryable throttle error past a tenant's in-flight bound or
    /// quota debt. The default policy reproduces the pre-tenancy
    /// behaviour exactly (one implicit tenant, unmetered, weight 1).
    ///
    /// # Errors
    ///
    /// Propagates bind failures; a zero-core or zero-in-flight config
    /// surfaces as `InvalidInput`.
    pub fn bind_with_policy(
        store: ObjectStore,
        config: ServerConfig,
        policy: TenantPolicy,
        addr: &str,
        injector: Option<Arc<ServerFaultInjector>>,
    ) -> io::Result<Self> {
        if config.cores == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "server needs at least one core",
            ));
        }
        if config.max_in_flight == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "server needs max_in_flight >= 1",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let meter = TrafficMeter::new();
        let stats: Arc<RwLock<BTreeMap<u16, TenantStats>>> = Arc::new(RwLock::new(BTreeMap::new()));

        let (work_tx, work_rx) = channel::unbounded::<Job>();
        let (reply_tx, reply_rx) = channel::unbounded::<Reply>();
        let workers = (0..config.cores)
            .map(|_| {
                let rx = work_rx.clone();
                let tx = reply_tx.clone();
                let store = store.clone();
                let injector = injector.clone();
                std::thread::spawn(move || worker_loop(&rx, &tx, &store, injector.as_deref()))
            })
            .collect();

        let loop_stop = Arc::clone(&stop);
        let loop_meter = meter.clone();
        let loop_stats = Arc::clone(&stats);
        let event_thread = std::thread::spawn(move || {
            let mut el = EventLoop {
                listener,
                conns: HashMap::new(),
                next_conn: 0,
                work_tx,
                reply_rx,
                bucket: TokenBucket::new(
                    config.bandwidth,
                    (config.bandwidth.bytes_per_second() * 0.02).max(1500.0) as usize,
                ),
                meter: loop_meter,
                stop: loop_stop,
                max_in_flight: config.max_in_flight,
                idle_sleep: config.read_poll.min(Duration::from_millis(1)),
                spare: Vec::new(),
                admission: Admission::new(policy),
                // Count-fair DWRR: requests cost 1 unit each (responses
                // are roughly sample-sized; byte fairness is enforced by
                // the per-tenant quota buckets at encode).
                sched: DwrrScheduler::new(1),
                dispatched: 0,
                // Small enough that the scheduler — not the FIFO worker
                // channel — decides inter-tenant order under backlog,
                // large enough to keep every core fed.
                dispatch_cap: config.cores.saturating_mul(2).max(2),
                stats: loop_stats,
            };
            el.run();
        });

        Ok(TcpStorageServer {
            addr: local,
            stop,
            meter,
            stats,
            event_thread: Some(event_thread),
            workers,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bytes written to clients so far.
    pub fn response_bytes(&self) -> u64 {
        self.meter.bytes()
    }

    /// A clone of the response-byte meter (keeps counting after the
    /// server is consumed by `shutdown`).
    pub fn meter(&self) -> TrafficMeter {
        self.meter.clone()
    }

    /// A snapshot of per-tenant serving counters, keyed by tenant id.
    /// Tenants appear once their first request is decoded; `completed`
    /// counts responses handed back by the workers (including per-sample
    /// errors), `bytes_sent` counts frame payloads that reached the wire.
    pub fn tenant_stats(&self) -> BTreeMap<u16, TenantStats> {
        self.stats.read().clone()
    }

    /// Appends one observation per tenant counter to `hub` at time
    /// `t_seconds` (the caller's clock): `tenant{id}.served`,
    /// `tenant{id}.throttled`, and `tenant{id}.bytes`, all cumulative, so
    /// `telemetry::windowed_rate` over the resulting series yields live
    /// per-tenant serving and throttle rates.
    ///
    /// # Errors
    ///
    /// Propagates [`telemetry::SeriesError`] when `t_seconds` rewinds a
    /// series' clock (callers must sample with a monotonic clock).
    pub fn export_tenant_telemetry(
        &self,
        hub: &mut telemetry::TelemetryHub,
        t_seconds: f64,
    ) -> Result<(), telemetry::SeriesError> {
        for (id, stats) in self.tenant_stats() {
            hub.push(&format!("tenant{id}.served"), t_seconds, stats.completed as f64)?;
            hub.push(&format!("tenant{id}.throttled"), t_seconds, stats.throttled as f64)?;
            hub.push(&format!("tenant{id}.bytes"), t_seconds, stats.bytes_sent as f64)?;
        }
        Ok(())
    }

    /// Stops accepting, drains workers, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.event_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for TcpStorageServer {
    fn drop(&mut self) {
        // Signal-only teardown (non-blocking); `shutdown()` joins.
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// The readiness-driven connection layer: one thread, every connection
/// nonblocking, frames demuxed in and muxed out by `request_id`.
struct EventLoop {
    listener: TcpListener,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    work_tx: channel::Sender<Job>,
    reply_rx: channel::Receiver<Reply>,
    bucket: TokenBucket,
    meter: TrafficMeter,
    stop: Arc<AtomicBool>,
    max_in_flight: usize,
    idle_sleep: Duration,
    /// Recycled response-encode buffers (capped at [`SPARE_BUFFER_POOL`]).
    spare: Vec<Vec<u8>>,
    /// Tenant policy plus live admission state (in-flight, quotas).
    admission: Admission,
    /// Admitted-but-undispatched jobs, drained in DWRR order.
    sched: DwrrScheduler<Job>,
    /// Jobs currently inside the worker pool (sent, reply not drained).
    dispatched: usize,
    /// Cap on `dispatched`: excess jobs wait in the scheduler, where
    /// inter-tenant order is still decided by weights.
    dispatch_cap: usize,
    /// Per-tenant counters shared with the server handle.
    stats: Arc<RwLock<BTreeMap<u16, TenantStats>>>,
}

impl EventLoop {
    fn run(&mut self) {
        while !self.stop.load(Ordering::SeqCst) {
            let mut progressed = false;
            progressed |= self.accept_new();
            progressed |= self.drain_replies();
            progressed |= self.dispatch_jobs();
            let ids: Vec<u64> = self.conns.keys().copied().collect();
            for id in ids {
                progressed |= self.flush_writes(id);
                progressed |= self.read_requests(id);
            }
            progressed |= self.dispatch_jobs();
            self.reap();
            if !progressed {
                std::thread::sleep(self.idle_sleep);
            }
        }
        // Dropping `work_tx` (with the loop) disconnects the worker pool.
    }

    /// Accepts every connection currently pending on the listener.
    fn accept_new(&mut self) -> bool {
        let mut progressed = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue; // misconfigured socket: drop it, keep serving
                    }
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            session: Arc::new(RwLock::new(None)),
                            reader: FrameReader::default(),
                            outq: VecDeque::new(),
                            in_flight: 0,
                            peer_closed: false,
                            dead: false,
                        },
                    );
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.stop.store(true, Ordering::SeqCst);
                    break;
                }
            }
        }
        progressed
    }

    /// Moves every completed response from the workers onto its
    /// connection's write queue, applying wire-level chaos faults.
    fn drain_replies(&mut self) -> bool {
        let mut progressed = false;
        while let Ok(reply) = self.reply_rx.try_recv() {
            progressed = true;
            // Tenant accounting happens whether or not the connection is
            // still alive — the worker slot and in-flight credit are
            // released either way.
            self.dispatched = self.dispatched.saturating_sub(1);
            self.admission.completed(reply.tenant);
            self.stats.write().entry(reply.tenant.0).or_default().completed += 1;
            let Some(conn) = self.conns.get_mut(&reply.conn) else {
                continue; // connection died while the job was in flight
            };
            conn.in_flight = conn.in_flight.saturating_sub(1);
            let mut delay = Duration::ZERO;
            match reply.fault {
                Some(FaultDirective { kind: FaultKind::Drop, .. }) => continue,
                Some(FaultDirective { kind: FaultKind::Delay(d), .. }) => delay = d,
                // Truncate/BitFlip mutate the encoded bytes at write time;
                // Error faults were applied at the worker.
                _ => {}
            }
            conn.outq.push_back(OutFrame {
                tenant: reply.tenant,
                body: OutBody::Pending {
                    request_id: reply.request_id,
                    response: reply.response,
                    fault: reply.fault,
                },
                not_before: Instant::now() + delay,
            });
        }
        progressed
    }

    /// Moves admitted jobs from the scheduler into the worker pool, in
    /// DWRR order, keeping at most `dispatch_cap` jobs inside the pool's
    /// FIFO channel at once — so under backlog it is the weighted
    /// scheduler, not arrival order, that decides which tenant runs next.
    fn dispatch_jobs(&mut self) -> bool {
        let mut progressed = false;
        while self.dispatched < self.dispatch_cap {
            let Some((_, job)) = self.sched.pop() else { break };
            self.dispatched += 1;
            progressed = true;
            if self.work_tx.send(job).is_err() {
                // Worker pool gone: the loop is shutting down.
                self.stop.store(true, Ordering::SeqCst);
                break;
            }
        }
        progressed
    }

    /// Flushes as much of `id`'s write queue as the socket accepts, in
    /// vectored `header+payload` writes. Frames are encoded here, just
    /// before their bytes hit the wire — one pooled buffer per in-flight
    /// write, however deep the queue behind it.
    fn flush_writes(&mut self, id: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&id) else { return false };
        let mut progressed = false;
        while let Some(frame) = conn.outq.front_mut() {
            let now = Instant::now();
            if frame.not_before > now {
                break; // token bucket / injected delay: not released yet
            }
            if let OutBody::Pending { request_id, response, fault } = &frame.body {
                let mut payload = self.spare.pop().unwrap_or_default();
                wire::encode_response_into(*request_id, response, &mut payload);
                match *fault {
                    Some(FaultDirective { kind: FaultKind::Truncate, salt }) => {
                        chaos::truncate_payload(&mut payload, salt);
                    }
                    Some(FaultDirective { kind: FaultKind::BitFlip, salt }) => {
                        chaos::flip_bit(&mut payload, salt);
                    }
                    _ => {}
                }
                // The shared-bandwidth and per-tenant quota charges land
                // when bytes reach the wire, not when the worker finished
                // computing; the frame is held to the later release time.
                let delay = self
                    .bucket
                    .delay_for(payload.len())
                    .max(self.admission.charge(frame.tenant, payload.len() as u64));
                frame.body = OutBody::Encoded {
                    header: (payload.len() as u32).to_le_bytes(),
                    payload,
                    written: 0,
                };
                progressed = true;
                if delay > Duration::ZERO {
                    frame.not_before = now + delay;
                    break;
                }
            }
            let OutBody::Encoded { header, payload, written } = &mut frame.body else {
                unreachable!("front frame was encoded above")
            };
            let total = header.len() + payload.len();
            let result = if *written < header.len() {
                let bufs = [IoSlice::new(&header[*written..]), IoSlice::new(payload)];
                conn.stream.write_vectored(&bufs)
            } else {
                conn.stream.write(&payload[*written - header.len()..])
            };
            match result {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    progressed = true;
                    *written += n;
                    if *written == total {
                        let sent = payload.len() as u64;
                        self.meter.record(sent);
                        let done = conn.outq.pop_front().expect("front frame exists");
                        self.stats.write().entry(done.tenant.0).or_default().bytes_sent += sent;
                        if self.spare.len() < SPARE_BUFFER_POOL {
                            if let OutBody::Encoded { mut payload, .. } = done.body {
                                payload.clear();
                                self.spare.push(payload);
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        progressed
    }

    /// Reads and dispatches frames from `id` until the socket runs dry or
    /// the connection reaches its in-flight bound (backpressure: the
    /// unread bytes stay in the kernel buffer and TCP flow control pushes
    /// back on the client).
    fn read_requests(&mut self, id: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&id) else { return false };
        if conn.dead || conn.peer_closed {
            return false;
        }
        let mut progressed = false;
        while conn.in_flight < self.max_in_flight {
            match conn.reader.poll(&mut conn.stream) {
                ReadStatus::Frame => {
                    progressed = true;
                    let require = self.admission.policy.require_tenant_id;
                    match wire::decode_request_tenant(conn.reader.frame(), require) {
                        Ok((_, _, Request::Shutdown)) => {
                            self.stop.store(true, Ordering::SeqCst);
                            conn.reader.reset();
                            return true;
                        }
                        Ok((request_id, tenant_raw, request)) => {
                            let tenant = TenantId(tenant_raw);
                            if let Some(message) = self.admission.check(tenant) {
                                // Over quota or in-flight bound: reject
                                // instead of queueing. The reply carries
                                // the throttle marker so the client sees
                                // a typed, retryable error.
                                self.stats.write().entry(tenant.0).or_default().throttled += 1;
                                conn.outq.push_back(OutFrame {
                                    tenant,
                                    body: OutBody::Pending {
                                        request_id,
                                        response: Response::Error { sample_id: None, message },
                                        fault: None,
                                    },
                                    not_before: Instant::now(),
                                });
                            } else {
                                conn.in_flight += 1;
                                self.admission.admitted(tenant);
                                self.stats.write().entry(tenant.0).or_default().admitted += 1;
                                let weight = self.admission.policy.spec(tenant).weight;
                                self.sched.set_weight(tenant, weight);
                                let job = Job {
                                    conn: id,
                                    request_id,
                                    tenant,
                                    request,
                                    session: Arc::clone(&conn.session),
                                };
                                self.sched.push(tenant, 1, job);
                            }
                        }
                        Err(e) => {
                            // Echo the id best-effort so the error routes
                            // back to the caller that sent the bad frame.
                            let request_id =
                                wire::peek_request_id(conn.reader.frame()).unwrap_or(0);
                            let response = Response::Error {
                                sample_id: None,
                                message: format!("bad request: {e}"),
                            };
                            conn.outq.push_back(OutFrame {
                                tenant: TenantId::DEFAULT,
                                body: OutBody::Pending { request_id, response, fault: None },
                                not_before: Instant::now(),
                            });
                        }
                    }
                    conn.reader.reset();
                }
                ReadStatus::WouldBlock => break,
                ReadStatus::Closed => {
                    conn.peer_closed = true;
                    break;
                }
            }
        }
        progressed
    }

    /// Drops connections that are finished: hard-errored, or peer-closed
    /// with nothing left to compute or flush.
    fn reap(&mut self) {
        self.conns.retain(|_, c| {
            if c.dead {
                return false;
            }
            !(c.peer_closed && c.in_flight == 0 && c.outq.is_empty())
        });
    }
}

fn worker_loop(
    rx: &channel::Receiver<Job>,
    reply_tx: &channel::Sender<Reply>,
    store: &ObjectStore,
    injector: Option<&ServerFaultInjector>,
) {
    while let Ok(job) = rx.recv() {
        let (response, fault) = match job.request {
            Request::Configure(cfg) => {
                *job.session.write() = Some(NearStorageExecutor::new(store.clone(), cfg));
                (Response::Configured, None)
            }
            Request::Fetch(req) => {
                let fault = injector.and_then(|i| i.decide(req.sample_id, req.epoch));
                if matches!(fault, Some(FaultDirective { kind: FaultKind::Error, .. })) {
                    // Error faults replace the response before execution.
                    (
                        Response::Error {
                            sample_id: Some(req.sample_id),
                            message: "injected storage fault".to_string(),
                        },
                        fault,
                    )
                } else {
                    let executor = job.session.read().clone();
                    let response = match executor {
                        Some(ex) => match ex.execute(req) {
                            Ok(resp) => Response::Data(resp),
                            Err(e) => Response::Error {
                                sample_id: Some(req.sample_id),
                                message: e.to_string(),
                            },
                        },
                        None => Response::Error {
                            sample_id: Some(req.sample_id),
                            message: "session not configured".to_string(),
                        },
                    };
                    (response, fault)
                }
            }
            Request::Shutdown => continue, // handled at the connection layer
        };
        let reply = Reply {
            conn: job.conn,
            request_id: job.request_id,
            tenant: job.tenant,
            response,
            fault,
        };
        if reply_tx.send(reply).is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Partially read frame state, persisted across deadline expiries so a
/// timed-out read never desynchronizes the stream: the next call resumes
/// the same frame exactly where the budget ran out. The payload buffer is
/// reused across frames, so steady-state receiving is allocation-free.
#[derive(Debug, Default)]
struct FrameState {
    header: [u8; 4],
    header_got: usize,
    payload: Vec<u8>,
    payload_got: usize,
    expect: Option<usize>,
}

impl FrameState {
    /// Clears per-frame state while keeping the payload buffer's capacity.
    fn reset(&mut self) {
        self.header_got = 0;
        self.payload_got = 0;
        self.expect = None;
        self.payload.clear();
    }
}

/// Client for a [`TcpStorageServer`], with a pipelined exchange API.
///
/// [`TcpStorageClient::submit`] puts a fetch on the wire and returns its
/// `request_id`; [`TcpStorageClient::await_response`] claims a completion
/// **by id**, buffering other in-flight completions for their own awaits.
/// Many requests therefore ride one connection concurrently (up to the
/// server's per-connection in-flight bound), and a stale response from a
/// timed-out earlier exchange can never satisfy the wrong request — its
/// id no longer matches anything outstanding, so it is discarded.
///
/// The batch helpers ([`TcpStorageClient::fetch_many_requests`] and
/// friends) are built on submit/await and return responses in request
/// order.
#[derive(Debug)]
pub struct TcpStorageClient {
    stream: TcpStream,
    deadline: Deadline,
    /// Tenant identity stamped on every request frame. `None` sends
    /// legacy v2 (tenant-less) frames, which a tenant-aware server
    /// attributes to [`TenantId::DEFAULT`].
    tenant: Option<u16>,
    /// Monotonic multiplexing id; 0 is reserved for server-side replies to
    /// frames whose id could not be recovered.
    next_id: u32,
    frame: FrameState,
    /// Reusable request-encode buffer: steady-state sends are
    /// allocation-free.
    send_buf: Vec<u8>,
    /// Ids submitted and not yet claimed, with each request's own expiry
    /// (deadlines are per-request: the budget starts at submit).
    outstanding: HashMap<u32, Option<Instant>>,
    /// Arrived-but-unclaimed completions, keyed by request id.
    completed: HashMap<u32, Response>,
    /// Ids abandoned by a deadline expiry; their late responses are
    /// discarded on arrival instead of accumulating.
    abandoned: HashSet<u32>,
}

impl TcpStorageClient {
    /// Connects to a server (no deadline: reads block until the server
    /// answers or hangs up).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> io::Result<TcpStorageClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpStorageClient {
            stream,
            deadline: Deadline::NONE,
            tenant: None,
            next_id: 1,
            frame: FrameState::default(),
            send_buf: Vec::new(),
            outstanding: HashMap::new(),
            completed: HashMap::new(),
            abandoned: HashSet::new(),
        })
    }

    /// Sets the per-request time budget. Every subsequent submit starts a
    /// fresh budget for that request; expiry surfaces as
    /// [`ClientError::DeadlineExceeded`] from the await that hits it.
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.deadline = deadline;
    }

    /// Builder form of [`TcpStorageClient::set_deadline`].
    pub fn with_deadline(mut self, deadline: Deadline) -> TcpStorageClient {
        self.deadline = deadline;
        self
    }

    /// The configured per-request deadline.
    pub fn deadline(&self) -> Deadline {
        self.deadline
    }

    /// Sets the tenant identity stamped on every subsequent request
    /// frame (switches the connection to wire v3 framing).
    pub fn set_tenant(&mut self, tenant: u16) {
        self.tenant = Some(tenant);
    }

    /// Builder form of [`TcpStorageClient::set_tenant`].
    #[must_use]
    pub fn with_tenant(mut self, tenant: u16) -> TcpStorageClient {
        self.tenant = Some(tenant);
        self
    }

    /// The tenant identity, when one is set.
    pub fn tenant(&self) -> Option<u16> {
        self.tenant
    }

    fn alloc_id(&mut self) -> u32 {
        let id = self.next_id;
        // Skip the reserved id 0 on wrap.
        self.next_id = self.next_id.checked_add(1).unwrap_or(1);
        id
    }

    fn send_framed(&mut self, request_id: u32, req: &Request) -> Result<(), ClientError> {
        match self.tenant {
            Some(t) => wire::encode_request_tenant_into(request_id, t, req, &mut self.send_buf),
            None => wire::encode_request_into(request_id, req, &mut self.send_buf),
        }
        write_frame_vectored(&mut self.stream, &self.send_buf)
            .map_err(|_| ClientError::Disconnected)
    }

    /// Submits one fetch without waiting, returning the id to await. The
    /// request's deadline budget (if any) starts now.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Disconnected`] on socket failures.
    pub fn submit(&mut self, req: FetchRequest) -> Result<u32, ClientError> {
        let id = self.alloc_id();
        self.send_framed(id, &Request::Fetch(req))?;
        self.outstanding.insert(id, self.deadline.expiry_from_now());
        Ok(id)
    }

    /// Submits a whole batch of fetches in one write: every frame is
    /// encoded back-to-back into a single buffer and pushed through one
    /// syscall, so a pipelined batch costs one kernel crossing (and one
    /// server wakeup) instead of one per request. Deadline budgets start
    /// when the batch hits the socket.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Disconnected`] on socket failures; no ids
    /// are registered if the batch write fails.
    pub fn submit_all(&mut self, requests: &[FetchRequest]) -> Result<Vec<u32>, ClientError> {
        let mut ids = Vec::with_capacity(requests.len());
        let mut batch: Vec<u8> = Vec::new();
        for req in requests {
            let id = self.alloc_id();
            match self.tenant {
                Some(t) => wire::encode_request_tenant_into(
                    id,
                    t,
                    &Request::Fetch(*req),
                    &mut self.send_buf,
                ),
                None => wire::encode_request_into(id, &Request::Fetch(*req), &mut self.send_buf),
            }
            batch.extend_from_slice(&(self.send_buf.len() as u32).to_le_bytes());
            batch.extend_from_slice(&self.send_buf);
            ids.push(id);
        }
        self.stream.write_all(&batch).map_err(|_| ClientError::Disconnected)?;
        for &id in &ids {
            self.outstanding.insert(id, self.deadline.expiry_from_now());
        }
        Ok(ids)
    }

    /// Number of submitted-but-unclaimed requests on this connection.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Reads one frame into the reusable scratch, resuming any partial
    /// frame from a previous expired call, giving up when `expiry` passes.
    fn read_frame_within(&mut self, expiry: Option<Instant>) -> Result<(), ClientError> {
        loop {
            let timeout = match expiry {
                None => None,
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        return Err(ClientError::DeadlineExceeded);
                    }
                    Some(at - now)
                }
            };
            self.stream.set_read_timeout(timeout).map_err(|_| ClientError::Disconnected)?;
            let st = &mut self.frame;
            if let Some(want) = st.expect {
                if st.payload_got == want {
                    return Ok(());
                }
                match self.stream.read(&mut st.payload[st.payload_got..]) {
                    Ok(0) => return Err(ClientError::Disconnected),
                    Ok(n) => st.payload_got += n,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut
                            || e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return Err(ClientError::Disconnected),
                }
            } else {
                match self.stream.read(&mut st.header[st.header_got..]) {
                    Ok(0) => return Err(ClientError::Disconnected),
                    Ok(n) => {
                        st.header_got += n;
                        if st.header_got == 4 {
                            let len = u32::from_le_bytes(st.header);
                            if len > wire::MAX_PAYLOAD {
                                return Err(ClientError::Wire(WireError::Invalid(
                                    "frame length over cap",
                                )));
                            }
                            st.expect = Some(len as usize);
                            st.payload.clear();
                            st.payload.resize(len as usize, 0);
                            st.payload_got = 0;
                        }
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut
                            || e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return Err(ClientError::Disconnected),
                }
            }
        }
    }

    /// Receives one framed response, decoding in place out of the scratch.
    fn recv_framed_within(
        &mut self,
        expiry: Option<Instant>,
    ) -> Result<(u32, Response), ClientError> {
        self.read_frame_within(expiry)?;
        let result = wire::decode_response_framed(self.frame.frame_bytes());
        self.frame.reset();
        Ok(result?)
    }

    /// Blocks until the response for `id` arrives, buffering other
    /// completions for their own awaits. On deadline expiry the id is
    /// abandoned: a late response is discarded instead of poisoning a
    /// later exchange.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on socket failures, malformed responses,
    /// deadline expiry, or a server-reported failure for this request.
    pub fn await_response(&mut self, id: u32) -> Result<FetchResponse, ClientError> {
        match self.await_any(id)? {
            Response::Data(d) => Ok(d),
            Response::Error { sample_id, message } => Err(server_error(sample_id, message)),
            Response::Configured => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Claims the raw protocol response for `id`.
    fn await_any(&mut self, id: u32) -> Result<Response, ClientError> {
        loop {
            if let Some(resp) = self.completed.remove(&id) {
                self.outstanding.remove(&id);
                return Ok(resp);
            }
            let expiry = self.outstanding.get(&id).copied().flatten();
            match self.recv_framed_within(expiry) {
                Ok((rid, resp)) => {
                    if self.outstanding.contains_key(&rid) {
                        self.completed.insert(rid, resp);
                    } else {
                        // A stray: either an id abandoned by an expired
                        // await or something the server invented. Drop it.
                        self.abandoned.remove(&rid);
                    }
                }
                Err(ClientError::DeadlineExceeded) => {
                    self.abandon(id);
                    return Err(ClientError::DeadlineExceeded);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Forgets an outstanding id; its late response (if any) is dropped.
    fn abandon(&mut self, id: u32) {
        if self.outstanding.remove(&id).is_some() {
            self.abandoned.insert(id);
        }
        self.completed.remove(&id);
    }

    /// Configures the session pipeline; must precede fetches (configure
    /// is a full round-trip, so the server's session is ready before any
    /// pipelined fetch lands).
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on socket failures, malformed responses, or
    /// server-side errors.
    pub fn configure(
        &mut self,
        dataset_seed: u64,
        pipeline: PipelineSpec,
    ) -> Result<(), ClientError> {
        let id = self.alloc_id();
        self.send_framed(id, &Request::Configure(crate::SessionConfig { dataset_seed, pipeline }))?;
        self.outstanding.insert(id, self.deadline.expiry_from_now());
        match self.await_any(id)? {
            Response::Configured => Ok(()),
            Response::Error { sample_id, message } => Err(server_error(sample_id, message)),
            Response::Data(_) => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches one sample with an offload directive.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on socket failures, malformed responses, or a
    /// server-reported failure for this sample.
    pub fn fetch(
        &mut self,
        sample_id: u64,
        epoch: u64,
        split: SplitPoint,
    ) -> Result<StageData, ClientError> {
        let id = self.submit(FetchRequest::new(sample_id, epoch, split))?;
        Ok(self.await_response(id)?.data)
    }

    /// Fetches with full request control (offload split plus optional
    /// transfer-time re-compression), blocking for the response.
    ///
    /// # Errors
    ///
    /// Same conditions as `fetch`.
    pub fn fetch_request(&mut self, req: FetchRequest) -> Result<FetchResponse, ClientError> {
        let id = self.submit(req)?;
        self.await_response(id)
    }

    /// Pipelined batch fetch with full request control: every request is
    /// submitted before the first response is awaited, so the whole batch
    /// is in flight on one connection at once. Responses return in
    /// request order. On the first failure the batch's remaining ids are
    /// abandoned — late arrivals are discarded, never mis-claimed by a
    /// retry.
    ///
    /// # Errors
    ///
    /// Returns the first failure; [`ClientError::DeadlineExceeded`] when a
    /// request's per-submit budget runs out first.
    pub fn fetch_many_requests(
        &mut self,
        requests: &[FetchRequest],
    ) -> Result<Vec<FetchResponse>, ClientError> {
        let ids = self.submit_all(requests)?;
        let mut out = Vec::with_capacity(ids.len());
        for (i, id) in ids.iter().enumerate() {
            match self.await_response(*id) {
                Ok(resp) => out.push(resp),
                Err(e) => {
                    for rest in &ids[i..] {
                        self.abandon(*rest);
                    }
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// Issues all requests up front, then collects every response.
    ///
    /// # Errors
    ///
    /// Returns the first failure.
    pub fn fetch_many(
        &mut self,
        requests: &[(u64, u64, SplitPoint)],
    ) -> Result<Vec<FetchResponse>, ClientError> {
        let full: Vec<FetchRequest> = requests
            .iter()
            .map(|&(sample_id, epoch, split)| FetchRequest::new(sample_id, epoch, split))
            .collect();
        self.fetch_many_requests(&full)
    }
}

impl FrameState {
    /// The completed frame's bytes (valid once `expect == payload_got`).
    fn frame_bytes(&self) -> &[u8] {
        &self.payload[..self.payload_got]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Bandwidth;
    use tenant::TenantSpec;

    fn spawn_server(n: u64, cores: usize) -> (TcpStorageServer, datasets::DatasetSpec) {
        let ds = datasets::DatasetSpec::mini(n, 61);
        let store = ObjectStore::materialize_dataset(&ds, 0..n);
        let server = TcpStorageServer::bind(
            store,
            ServerConfig {
                cores,
                bandwidth: Bandwidth::from_gbps(10.0),
                queue_depth: 32,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        (server, ds)
    }

    #[test]
    fn fetch_over_real_sockets() {
        let (server, ds) = spawn_server(3, 2);
        let mut client = TcpStorageClient::connect(server.local_addr()).unwrap();
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        let raw = client.fetch(0, 0, SplitPoint::NONE).unwrap();
        assert!(raw.as_encoded().is_some());
        let cropped = client.fetch(1, 0, SplitPoint::new(2)).unwrap();
        assert_eq!(cropped.byte_len(), 150_528);
        assert!(server.response_bytes() > 150_528);
        server.shutdown();
    }

    #[test]
    fn pipelined_fetches_over_tcp() {
        let (server, ds) = spawn_server(4, 3);
        let mut client = TcpStorageClient::connect(server.local_addr()).unwrap();
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        let reqs: Vec<_> = (0..4u64).map(|id| (id, 0u64, SplitPoint::new(2))).collect();
        let responses = client.fetch_many(&reqs).unwrap();
        assert_eq!(responses.len(), 4);
        // Request order, not arrival order.
        let ids: Vec<_> = responses.iter().map(|r| r.sample_id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        server.shutdown();
    }

    #[test]
    fn submit_await_multiplexes_out_of_order_claims() {
        let (server, ds) = spawn_server(6, 3);
        let mut client = TcpStorageClient::connect(server.local_addr()).unwrap();
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        let ids: Vec<u32> = (0..6u64)
            .map(|s| client.submit(FetchRequest::new(s, 0, SplitPoint::NONE)).unwrap())
            .collect();
        assert_eq!(client.in_flight(), 6);
        // Claim in reverse submission order: muxing must route each id.
        for (i, id) in ids.iter().enumerate().rev() {
            let resp = client.await_response(*id).unwrap();
            assert_eq!(resp.sample_id, i as u64);
        }
        assert_eq!(client.in_flight(), 0);
        server.shutdown();
    }

    #[test]
    fn duplicate_sample_ids_resolve_by_request_id() {
        // The same sample requested twice in one batch: correlation by
        // request id keeps both callers satisfied (by-sample matching
        // could only claim one).
        let (server, ds) = spawn_server(2, 2);
        let mut client = TcpStorageClient::connect(server.local_addr()).unwrap();
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        let reqs = vec![
            FetchRequest::new(1, 0, SplitPoint::NONE),
            FetchRequest::new(1, 0, SplitPoint::NONE),
            FetchRequest::new(0, 0, SplitPoint::NONE),
        ];
        let out = client.fetch_many_requests(&reqs).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].sample_id, 1);
        assert_eq!(out[1].sample_id, 1);
        assert_eq!(out[2].sample_id, 0);
        server.shutdown();
    }

    #[test]
    fn two_concurrent_clients() {
        let (server, ds) = spawn_server(2, 2);
        let addr = server.local_addr();
        let seed = ds.seed;
        let threads: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = TcpStorageClient::connect(addr).unwrap();
                    client.configure(seed, PipelineSpec::standard_train()).unwrap();
                    let data = client.fetch(1, 3, SplitPoint::new(2)).unwrap();
                    data.as_image().unwrap().as_raw().to_vec()
                })
            })
            .collect();
        let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        // Same sample, same epoch, same split: identical bytes for both
        // clients (deterministic near-storage execution).
        assert_eq!(results[0], results[1]);
        server.shutdown();
    }

    #[test]
    fn unconfigured_fetch_errors_over_tcp() {
        let (server, _ds) = spawn_server(1, 1);
        let mut client = TcpStorageClient::connect(server.local_addr()).unwrap();
        let err = client.fetch(0, 0, SplitPoint::NONE).unwrap_err();
        assert!(err.to_string().contains("not configured"));
        server.shutdown();
    }

    #[test]
    fn in_flight_bound_applies_backpressure_without_loss() {
        // 4x the per-connection bound submitted at once: the server
        // stops reading past the bound, TCP pushes back, and every
        // response still arrives as earlier ones drain.
        let ds = datasets::DatasetSpec::mini(2, 61);
        let store = ObjectStore::materialize_dataset(&ds, 0..2);
        let server = TcpStorageServer::bind(
            store,
            ServerConfig {
                cores: 2,
                bandwidth: Bandwidth::from_gbps(10.0),
                queue_depth: 32,
                max_in_flight: 4,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let mut client = TcpStorageClient::connect(server.local_addr()).unwrap();
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        let reqs: Vec<_> = (0..16u64).map(|i| (i % 2, i / 2, SplitPoint::NONE)).collect();
        let out = client.fetch_many(&reqs).unwrap();
        assert_eq!(out.len(), 16);
        server.shutdown();
    }

    #[test]
    fn frame_roundtrip_and_cap() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame").unwrap();
        let got = read_frame(&buf[..]).unwrap();
        assert_eq!(got, b"hello frame");
        // The vectored writer produces bit-identical frames.
        let mut vbuf = Vec::new();
        write_frame_vectored(&mut vbuf, b"hello frame").unwrap();
        assert_eq!(buf, vbuf);
        // Oversized declared length is rejected before allocation.
        let mut bogus = Vec::new();
        bogus.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_frame(&bogus[..]).is_err());
        // Oversized outbound payloads error instead of panicking.
        let big = vec![0u8; (wire::MAX_PAYLOAD as usize) + 1];
        assert!(write_frame(Vec::new(), &big).is_err());
        assert!(write_frame_vectored(&mut Vec::new(), &big).is_err());
    }

    #[test]
    fn read_frame_into_reuses_the_buffer() {
        let mut wire_bytes = Vec::new();
        write_frame(&mut wire_bytes, b"abcdefgh").unwrap();
        let mut stream = Vec::new();
        for _ in 0..50 {
            stream.extend_from_slice(&wire_bytes);
        }
        let mut cursor = &stream[..];
        let mut buf = Vec::new();
        read_frame_into(&mut cursor, &mut buf).unwrap();
        let (ptr, cap) = (buf.as_ptr(), buf.capacity());
        for _ in 0..49 {
            read_frame_into(&mut cursor, &mut buf).unwrap();
            assert_eq!(buf, b"abcdefgh");
        }
        assert_eq!(buf.as_ptr(), ptr, "read buffer reallocated on the hot path");
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn dropped_response_times_out_and_retry_recovers() {
        use crate::chaos::{FaultKind, FaultPlan, ServerFaultInjector};

        let ds = datasets::DatasetSpec::mini(2, 61);
        let store = ObjectStore::materialize_dataset(&ds, 0..2);
        // Drop sample 0's first response; everything else is clean.
        let plan = FaultPlan::quiet(1).script(0, 0, 0, FaultKind::Drop);
        let injector = Arc::new(ServerFaultInjector::new(0, plan));
        let server = TcpStorageServer::bind_with_injector(
            store,
            ServerConfig {
                cores: 2,
                bandwidth: Bandwidth::from_gbps(10.0),
                queue_depth: 32,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
            Some(Arc::clone(&injector)),
        )
        .unwrap();
        let mut client = TcpStorageClient::connect(server.local_addr())
            .unwrap()
            .with_deadline(Deadline::after(Duration::from_millis(300)));
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();

        let reqs = vec![FetchRequest::new(0, 0, SplitPoint::NONE)];
        let err = client.fetch_many_requests(&reqs).unwrap_err();
        assert!(matches!(err, ClientError::DeadlineExceeded), "{err:?}");
        // Attempt 1 is clean: the same connection recovers.
        assert_eq!(client.fetch_many_requests(&reqs).unwrap().len(), 1);
        assert_eq!(injector.injected(), 1);
        server.shutdown();
    }

    #[test]
    fn bit_flipped_response_surfaces_as_corrupted() {
        use crate::chaos::{FaultKind, FaultPlan, ServerFaultInjector};

        let ds = datasets::DatasetSpec::mini(1, 62);
        let store = ObjectStore::materialize_dataset(&ds, 0..1);
        let plan = FaultPlan::quiet(2).script(0, 0, 0, FaultKind::BitFlip);
        let injector = Arc::new(ServerFaultInjector::new(0, plan));
        let server = TcpStorageServer::bind_with_injector(
            store,
            ServerConfig {
                cores: 1,
                bandwidth: Bandwidth::from_gbps(10.0),
                queue_depth: 8,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
            Some(injector),
        )
        .unwrap();
        let mut client = TcpStorageClient::connect(server.local_addr())
            .unwrap()
            .with_deadline(Deadline::after(Duration::from_secs(2)));
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();

        let reqs = vec![FetchRequest::new(0, 0, SplitPoint::NONE)];
        let err = client.fetch_many_requests(&reqs).unwrap_err();
        assert!(matches!(err, ClientError::Corrupted), "{err:?}");
        assert_eq!(client.fetch_many_requests(&reqs).unwrap().len(), 1);
        server.shutdown();
    }

    fn policy_server(
        n: u64,
        cores: usize,
        policy: TenantPolicy,
    ) -> (TcpStorageServer, datasets::DatasetSpec) {
        let ds = datasets::DatasetSpec::mini(n, 61);
        let store = ObjectStore::materialize_dataset(&ds, 0..n);
        let server = TcpStorageServer::bind_with_policy(
            store,
            ServerConfig {
                cores,
                bandwidth: Bandwidth::from_gbps(10.0),
                queue_depth: 32,
                ..ServerConfig::default()
            },
            policy,
            "127.0.0.1:0",
            None,
        )
        .unwrap();
        (server, ds)
    }

    #[test]
    fn tenant_fetches_are_served_and_attributed() {
        let policy =
            TenantPolicy::default().with_tenant(TenantId(7), TenantSpec::default().with_weight(2));
        let (server, ds) = policy_server(3, 2, policy);
        let mut tagged = TcpStorageClient::connect(server.local_addr()).unwrap().with_tenant(7);
        let mut legacy = TcpStorageClient::connect(server.local_addr()).unwrap();
        tagged.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        legacy.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        for s in 0..3u64 {
            assert_eq!(tagged.fetch(s, 0, SplitPoint::new(2)).unwrap().byte_len(), 150_528);
        }
        legacy.fetch(0, 0, SplitPoint::new(2)).unwrap();
        let stats = server.tenant_stats();
        // Configure + 3 fetches under tenant 7; the v2 client lands on
        // the default tenant 0.
        let t7 = stats[&7];
        assert_eq!(t7.admitted, 4);
        assert_eq!(t7.completed, 4);
        assert_eq!(t7.throttled, 0);
        assert!(t7.bytes_sent > 3 * 150_528, "{t7:?}");
        assert_eq!(stats[&0].admitted, 2);
        server.shutdown();
    }

    #[test]
    fn tenant_telemetry_exports_rate_series() {
        let (server, ds) = spawn_server(3, 2);
        let mut hub = telemetry::TelemetryHub::new(64);
        let mut client = TcpStorageClient::connect(server.local_addr()).unwrap().with_tenant(9);
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        server.export_tenant_telemetry(&mut hub, 0.0).unwrap();
        for s in 0..3u64 {
            client.fetch(s, 0, SplitPoint::new(2)).unwrap();
        }
        server.export_tenant_telemetry(&mut hub, 2.0).unwrap();
        let served = hub.series("tenant9.served").unwrap();
        assert_eq!(served.len(), 2);
        // 3 fetches over 2 seconds of caller clock.
        let rate = served.rate_over(10.0, 2.0).unwrap();
        assert!((rate - 1.5).abs() < 1e-9, "rate {rate}");
        let throttled = hub.series("tenant9.throttled").unwrap();
        assert_eq!(throttled.rate_over(10.0, 2.0), Some(0.0));
        assert!(hub.series("tenant9.bytes").unwrap().newest().unwrap().value > 0.0);
        // A clock rewind is a typed error, not silent corruption.
        assert!(server.export_tenant_telemetry(&mut hub, 1.0).is_err());
        server.shutdown();
    }

    #[test]
    fn per_tenant_in_flight_bound_rejects_and_retry_succeeds() {
        // Tenant 5 may hold one request in flight. A pipelined batch of 8
        // reaches the event loop in one kernel buffer, so the loop decodes
        // all of them while the single worker is still on the first — the
        // excess must come back as typed, retryable throttle errors, not
        // queue (the old FIFO behaviour) and not generic failures.
        let policy = TenantPolicy::default()
            .with_tenant(TenantId(5), TenantSpec::default().with_max_in_flight(1));
        let (server, ds) = policy_server(2, 1, policy);
        let mut client = TcpStorageClient::connect(server.local_addr()).unwrap().with_tenant(5);
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        let reqs: Vec<_> =
            (0..8u64).map(|i| FetchRequest::new(i % 2, i / 2, SplitPoint::new(2))).collect();
        let ids = client.submit_all(&reqs).unwrap();
        let mut ok = 0usize;
        let mut throttled = Vec::new();
        for (id, req) in ids.into_iter().zip(&reqs) {
            match client.await_response(id) {
                Ok(_) => ok += 1,
                Err(ClientError::TenantThrottled { message }) => {
                    assert!(message.contains("in-flight bound"), "{message}");
                    throttled.push(*req);
                }
                Err(e) => panic!("unexpected error: {e:?}"),
            }
        }
        assert!(ok >= 1, "at least the first request is admitted");
        assert!(!throttled.is_empty(), "excess past the bound is rejected");
        // Rejected requests were never queued; sequential retries all win.
        for req in throttled {
            client.fetch_request(req).unwrap();
        }
        let stats = server.tenant_stats();
        assert!(stats[&5].throttled >= 1);
        server.shutdown();
    }

    #[test]
    fn quota_throttles_the_hog_but_not_the_victim() {
        // Tenant 1 is metered at 128 KB/s with a 32 KB burst, so each
        // ~150 KB tensor response puts its bucket ~0.9 s into debt when
        // the charge lands at encode. Pacing drains that debt exactly as
        // the frame releases — so a request arriving *while* the paced
        // queue is draining sees the outstanding debt and is rejected at
        // admission, while the pipelined pair itself still completes.
        // Tenant 2 is unmetered and fetches at full speed throughout.
        let policy = TenantPolicy::default()
            .with_tenant(TenantId(1), TenantSpec::default().with_quota(128_000.0, 32_000));
        let (server, ds) = policy_server(2, 2, policy);
        let addr = server.local_addr();
        let mut hog = TcpStorageClient::connect(addr).unwrap().with_tenant(1);
        let mut victim = TcpStorageClient::connect(addr).unwrap().with_tenant(2);
        hog.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        victim.configure(ds.seed, PipelineSpec::standard_train()).unwrap();

        let burst: Vec<_> =
            (0..2u64).map(|i| FetchRequest::new(i, 0, SplitPoint::new(2))).collect();
        let ids = hog.submit_all(&burst).unwrap();
        // Wait (by polling server stats) until the first paced response
        // has fully hit the wire: in that same event-loop pass the second
        // frame's charge lands, so the bucket sits ~1.2 s in debt for the
        // whole time frame two paces out — the probe below lands squarely
        // mid-drain however slow the workers are.
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.tenant_stats().get(&1).map_or(0, |s| s.bytes_sent) < 150_528 {
            assert!(Instant::now() < deadline, "first hog response never drained");
            std::thread::sleep(Duration::from_millis(5));
        }
        let err = hog.fetch(1, 1, SplitPoint::new(2)).unwrap_err();
        assert!(
            matches!(err, ClientError::TenantThrottled { ref message } if message.contains("byte quota")),
            "{err:?}"
        );

        let reqs: Vec<_> = (0..6u64).map(|i| (i % 2, i / 2, SplitPoint::new(2))).collect();
        assert_eq!(victim.fetch_many(&reqs).unwrap().len(), 6);
        // The hog's admitted pair still arrives — paced, never dropped.
        for id in ids {
            hog.await_response(id).unwrap();
        }

        let stats = server.tenant_stats();
        assert!(stats[&1].throttled >= 1, "{stats:?}");
        assert_eq!(stats[&2].throttled, 0, "{stats:?}");
        server.shutdown();
    }

    #[test]
    fn required_tenant_id_rejects_legacy_frames() {
        let policy = TenantPolicy { require_tenant_id: true, ..TenantPolicy::default() };
        let (server, ds) = policy_server(1, 1, policy);
        let mut legacy = TcpStorageClient::connect(server.local_addr()).unwrap();
        let err = legacy.configure(ds.seed, PipelineSpec::standard_train()).unwrap_err();
        assert!(err.to_string().contains("no tenant id"), "{err}");
        // The same connection succeeds once it identifies itself.
        let mut tagged = TcpStorageClient::connect(server.local_addr()).unwrap().with_tenant(9);
        tagged.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        tagged.fetch(0, 0, SplitPoint::NONE).unwrap();
        server.shutdown();
    }
}
