use std::collections::HashMap;

use crossbeam::channel;
use netsim::PipeReceiver;
use pipeline::{PipelineSpec, SplitPoint, StageData};

use crate::protocol::{FetchRequest, FetchResponse, Request, Response, SessionConfig};
use crate::wire::{self, WireError};

/// Errors surfaced to users of [`StorageClient`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClientError {
    /// The server hung up.
    Disconnected,
    /// A response failed to decode.
    Wire(WireError),
    /// The server reported a failure.
    Server {
        /// The failing sample, when per-sample.
        sample_id: Option<u64>,
        /// Server-provided description.
        message: String,
    },
    /// The server sent a response that does not fit the protocol state.
    UnexpectedResponse,
    /// A frame arrived bit-corrupted (CRC32 mismatch). Retryable: the
    /// payload on the server is intact, only the transfer was damaged.
    Corrupted,
    /// The per-request [`Deadline`](crate::Deadline) expired before the
    /// response arrived. Retryable with a fresh budget.
    DeadlineExceeded,
    /// The node's circuit breaker is open: requests fail fast without
    /// touching the wire until the cooldown elapses and a probe succeeds.
    CircuitOpen,
    /// The server's admission control rejected the request because this
    /// tenant is over its byte quota or in-flight bound. Retryable: the
    /// request was never queued, so backing off and resubmitting is safe
    /// and cheap.
    TenantThrottled {
        /// Server-provided detail (which limit tripped).
        message: String,
    },
}

/// Message prefix a tenant-aware server puts on error replies produced by
/// admission control. Clients recognise it and surface the typed,
/// retryable [`ClientError::TenantThrottled`] instead of a generic server
/// error.
pub const TENANT_THROTTLED_PREFIX: &str = "tenant-throttled: ";

/// Maps a server error reply to the client-side error type, recognising
/// the admission-control marker.
pub(crate) fn server_error(sample_id: Option<u64>, message: String) -> ClientError {
    match message.strip_prefix(TENANT_THROTTLED_PREFIX) {
        Some(detail) => ClientError::TenantThrottled { message: detail.to_string() },
        None => ClientError::Server { sample_id, message },
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Disconnected => write!(f, "storage server disconnected"),
            ClientError::Wire(e) => write!(f, "wire decode failed: {e}"),
            ClientError::Server { sample_id, message } => match sample_id {
                Some(id) => write!(f, "server error for sample {id}: {message}"),
                None => write!(f, "server error: {message}"),
            },
            ClientError::UnexpectedResponse => write!(f, "unexpected response kind"),
            ClientError::Corrupted => write!(f, "frame corrupted in transit (checksum mismatch)"),
            ClientError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ClientError::CircuitOpen => write!(f, "node circuit breaker is open"),
            ClientError::TenantThrottled { message } => {
                write!(f, "tenant throttled by admission control (retryable): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::ChecksumMismatch => ClientError::Corrupted,
            other => ClientError::Wire(other),
        }
    }
}

/// Compute-node endpoint of the storage protocol (in-process pipes).
///
/// Every request travels under a client-assigned `request_id`
/// ([`wire`] format v2) and responses are claimed **by id**, so one
/// session carries many pipelined in-flight exchanges, out-of-order
/// completions route to the right caller even when a batch repeats a
/// sample id, and a stale response can never satisfy the wrong request.
/// The low-level surface is [`StorageClient::submit`] /
/// [`StorageClient::await_response`]; the batch helpers are built on it.
#[derive(Debug)]
pub struct StorageClient {
    req_tx: channel::Sender<bytes::Bytes>,
    resp_rx: PipeReceiver,
    /// Monotonic multiplexing id; 0 is reserved for server-side replies to
    /// frames whose id could not be recovered.
    next_id: u32,
    /// Out-of-order responses waiting to be claimed, keyed by request id.
    completed: HashMap<u32, Response>,
}

impl StorageClient {
    pub(crate) fn new(req_tx: channel::Sender<bytes::Bytes>, resp_rx: PipeReceiver) -> Self {
        StorageClient { req_tx, resp_rx, next_id: 1, completed: HashMap::new() }
    }

    fn alloc_id(&mut self) -> u32 {
        let id = self.next_id;
        // Skip the reserved id 0 on wrap.
        self.next_id = self.next_id.checked_add(1).unwrap_or(1);
        id
    }

    fn send_framed(&self, request_id: u32, req: &Request) -> Result<(), ClientError> {
        self.req_tx
            .send(wire::encode_request_framed(request_id, req))
            .map_err(|_| ClientError::Disconnected)
    }

    fn recv_framed(&mut self) -> Result<(u32, Response), ClientError> {
        let bytes = self.resp_rx.recv().map_err(|_| ClientError::Disconnected)?;
        Ok(wire::decode_response_framed(&bytes)?)
    }

    /// Submits one fetch without waiting, returning the id to await.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Disconnected`] when the server is gone.
    pub fn submit(&mut self, req: FetchRequest) -> Result<u32, ClientError> {
        let id = self.alloc_id();
        self.send_framed(id, &Request::Fetch(req))?;
        Ok(id)
    }

    /// Blocks until the response for `id` arrives, buffering any other
    /// in-flight completions for their own `await_response` calls.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on disconnection, malformed responses, or a
    /// server-reported failure for this request.
    pub fn await_response(&mut self, id: u32) -> Result<FetchResponse, ClientError> {
        loop {
            if let Some(resp) = self.completed.remove(&id) {
                return match resp {
                    Response::Data(d) => Ok(d),
                    Response::Error { sample_id, message } => Err(server_error(sample_id, message)),
                    Response::Configured => Err(ClientError::UnexpectedResponse),
                };
            }
            let (rid, resp) = self.recv_framed()?;
            self.completed.insert(rid, resp);
        }
    }

    /// Configures the session pipeline; must precede fetches.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on disconnection, malformed responses, or a
    /// server-side failure.
    pub fn configure(
        &mut self,
        dataset_seed: u64,
        pipeline: PipelineSpec,
    ) -> Result<(), ClientError> {
        let id = self.alloc_id();
        self.send_framed(id, &Request::Configure(SessionConfig { dataset_seed, pipeline }))?;
        loop {
            if let Some(resp) = self.completed.remove(&id) {
                return match resp {
                    Response::Configured => Ok(()),
                    Response::Error { sample_id, message } => Err(server_error(sample_id, message)),
                    Response::Data(_) => Err(ClientError::UnexpectedResponse),
                };
            }
            let (rid, resp) = self.recv_framed()?;
            self.completed.insert(rid, resp);
        }
    }

    /// Fetches one sample with an offload directive, blocking for its data.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on disconnection, malformed responses, or a
    /// server-reported failure for this sample.
    pub fn fetch(
        &mut self,
        sample_id: u64,
        epoch: u64,
        split: SplitPoint,
    ) -> Result<StageData, ClientError> {
        let id = self.submit(FetchRequest::new(sample_id, epoch, split))?;
        Ok(self.await_response(id)?.data)
    }

    /// Fetches with full request control (offload split plus optional
    /// transfer-time re-compression), blocking for the response.
    ///
    /// # Errors
    ///
    /// Same conditions as `fetch`.
    pub fn fetch_request(&mut self, req: FetchRequest) -> Result<FetchResponse, ClientError> {
        let id = self.submit(req)?;
        self.await_response(id)
    }

    /// Issues all requests up front, then collects every response
    /// (pipelined; completions claimed by id, returned in request order).
    ///
    /// # Errors
    ///
    /// Returns the first failure; remaining in-flight responses are
    /// buffered for later calls.
    pub fn fetch_many(
        &mut self,
        requests: &[(u64, u64, SplitPoint)],
    ) -> Result<Vec<FetchResponse>, ClientError> {
        let full: Vec<FetchRequest> = requests
            .iter()
            .map(|&(sample_id, epoch, split)| FetchRequest::new(sample_id, epoch, split))
            .collect();
        self.fetch_many_requests(&full)
    }

    /// Pipelined variant of [`StorageClient::fetch_many`] with full request
    /// control (splits plus optional re-compression directives).
    ///
    /// # Errors
    ///
    /// Returns the first failure.
    pub fn fetch_many_requests(
        &mut self,
        requests: &[FetchRequest],
    ) -> Result<Vec<FetchResponse>, ClientError> {
        let ids: Vec<u32> =
            requests.iter().map(|req| self.submit(*req)).collect::<Result<_, _>>()?;
        ids.into_iter().map(|id| self.await_response(id)).collect()
    }

    /// Requests a graceful server shutdown (workers drain and exit).
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Disconnected`] when the server is already
    /// gone.
    pub fn shutdown_server(&self) -> Result<(), ClientError> {
        self.send_framed(0, &Request::Shutdown)
    }
}
