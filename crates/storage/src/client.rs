use std::collections::HashMap;

use crossbeam::channel;
use netsim::PipeReceiver;
use pipeline::{PipelineSpec, SplitPoint, StageData};

use crate::protocol::{FetchRequest, FetchResponse, Request, Response, SessionConfig};
use crate::wire::{self, WireError};

/// Errors surfaced to users of [`StorageClient`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClientError {
    /// The server hung up.
    Disconnected,
    /// A response failed to decode.
    Wire(WireError),
    /// The server reported a failure.
    Server {
        /// The failing sample, when per-sample.
        sample_id: Option<u64>,
        /// Server-provided description.
        message: String,
    },
    /// The server sent a response that does not fit the protocol state.
    UnexpectedResponse,
    /// A frame arrived bit-corrupted (CRC32 mismatch). Retryable: the
    /// payload on the server is intact, only the transfer was damaged.
    Corrupted,
    /// The per-request [`Deadline`](crate::Deadline) expired before the
    /// response arrived. Retryable with a fresh budget.
    DeadlineExceeded,
    /// The node's circuit breaker is open: requests fail fast without
    /// touching the wire until the cooldown elapses and a probe succeeds.
    CircuitOpen,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Disconnected => write!(f, "storage server disconnected"),
            ClientError::Wire(e) => write!(f, "wire decode failed: {e}"),
            ClientError::Server { sample_id, message } => match sample_id {
                Some(id) => write!(f, "server error for sample {id}: {message}"),
                None => write!(f, "server error: {message}"),
            },
            ClientError::UnexpectedResponse => write!(f, "unexpected response kind"),
            ClientError::Corrupted => write!(f, "frame corrupted in transit (checksum mismatch)"),
            ClientError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ClientError::CircuitOpen => write!(f, "node circuit breaker is open"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::ChecksumMismatch => ClientError::Corrupted,
            other => ClientError::Wire(other),
        }
    }
}

/// Compute-node endpoint of the storage protocol.
///
/// Supports both one-at-a-time [`StorageClient::fetch`] and pipelined
/// [`StorageClient::fetch_many`], which keeps the request queue full so the
/// server's workers and the throttled link stay busy — the pattern a real
/// data loader uses.
#[derive(Debug)]
pub struct StorageClient {
    req_tx: channel::Sender<bytes::Bytes>,
    resp_rx: PipeReceiver,
    /// Out-of-order responses waiting to be claimed, keyed by sample id.
    pending: HashMap<u64, FetchResponse>,
}

impl StorageClient {
    pub(crate) fn new(req_tx: channel::Sender<bytes::Bytes>, resp_rx: PipeReceiver) -> Self {
        StorageClient { req_tx, resp_rx, pending: HashMap::new() }
    }

    fn send(&self, req: &Request) -> Result<(), ClientError> {
        self.req_tx.send(wire::encode_request(req)).map_err(|_| ClientError::Disconnected)
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let bytes = self.resp_rx.recv().map_err(|_| ClientError::Disconnected)?;
        Ok(wire::decode_response(&bytes)?)
    }

    /// Configures the session pipeline; must precede fetches.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on disconnection, malformed responses, or a
    /// server-side failure.
    pub fn configure(
        &mut self,
        dataset_seed: u64,
        pipeline: PipelineSpec,
    ) -> Result<(), ClientError> {
        self.send(&Request::Configure(SessionConfig { dataset_seed, pipeline }))?;
        match self.recv()? {
            Response::Configured => Ok(()),
            Response::Error { sample_id, message } => {
                Err(ClientError::Server { sample_id, message })
            }
            Response::Data(_) => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches one sample with an offload directive, blocking for its data.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on disconnection, malformed responses, or a
    /// server-reported failure for this sample.
    pub fn fetch(
        &mut self,
        sample_id: u64,
        epoch: u64,
        split: SplitPoint,
    ) -> Result<StageData, ClientError> {
        self.send(&Request::Fetch(FetchRequest::new(sample_id, epoch, split)))?;
        if let Some(resp) = self.pending.remove(&sample_id) {
            return Ok(resp.data);
        }
        loop {
            match self.recv()? {
                Response::Data(d) if d.sample_id == sample_id => return Ok(d.data),
                Response::Data(d) => {
                    self.pending.insert(d.sample_id, d);
                }
                Response::Error { sample_id: sid, message } if sid == Some(sample_id) => {
                    return Err(ClientError::Server { sample_id: sid, message })
                }
                Response::Error { sample_id, message } => {
                    return Err(ClientError::Server { sample_id, message })
                }
                Response::Configured => return Err(ClientError::UnexpectedResponse),
            }
        }
    }

    /// Fetches with full request control (offload split plus optional
    /// transfer-time re-compression), blocking for the response.
    ///
    /// # Errors
    ///
    /// Same conditions as `fetch`.
    pub fn fetch_request(&mut self, req: FetchRequest) -> Result<FetchResponse, ClientError> {
        self.send(&Request::Fetch(req))?;
        if let Some(resp) = self.pending.remove(&req.sample_id) {
            return Ok(resp);
        }
        loop {
            match self.recv()? {
                Response::Data(d) if d.sample_id == req.sample_id => return Ok(d),
                Response::Data(d) => {
                    self.pending.insert(d.sample_id, d);
                }
                Response::Error { sample_id, message } => {
                    return Err(ClientError::Server { sample_id, message })
                }
                Response::Configured => return Err(ClientError::UnexpectedResponse),
            }
        }
    }

    /// Issues all requests up front, then collects every response
    /// (pipelined; responses may arrive in any order).
    ///
    /// # Errors
    ///
    /// Returns the first failure; remaining in-flight responses are
    /// buffered for later calls where possible.
    pub fn fetch_many(
        &mut self,
        requests: &[(u64, u64, SplitPoint)],
    ) -> Result<Vec<FetchResponse>, ClientError> {
        for &(sample_id, epoch, split) in requests {
            self.send(&Request::Fetch(FetchRequest::new(sample_id, epoch, split)))?;
        }
        let mut out = Vec::with_capacity(requests.len());
        for _ in 0..requests.len() {
            match self.recv()? {
                Response::Data(d) => out.push(d),
                Response::Error { sample_id, message } => {
                    return Err(ClientError::Server { sample_id, message })
                }
                Response::Configured => return Err(ClientError::UnexpectedResponse),
            }
        }
        Ok(out)
    }

    /// Pipelined variant of [`StorageClient::fetch_many`] with full request
    /// control (splits plus optional re-compression directives).
    ///
    /// # Errors
    ///
    /// Returns the first failure.
    pub fn fetch_many_requests(
        &mut self,
        requests: &[FetchRequest],
    ) -> Result<Vec<FetchResponse>, ClientError> {
        for req in requests {
            self.send(&Request::Fetch(*req))?;
        }
        let mut out = Vec::with_capacity(requests.len());
        for _ in 0..requests.len() {
            match self.recv()? {
                Response::Data(d) => out.push(d),
                Response::Error { sample_id, message } => {
                    return Err(ClientError::Server { sample_id, message })
                }
                Response::Configured => return Err(ClientError::UnexpectedResponse),
            }
        }
        Ok(out)
    }

    /// Requests a graceful server shutdown (workers drain and exit).
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Disconnected`] when the server is already
    /// gone.
    pub fn shutdown_server(&self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)
    }
}
