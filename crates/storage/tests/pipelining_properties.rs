//! Property tests for the multiplexed (request-id) serving path.
//!
//! The contract under test: any number of interleaved exchanges on one
//! stream resolve to the right callers purely by `request_id`, whatever
//! order responses come back in — and no single-bit corruption of a frame
//! can ever mis-route one, because the id sits under the CRC32 trailer.

use bytes::Bytes;
use pipeline::{PipelineSpec, SplitPoint, StageData};
use proptest::prelude::*;
use storage::wire::{
    decode_request_tenant, decode_response_framed, encode_request_framed,
    encode_request_tenant_framed, encode_response_framed, peek_request_id, WireError,
};
use storage::{
    FetchRequest, FetchResponse, ObjectStore, Request, Response, ServerConfig, StorageServer,
};

/// Stateless SplitMix64 step (the repo's standard seeded scramble).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic Fisher-Yates driven by a SplitMix64 stream.
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed;
    for i in (1..items.len()).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

fn data_response(request_id: u32, sample_id: u64) -> (u32, Bytes) {
    let resp = Response::Data(FetchResponse {
        sample_id,
        ops_applied: 0,
        data: StageData::Encoded(Bytes::from(sample_id.to_le_bytes().to_vec())),
        tier: None,
    });
    (request_id, encode_response_framed(request_id, &resp))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// N frames with distinct ids, decoded in an arbitrary order, each
    /// land at exactly the caller whose id they carry — even when every
    /// response reports the *same* sample id (worst case for the old
    /// by-sample correlation).
    #[test]
    fn shuffled_response_frames_route_by_id(
        n in 2usize..24,
        shuffle_seed in any::<u64>(),
        same_sample in any::<bool>(),
    ) {
        let expected: std::collections::HashMap<u32, u64> = (0..n)
            .map(|i| {
                let id = (i as u32).wrapping_mul(2_654_435_761).max(1);
                (id, if same_sample { 7 } else { i as u64 })
            })
            .collect();
        let mut frames: Vec<(u32, Bytes)> =
            expected.iter().map(|(&id, &sample)| data_response(id, sample)).collect();
        shuffle(&mut frames, shuffle_seed);
        for (id, frame) in &frames {
            prop_assert_eq!(peek_request_id(frame), Some(*id));
            let (decoded_id, resp) = decode_response_framed(frame).unwrap();
            prop_assert_eq!(decoded_id, *id);
            let Response::Data(d) = resp else { panic!("data frame") };
            // Routing purely by id recovers the caller's own sample.
            prop_assert_eq!(d.sample_id, expected[id]);
            prop_assert_eq!(d.data.as_encoded().unwrap(), &expected[id].to_le_bytes()[..]);
        }
    }

    /// Flipping any single byte of a framed response — version, id, body,
    /// or the CRC itself — fails the checksum. A corrupted id can only
    /// surface as `Corrupted`, never as a valid frame for another caller.
    #[test]
    fn single_byte_flips_anywhere_fail_the_checksum(
        request_id in any::<u32>(),
        sample_id in any::<u64>(),
        flip_at in any::<usize>(),
        flip_mask in any::<u8>(),
    ) {
        let (_, frame) = data_response(request_id, sample_id);
        let mut bytes = frame.to_vec();
        let idx = flip_at % bytes.len();
        let mask = if flip_mask == 0 { 1 } else { flip_mask };
        bytes[idx] ^= mask;
        prop_assert_eq!(
            decode_response_framed(&bytes),
            Err(WireError::ChecksumMismatch),
            "flip at byte {} slipped past the CRC",
            idx
        );
    }

    /// A pipelined burst of v3 request frames from many tenants, decoded
    /// in an arbitrary order, hands back exactly the (request id, tenant
    /// id) pair each frame was sealed with — tenant attribution survives
    /// any interleaving on the shared stream.
    #[test]
    fn shuffled_tenant_frames_keep_their_attribution(
        n in 2usize..24,
        shuffle_seed in any::<u64>(),
        tenant_base in any::<u16>(),
    ) {
        let mut frames: Vec<(u32, u16, u64, Bytes)> = (0..n)
            .map(|i| {
                let id = (i as u32).wrapping_mul(2_654_435_761).max(1);
                let tenant = tenant_base.wrapping_add(i as u16);
                let sample = i as u64;
                let req = Request::Fetch(FetchRequest::new(sample, 0, SplitPoint::NONE));
                (id, tenant, sample, encode_request_tenant_framed(id, tenant, &req))
            })
            .collect();
        shuffle(&mut frames, shuffle_seed);
        for (id, tenant, sample, frame) in &frames {
            prop_assert_eq!(peek_request_id(frame), Some(*id));
            let (decoded_id, decoded_tenant, req) = decode_request_tenant(frame, true).unwrap();
            prop_assert_eq!(decoded_id, *id);
            prop_assert_eq!(decoded_tenant, *tenant);
            let Request::Fetch(f) = req else { panic!("fetch frame") };
            prop_assert_eq!(f.sample_id, *sample);
        }
    }

    /// A legacy v2 frame (no tenant field) is a typed `TenantMissing`
    /// rejection on an endpoint that requires attribution, and tenant 0
    /// on one that doesn't — never a garbled tenant id.
    #[test]
    fn v2_frames_without_tenant_are_rejected_when_required(
        request_id in any::<u32>(),
        sample_id in any::<u64>(),
    ) {
        let req = Request::Fetch(FetchRequest::new(sample_id, 0, SplitPoint::NONE));
        let frame = encode_request_framed(request_id, &req);
        prop_assert_eq!(
            decode_request_tenant(&frame, true),
            Err(WireError::TenantMissing)
        );
        let (id, tenant, _) = decode_request_tenant(&frame, false).unwrap();
        prop_assert_eq!(id, request_id);
        prop_assert_eq!(tenant, 0);
    }

    /// Flipping any single byte of a v3 tenant frame — version, request
    /// id, tenant id, body, or the CRC itself — fails the checksum, so a
    /// corrupted tenant id can never bill or throttle the wrong tenant.
    #[test]
    fn single_byte_flips_on_tenant_frames_fail_the_checksum(
        request_id in any::<u32>(),
        tenant_id in any::<u16>(),
        sample_id in any::<u64>(),
        flip_at in any::<usize>(),
        flip_mask in any::<u8>(),
    ) {
        let req = Request::Fetch(FetchRequest::new(sample_id, 0, SplitPoint::NONE));
        let frame = encode_request_tenant_framed(request_id, tenant_id, &req);
        let mut bytes = frame.to_vec();
        let idx = flip_at % bytes.len();
        let mask = if flip_mask == 0 { 1 } else { flip_mask };
        bytes[idx] ^= mask;
        prop_assert_eq!(
            decode_request_tenant(&bytes, false),
            Err(WireError::ChecksumMismatch),
            "flip at byte {} slipped past the CRC",
            idx
        );
    }
}

/// Live mux check over the in-process transport: submit a full batch,
/// then claim completions in a shuffled order — every await gets its own
/// sample back, including when the batch repeats a sample id.
#[test]
fn interleaved_awaits_resolve_by_request_id_end_to_end() {
    let ds = datasets::DatasetSpec::mini(4, 91);
    let store = ObjectStore::materialize_dataset(&ds, 0..4);
    let mut server = StorageServer::spawn(store, ServerConfig { cores: 3, ..Default::default() });
    let mut client = server.client();
    client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();

    for shuffle_seed in [3u64, 17, 83] {
        // Duplicate sample ids on purpose: 8 requests over 4 samples.
        let samples: Vec<u64> = (0..8u64).map(|i| i % 4).collect();
        let mut pending: Vec<(u32, u64)> = samples
            .iter()
            .map(|&s| {
                let id = client.submit(FetchRequest::new(s, 0, SplitPoint::NONE)).unwrap();
                (id, s)
            })
            .collect();
        shuffle(&mut pending, shuffle_seed);
        for (id, sample) in pending {
            let resp = client.await_response(id).unwrap();
            assert_eq!(resp.sample_id, sample, "await({id}) claimed the wrong exchange");
        }
    }
    server.shutdown();
}
