//! Integration tests for the transfer-compression directive and for
//! failure injection: corrupt objects, missing objects, and bad requests
//! must degrade per-sample, never take the server down.

use datasets::DatasetSpec;
use netsim::Bandwidth;
use pipeline::{PipelineSpec, SampleKey, SplitPoint, StageData};
use storage::{
    FetchRequest, NearStorageExecutor, ObjectStore, ServerConfig, SessionConfig, StorageServer,
};

fn setup(n: u64) -> (DatasetSpec, ObjectStore) {
    let ds = DatasetSpec::mini(n, 71);
    let store = ObjectStore::materialize_dataset(&ds, 0..n);
    (ds, store)
}

#[test]
fn reencoded_transfer_shrinks_and_reconstructs() {
    let (ds, store) = setup(2);
    let ex = NearStorageExecutor::new(
        store,
        SessionConfig { dataset_seed: ds.seed, pipeline: PipelineSpec::standard_train() },
    );
    let plain = ex.execute(FetchRequest::new(0, 1, SplitPoint::new(2))).unwrap();
    let compressed =
        ex.execute(FetchRequest::new(0, 1, SplitPoint::new(2)).with_reencode(85)).unwrap();
    assert_eq!(plain.data.byte_len(), 150_528);
    assert!(
        compressed.data.byte_len() < plain.data.byte_len() / 2,
        "re-encoded crop is {} bytes",
        compressed.data.byte_len()
    );
    // Unpack restores a raster close to the uncompressed crop.
    let plain_img = plain.data.as_image().unwrap().clone();
    let unpacked = compressed.unpack().unwrap();
    let unpacked_img = unpacked.as_image().unwrap();
    assert_eq!((unpacked_img.width(), unpacked_img.height()), (224, 224));
    let mut err = 0u64;
    for (a, b) in plain_img.as_raw().iter().zip(unpacked_img.as_raw().iter()) {
        err += u64::from(a.abs_diff(*b));
    }
    let mae = err as f64 / plain_img.raw_len() as f64;
    assert!(mae < 10.0, "re-encode round trip too lossy: {mae}");
}

#[test]
fn reencoded_suffix_still_produces_training_tensor() {
    let (ds, store) = setup(2);
    let pipeline = PipelineSpec::standard_train();
    let ex = NearStorageExecutor::new(
        store,
        SessionConfig { dataset_seed: ds.seed, pipeline: pipeline.clone() },
    );
    let resp = ex.execute(FetchRequest::new(1, 0, SplitPoint::new(2)).with_reencode(90)).unwrap();
    let split = SplitPoint::new(resp.ops_applied as usize);
    let data = resp.unpack().unwrap();
    let key = SampleKey::new(ds.seed, 1, 0);
    let tensor = pipeline.run_suffix(data, split, key).unwrap();
    assert_eq!(tensor.byte_len(), 602_112);
}

#[test]
fn reencode_on_raw_split_is_rejected() {
    let (ds, store) = setup(1);
    let ex = NearStorageExecutor::new(
        store,
        SessionConfig { dataset_seed: ds.seed, pipeline: PipelineSpec::standard_train() },
    );
    // Split 0 ships encoded bytes already; re-encoding is nonsensical.
    let err = ex.execute(FetchRequest::new(0, 0, SplitPoint::NONE).with_reencode(85)).unwrap_err();
    assert_eq!(err.to_string(), "re-encode requested but offloaded output is not an image");
    // Splits past ToTensor: also not an image.
    let err =
        ex.execute(FetchRequest::new(0, 0, SplitPoint::new(4)).with_reencode(85)).unwrap_err();
    assert!(matches!(err, storage::ExecError::ReencodeNotImage));
}

#[test]
fn corrupt_object_degrades_to_per_sample_error() {
    let (ds, mut store) = setup(3);
    // Sample 1's bytes are garbage; 0 and 2 stay valid.
    store.insert(1, bytes::Bytes::from_static(b"definitely not SJPG"));
    let mut server = StorageServer::spawn(
        store,
        ServerConfig {
            cores: 2,
            bandwidth: Bandwidth::from_gbps(10.0),
            queue_depth: 16,
            ..ServerConfig::default()
        },
    );
    let mut client = server.client();
    client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
    // Healthy samples still work after the failure.
    assert!(client.fetch(0, 0, SplitPoint::new(2)).is_ok());
    let err = client.fetch(1, 0, SplitPoint::new(2)).unwrap_err();
    assert!(err.to_string().contains("sample 1"), "{err}");
    assert!(client.fetch(2, 0, SplitPoint::new(2)).is_ok());
    server.shutdown();
}

#[test]
fn corrupt_object_with_split_zero_passes_bytes_through() {
    // With no offloading the server never decodes, so corruption surfaces
    // on the compute node instead — exactly as in a raw object store.
    let (ds, mut store) = setup(2);
    store.insert(0, bytes::Bytes::from_static(b"junk"));
    let mut server = StorageServer::spawn(
        store,
        ServerConfig {
            cores: 1,
            bandwidth: Bandwidth::from_gbps(10.0),
            queue_depth: 8,
            ..ServerConfig::default()
        },
    );
    let mut client = server.client();
    client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
    let data = client.fetch(0, 0, SplitPoint::NONE).unwrap();
    let key = SampleKey::new(ds.seed, 0, 0);
    assert!(PipelineSpec::standard_train().run(data, key).is_err());
    server.shutdown();
}

#[test]
fn missing_objects_and_bad_splits_dont_poison_the_session() {
    let (ds, store) = setup(2);
    let mut server = StorageServer::spawn(
        store,
        ServerConfig {
            cores: 2,
            bandwidth: Bandwidth::from_gbps(10.0),
            queue_depth: 16,
            ..ServerConfig::default()
        },
    );
    let mut client = server.client();
    client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
    assert!(client.fetch(99, 0, SplitPoint::NONE).is_err());
    assert!(client.fetch(0, 0, SplitPoint::new(9)).is_err());
    // The session is still serviceable.
    let data = client.fetch(0, 0, SplitPoint::new(2)).unwrap();
    assert_eq!(data.byte_len(), 150_528);
    server.shutdown();
}

#[test]
fn reencode_over_live_server_reduces_wire_bytes() {
    let (ds, store) = setup(4);
    let run = |reencode: bool| -> u64 {
        let mut server = StorageServer::spawn(
            store.clone(),
            ServerConfig {
                cores: 2,
                bandwidth: Bandwidth::from_gbps(10.0),
                queue_depth: 16,
                ..ServerConfig::default()
            },
        );
        let mut client = server.client();
        client.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        for id in 0..4u64 {
            let mut req = FetchRequest::new(id, 0, SplitPoint::new(2));
            if reencode {
                req = req.with_reencode(85);
            }
            let resp = client.fetch_request(req).unwrap();
            let unpacked = resp.unpack().unwrap();
            assert_eq!(unpacked.byte_len(), 150_528, "reconstructed crop size");
        }
        let bytes = server.response_bytes();
        server.shutdown();
        bytes
    };
    let plain = run(false);
    let compressed = run(true);
    assert!(
        compressed * 2 < plain,
        "compression should at least halve wire bytes: {compressed} vs {plain}"
    );
}

#[test]
fn stage_data_passthrough_for_tensor_splits() {
    // unpack() must not touch payloads that are legitimately encoded (split
    // 0) or already tensors (full offload).
    let (ds, store) = setup(1);
    let ex = NearStorageExecutor::new(
        store,
        SessionConfig { dataset_seed: ds.seed, pipeline: PipelineSpec::standard_train() },
    );
    let raw = ex.execute(FetchRequest::new(0, 0, SplitPoint::NONE)).unwrap();
    assert!(matches!(raw.unpack().unwrap(), StageData::Encoded(_)));
    let full = ex.execute(FetchRequest::new(0, 0, SplitPoint::new(5))).unwrap();
    assert!(matches!(full.unpack().unwrap(), StageData::Tensor(_)));
}
