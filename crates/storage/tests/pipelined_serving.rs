//! End-to-end: many concurrent client connections against a replicated
//! TCP fleet, every batch pipelined, every result bit-identical.
//!
//! 129 clients (43 per node) each hold one multiplexed connection to one
//! of three servers, submit their whole batch before awaiting anything,
//! and hash every response. Whatever node served a sample — primary or
//! replica — and however the completions interleaved, the bytes for a
//! given `(sample, epoch, split)` must be identical everywhere.

use std::collections::HashMap;

use netsim::Bandwidth;
use pipeline::{PipelineSpec, SplitPoint, StageData};
use storage::wire::crc32;
use storage::{FetchRequest, MultiServerHarness, ObjectStore, ServerConfig};

const NODES: usize = 3;
const CLIENTS: usize = 129;
const SAMPLES: u64 = 12;

/// `(sample, ops_applied)` — what a response's bytes must be keyed by.
type ResponseKey = (u64, u64);
/// `(crc32, len)` — canonical digest of a response payload.
type Digest = (u32, u64);

/// Canonical bytes of a response payload, whatever stage it stopped at.
fn digest(data: &StageData) -> Digest {
    let bytes: Vec<u8> = match data {
        StageData::Encoded(b) => b.to_vec(),
        StageData::Image(img) => img.as_raw().to_vec(),
        StageData::Tensor(t) => t.to_le_bytes(),
    };
    (crc32(&bytes), bytes.len() as u64)
}

#[test]
fn concurrent_pipelined_clients_get_bit_identical_batches() {
    let ds = datasets::DatasetSpec::mini(SAMPLES, 77);
    let store = ObjectStore::materialize_dataset(&ds, 0..SAMPLES);
    // Primary = id % 3, replica = (id + 1) % 3: every sample is on two
    // nodes, so the same bytes must come out of distinct servers.
    let harness = MultiServerHarness::spawn(
        &store,
        NODES,
        ServerConfig {
            cores: 2,
            bandwidth: Bandwidth::from_gbps(10.0),
            queue_depth: 32,
            ..ServerConfig::default()
        },
        |id| vec![(id % 3) as usize, ((id + 1) % 3) as usize],
    )
    .unwrap();

    let seed = ds.seed;
    let addrs: Vec<_> = (0..NODES).map(|n| harness.addr(n)).collect();
    let results: Vec<Vec<(ResponseKey, Digest)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let node = t % NODES;
                let addr = addrs[node];
                s.spawn(move || {
                    let mut client = storage::TcpStorageClient::connect(addr).unwrap();
                    client.configure(seed, PipelineSpec::standard_train()).unwrap();
                    // Everything this node stores (primary or replica),
                    // raw, plus one offloaded split-2 fetch — all
                    // submitted before the first await.
                    let mut reqs: Vec<FetchRequest> = (0..SAMPLES)
                        .filter(|id| (id % 3) as usize == node || ((id + 1) % 3) as usize == node)
                        .map(|id| FetchRequest::new(id, 0, SplitPoint::NONE))
                        .collect();
                    let offloaded = reqs[0].sample_id;
                    reqs.push(FetchRequest::new(offloaded, 0, SplitPoint::new(2)));
                    let responses = client.fetch_many_requests(&reqs).unwrap();
                    assert_eq!(responses.len(), reqs.len());
                    reqs.iter()
                        .zip(&responses)
                        .map(|(req, resp)| {
                            assert_eq!(req.sample_id, resp.sample_id);
                            ((req.sample_id, u64::from(resp.ops_applied)), digest(&resp.data))
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Group by (sample, ops_applied): one digest per key, fleet-wide.
    let mut canonical: HashMap<ResponseKey, Digest> = HashMap::new();
    let mut observations = 0usize;
    for per_client in &results {
        for (key, d) in per_client {
            observations += 1;
            let prior = canonical.insert(*key, *d);
            assert!(
                prior.is_none() || prior == Some(*d),
                "sample {key:?} differed across clients/nodes: {prior:?} vs {d:?}"
            );
        }
    }
    // 129 clients x (8 raw + 1 offloaded) responses, all accounted for.
    assert_eq!(observations, CLIENTS * 9);
    // Both shapes showed up: raw passthrough and the 2-op offloaded crop.
    assert!(canonical.keys().any(|&(_, ops)| ops == 0));
    assert!(canonical.keys().any(|&(_, ops)| ops == 2));
    harness.shutdown();
}
