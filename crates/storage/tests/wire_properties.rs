//! Property tests for the wire format: arbitrary protocol values roundtrip,
//! arbitrary bytes never panic the decoder.

use pipeline::{OpKind, PipelineSpec, SplitPoint};
use proptest::prelude::*;
use storage::wire::{decode_request, decode_response, encode_request, encode_response};
use storage::{FetchRequest, FetchResponse, Request, Response, SessionConfig};

fn arb_pipeline() -> impl Strategy<Value = PipelineSpec> {
    prop_oneof![
        Just(PipelineSpec::standard_train()),
        Just(PipelineSpec::standard_eval()),
        Just(PipelineSpec::augmented_train()),
        Just(PipelineSpec::new(vec![]).expect("empty pipeline is well-typed")),
        Just(
            PipelineSpec::new(vec![
                OpKind::Decode,
                OpKind::Grayscale,
                OpKind::Resize { size: 64 },
                OpKind::ToTensor,
            ])
            .expect("well-typed")
        ),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any::<u64>(), arb_pipeline()).prop_map(|(dataset_seed, pipeline)| {
            Request::Configure(SessionConfig { dataset_seed, pipeline })
        }),
        (any::<u64>(), any::<u64>(), 0usize..=6, proptest::option::of(1u8..=100)).prop_map(
            |(sample_id, epoch, split, reencode)| {
                let mut req = FetchRequest::new(sample_id, epoch, SplitPoint::new(split));
                if let Some(q) = reencode {
                    req = req.with_reencode(q);
                }
                Request::Fetch(req)
            }
        ),
        Just(Request::Shutdown),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every representable request roundtrips bit-exactly.
    #[test]
    fn requests_roundtrip(req in arb_request()) {
        let bytes = encode_request(&req);
        prop_assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    /// Decoders are total over arbitrary bytes.
    #[test]
    fn decoders_never_panic(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_request(&data);
        let _ = decode_response(&data);
    }

    /// Truncating a valid request at any point yields an error, never a
    /// wrong-but-valid message.
    #[test]
    fn truncated_requests_error(req in arb_request()) {
        let bytes = encode_request(&req);
        for len in 0..bytes.len() {
            prop_assert!(decode_request(&bytes[..len]).is_err(), "prefix {}", len);
        }
    }

    /// Error responses roundtrip with arbitrary messages (including unicode
    /// truncated to the 64 KiB cap).
    #[test]
    fn error_responses_roundtrip(
        sample_id in proptest::option::of(any::<u64>()),
        message in ".{0,200}",
    ) {
        let resp = Response::Error { sample_id, message: message.clone() };
        let bytes = encode_response(&resp);
        match decode_response(&bytes).unwrap() {
            Response::Error { sample_id: s, message: m } => {
                prop_assert_eq!(s, sample_id);
                prop_assert_eq!(m, message);
            }
            other => prop_assert!(false, "wrong decode: {:?}", other),
        }
    }

    /// Data responses preserve payload sizes for arbitrary encoded blobs.
    #[test]
    fn data_responses_preserve_len(
        sample_id in any::<u64>(),
        ops in 0u32..6,
        payload in proptest::collection::vec(any::<u8>(), 0..2000),
    ) {
        let resp = Response::Data(FetchResponse {
            sample_id,
            ops_applied: ops,
            data: pipeline::StageData::Encoded(payload.clone().into()),
        });
        let bytes = encode_response(&resp);
        match decode_response(&bytes).unwrap() {
            Response::Data(d) => {
                prop_assert_eq!(d.sample_id, sample_id);
                prop_assert_eq!(d.ops_applied, ops);
                prop_assert_eq!(d.data.byte_len(), payload.len() as u64);
            }
            other => prop_assert!(false, "wrong decode: {:?}", other),
        }
    }
}
