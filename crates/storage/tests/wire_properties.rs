//! Property tests for the wire format: arbitrary protocol values roundtrip,
//! arbitrary bytes never panic the decoder.

use imagery::{RasterImage, Rgb, Tensor};
use pipeline::{OpKind, PipelineSpec, SplitPoint, StageData};
use proptest::prelude::*;
use storage::wire::{decode_request, decode_response, encode_request, encode_response};
use storage::{FetchRequest, FetchResponse, Request, Response, SessionConfig};

fn arb_pipeline() -> impl Strategy<Value = PipelineSpec> {
    prop_oneof![
        Just(PipelineSpec::standard_train()),
        Just(PipelineSpec::standard_eval()),
        Just(PipelineSpec::augmented_train()),
        Just(PipelineSpec::new(vec![]).expect("empty pipeline is well-typed")),
        Just(
            PipelineSpec::new(vec![
                OpKind::Decode,
                OpKind::Grayscale,
                OpKind::Resize { size: 64 },
                OpKind::ToTensor,
            ])
            .expect("well-typed")
        ),
    ]
}

fn arb_stage_data() -> impl Strategy<Value = StageData> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..400).prop_map(|v| StageData::Encoded(v.into())),
        (1u32..24, 1u32..24, any::<u8>())
            .prop_map(|(w, h, g)| { StageData::Image(RasterImage::filled(w, h, Rgb::gray(g))) }),
        (1u32..24, 1u32..24, any::<u8>()).prop_map(|(w, h, g)| {
            StageData::Tensor(Tensor::from_image(&RasterImage::filled(w, h, Rgb::gray(g))))
        }),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Configured),
        (any::<u64>(), 0u32..8, arb_stage_data()).prop_map(|(sample_id, ops_applied, data)| {
            Response::Data(FetchResponse { sample_id, ops_applied, data, tier: None })
        }),
        (proptest::option::of(any::<u64>()), ".{0,200}")
            .prop_map(|(sample_id, message)| Response::Error { sample_id, message }),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any::<u64>(), arb_pipeline()).prop_map(|(dataset_seed, pipeline)| {
            Request::Configure(SessionConfig { dataset_seed, pipeline })
        }),
        (any::<u64>(), any::<u64>(), 0usize..=6, proptest::option::of(1u8..=100)).prop_map(
            |(sample_id, epoch, split, reencode)| {
                let mut req = FetchRequest::new(sample_id, epoch, SplitPoint::new(split));
                if let Some(q) = reencode {
                    req = req.with_reencode(q);
                }
                Request::Fetch(req)
            }
        ),
        Just(Request::Shutdown),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every representable request roundtrips bit-exactly.
    #[test]
    fn requests_roundtrip(req in arb_request()) {
        let bytes = encode_request(&req);
        prop_assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    /// Decoders are total over arbitrary bytes.
    #[test]
    fn decoders_never_panic(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_request(&data);
        let _ = decode_response(&data);
    }

    /// Truncating a valid request at any point yields an error, never a
    /// wrong-but-valid message.
    #[test]
    fn truncated_requests_error(req in arb_request()) {
        let bytes = encode_request(&req);
        for len in 0..bytes.len() {
            prop_assert!(decode_request(&bytes[..len]).is_err(), "prefix {}", len);
        }
    }

    /// Every representable response — configured, data carrying any payload
    /// kind (encoded bytes, raster image, float tensor), or error — decodes
    /// back to a value equal to the original.
    #[test]
    fn responses_roundtrip(resp in arb_response()) {
        let bytes = encode_response(&resp);
        prop_assert_eq!(decode_response(&bytes).unwrap(), resp);
    }

    /// Truncating a valid response at any point yields an error, never a
    /// wrong-but-valid message.
    #[test]
    fn truncated_responses_error(resp in arb_response()) {
        let bytes = encode_response(&resp);
        for len in 0..bytes.len() {
            prop_assert!(decode_response(&bytes[..len]).is_err(), "prefix {}", len);
        }
    }

    /// Flipping any bits of any single byte of a valid request frame is
    /// caught — the CRC32 trailer covers the whole body, and CRC32 detects
    /// every burst of 32 bits or fewer, so no single-byte corruption can
    /// decode as a valid (let alone different) message.
    #[test]
    fn corrupting_one_request_byte_fails_decode(
        req in arb_request(),
        pos in any::<u16>(),
        mask in 1u8..=255,
    ) {
        let mut bytes = encode_request(&req).to_vec();
        let idx = pos as usize % bytes.len();
        bytes[idx] ^= mask;
        prop_assert!(decode_request(&bytes).is_err(), "byte {} ^ {:#04x} slipped past", idx, mask);
    }

    /// The same guarantee on the response path, where corruption would
    /// otherwise silently perturb training tensors.
    #[test]
    fn corrupting_one_response_byte_fails_decode(
        resp in arb_response(),
        pos in any::<u16>(),
        mask in 1u8..=255,
    ) {
        let mut bytes = encode_response(&resp).to_vec();
        let idx = pos as usize % bytes.len();
        bytes[idx] ^= mask;
        prop_assert!(decode_response(&bytes).is_err(), "byte {} ^ {:#04x} slipped past", idx, mask);
    }

    /// Data responses roundtrip whole for arbitrary encoded blobs.
    #[test]
    fn data_responses_preserve_payloads(
        sample_id in any::<u64>(),
        ops in 0u32..6,
        payload in proptest::collection::vec(any::<u8>(), 0..2000),
    ) {
        let resp = Response::Data(FetchResponse {
            sample_id,
            ops_applied: ops,
            data: pipeline::StageData::Encoded(payload.into()),
            tier: None,
        });
        let bytes = encode_response(&resp);
        prop_assert_eq!(decode_response(&bytes).unwrap(), resp);
    }
}

/// Exhaustive companion to the sampled flip properties: every byte position
/// of a representative data frame, including the CRC trailer itself, rejects
/// a single-bit flip.
#[test]
fn every_byte_of_a_data_frame_is_flip_protected() {
    let resp = Response::Data(FetchResponse {
        sample_id: 7,
        ops_applied: 3,
        data: StageData::Encoded((0u8..=255).collect::<Vec<u8>>().into()),
        tier: None,
    });
    let bytes = encode_response(&resp).to_vec();
    for idx in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[idx] ^= 1 << bit;
            assert!(
                decode_response(&corrupt).is_err(),
                "flip of byte {idx} bit {bit} decoded successfully"
            );
        }
    }
}
