//! Offline shim for `serde_derive`: emits empty marker-trait impls.
//!
//! The companion `serde` shim defines `Serialize`/`Deserialize` as
//! marker traits, so the derive only needs the type's name. The parser
//! below handles plain (non-generic) structs and enums, which covers
//! every derived type in this workspace; generic types fail loudly.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier following the first `struct` or `enum` keyword,
/// plus whether the type has generics (unsupported).
fn type_name(input: TokenStream) -> Result<String, String> {
    let mut saw_keyword = false;
    for tree in input {
        match tree {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_keyword {
                    return Ok(s);
                }
                if s == "struct" || s == "enum" {
                    saw_keyword = true;
                }
            }
            TokenTree::Punct(p) if saw_keyword && p.as_char() == '<' => {
                return Err("generic types".into());
            }
            _ => {}
        }
    }
    Err("no struct/enum keyword found".into())
}

fn emit(input: TokenStream, template: &str) -> TokenStream {
    match type_name(input) {
        Ok(name) => template.replace("__NAME__", &name).parse().expect("valid impl tokens"),
        Err(why) => format!(
            "compile_error!(\"serde shim derive cannot handle this item ({why}); \
             extend shims/serde_derive\");"
        )
        .parse()
        .expect("valid error tokens"),
    }
}

/// Derives the shim's marker `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, "impl serde::Serialize for __NAME__ {}")
}

/// Derives the shim's marker `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, "impl<'de> serde::Deserialize<'de> for __NAME__ {}")
}
