//! Offline shim for the `bytes` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal re-implementation of the subset it uses: [`Bytes`], a cheaply
//! cloneable, immutable, contiguous byte buffer. Clones share one allocation
//! behind an [`std::sync::Arc`]; all read access goes through `Deref<Target =
//! [u8]>` exactly like the real crate.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wraps a static byte slice (copied once; the real crate borrows, but
    /// the observable API is identical).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a sub-buffer of the given range (copying; the range must be
    /// in bounds).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes { data: Arc::from(&self.data[range]) }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "..{} bytes", self.data.len())?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
    }

    #[test]
    fn slice_and_compare() {
        let a = Bytes::from_static(b"hello world");
        assert_eq!(a.slice(0..5), Bytes::from_static(b"hello"));
        assert_eq!(a.len(), 11);
        assert!(!a.is_empty());
        assert_eq!(a.to_vec(), b"hello world".to_vec());
    }
}
