//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`/`boxed`, range and tuple strategies, [`arbitrary::any`],
//! [`collection::vec`], [`option::of`], `prop_oneof!`, `Just`, a tiny
//! `".{lo,hi}"` string pattern strategy, and panic-based `prop_assert*`
//! macros.
//!
//! Differences from the real crate: inputs are generated from a
//! deterministic per-test seed (derived from the test name), and failing
//! cases are **not shrunk** — the failing case index is printed instead,
//! which together with determinism makes failures reproducible.

#![forbid(unsafe_code)]

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Configuration for a property test block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // The real default (256) is overkill for the heavier image
            // tests here; 24 keeps tier-1 fast while still probing.
            ProptestConfig { cases: 24 }
        }
    }

    /// Deterministic generator feeding the strategies (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test named `name`; fully
        /// deterministic so failures reproduce across runs.
        pub fn for_case(name: &str, case: u64) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw below `bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    trait ObjectStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> ObjectStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<V>(Box<dyn ObjectStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice between boxed alternatives (see `prop_oneof!`).
    pub struct OneOf<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        /// Builds the union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> OneOf<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    let v = self.start + u * (self.end - self.start);
                    if v >= self.end { self.start } else { v }
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// `&'static str` patterns act as string strategies. Only the
    /// `".{lo,hi}"` shape (arbitrary text with bounded char count) is
    /// recognised; anything else defaults to 0–32 chars.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_char_count(self).unwrap_or((0, 32));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            let mut out = String::with_capacity(len);
            for _ in 0..len {
                // Mostly printable ASCII with some multi-byte chars so
                // UTF-8 handling gets exercised.
                let c = if rng.below(10) < 7 {
                    char::from(b' ' + rng.below(95) as u8)
                } else {
                    char::from_u32(0x80 + rng.below(0x2f7f) as u32).unwrap_or('\u{fffd}')
                };
                out.push(c);
            }
            out
        }
    }

    fn parse_char_count(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

/// [`any`](arbitrary::any) and the [`Arbitrary`](arbitrary::Arbitrary) trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias towards edge values, which the real proptest
                    // reaches through shrinking.
                    match rng.below(16) {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => 1 as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            match rng.below(8) {
                0 => 0.0,
                1 => 1.0,
                2 => -1.0,
                _ => rng.unit_f64() * 2e6 - 1e6,
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    /// Strategy yielding arbitrary values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Generates any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec()`](fn@vec).
    pub trait SizeRange {
        /// Inclusive `(lo, hi)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// Strategy for vectors with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }
}

/// Option strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (see [`of`]).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Everything a property test file typically imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal recursion for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            for __case in 0..u64::from(__config.cases) {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __guard = $crate::__CasePrinter { name: stringify!($name), case: __case };
                $body
                std::mem::forget(__guard);
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Prints the failing case index when a property body panics; not public
/// API.
#[doc(hidden)]
pub struct __CasePrinter {
    #[doc(hidden)]
    pub name: &'static str,
    #[doc(hidden)]
    pub case: u64,
}

impl Drop for __CasePrinter {
    fn drop(&mut self) {
        // Only reached by unwinding: passing cases `mem::forget` the guard.
        eprintln!(
            "proptest shim: property `{}` failed at deterministic case #{} \
             (inputs are reproducible; no shrinking in the shim)",
            self.name, self.case
        );
    }
}

/// Asserts a property holds (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two values are equal (panics on failure, like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts two values differ (panics on failure, like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(
            a in 1u32..10,
            b in 0usize..=3,
            pair in (0u8..4, crate::option::of(1u8..=100)),
            v in crate::collection::vec(any::<u8>(), 0..5),
            s in ".{0,8}",
        ) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b <= 3);
            prop_assert!(pair.0 < 4);
            if let Some(q) = pair.1 {
                prop_assert!((1..=100).contains(&q));
            }
            prop_assert!(v.len() < 5);
            prop_assert!(s.chars().count() <= 8);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u8), Just(2u8), (3u8..5).prop_map(|v| v)]) {
            prop_assert!((1..5).contains(&x));
        }
    }

    #[test]
    fn determinism() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        let s = 0u64..1000;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
