//! Offline shim for `crossbeam`.
//!
//! Provides the [`channel`] module subset this workspace uses: bounded and
//! unbounded **multi-producer multi-consumer** channels with disconnect
//! semantics matching the real crate (receive fails once every sender is
//! gone and the queue drains; send fails once every receiver is gone). Built
//! on `Mutex` + `Condvar`; throughput is far below the real lock-free
//! implementation but behaviour is equivalent.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        capacity: Option<usize>,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; clone freely for more producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clone freely for more consumers.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The message could not be delivered because all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    /// The channel is empty and all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Outcome of a non-blocking receive attempt.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// Nothing queued right now, but senders remain.
        Empty,
        /// Nothing queued and every sender has been dropped.
        Disconnected,
    }

    /// Outcome of a bounded-wait receive attempt.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with nothing queued.
        Timeout,
        /// Nothing queued and every sender has been dropped.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded FIFO channel; `send` blocks while full.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(capacity))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1, capacity }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the value if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = st.capacity.is_some_and(|c| st.queue.len() >= c);
                if !full {
                    st.queue.push_back(value);
                    drop(st);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).expect("channel lock");
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.state.lock().expect("channel lock").queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, blocking until one arrives.
        ///
        /// # Errors
        ///
        /// Fails once the queue is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).expect("channel lock");
            }
        }

        /// Dequeues a message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] once all senders are gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel lock");
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Dequeues a message, waiting at most `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when the wait elapses,
        /// [`RecvTimeoutError::Disconnected`] once all senders are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) =
                    self.shared.not_empty.wait_timeout(st, deadline - now).expect("channel lock");
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.state.lock().expect("channel lock").queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.state.lock().expect("channel lock").senders += 1;
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.state.lock().expect("channel lock").receivers += 1;
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel lock");
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn mpmc_fifo_roundtrip() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx2.recv().unwrap(), 2);
    }

    #[test]
    fn disconnect_on_all_senders_dropped() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = channel::unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
