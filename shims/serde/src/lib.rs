//! Offline shim for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its report and spec
//! types but never serializes through serde at runtime (the wire format in
//! `storage::wire` is hand-rolled). This shim therefore reduces the traits
//! to markers and the derives to empty impls, keeping every `#[derive(...)]`
//! and trait bound compiling without the real crate. Swapping the real serde
//! back in requires no source changes.

#![forbid(unsafe_code)]

/// Marker for types that can be serialized (no-op in this shim).
pub trait Serialize {}

/// Marker for types that can be deserialized (no-op in this shim).
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl Serialize for &str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
