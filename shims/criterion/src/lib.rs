//! Offline shim for `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the API subset the
//! `bench` crate uses: [`Criterion::bench_function`], benchmark groups
//! with `sample_size`/`throughput`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. No statistical analysis, plots, or saved
//! baselines — each benchmark is warmed up once and timed over a small,
//! bounded number of iterations, reporting mean wall-clock time (and
//! throughput when configured).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup (ignored by the shim's timer; each
/// batch is one setup + one timed routine call regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch in real criterion.
    LargeInput,
    /// One setup per timed iteration.
    PerIteration,
}

/// Units for reporting throughput alongside time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    max_samples: usize,
    budget: Duration,
}

impl Bencher {
    fn new(max_samples: usize) -> Bencher {
        Bencher {
            samples: Vec::new(),
            max_samples: max_samples.max(2),
            budget: Duration::from_millis(300),
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` over fresh inputs from `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }

    fn run(&mut self, mut timed_once: impl FnMut() -> Duration) {
        // Warm-up (uncounted), then sample until the count or time budget
        // is exhausted, whichever comes first.
        let _ = timed_once();
        let began = Instant::now();
        while self.samples.len() < self.max_samples && began.elapsed() < self.budget {
            let d = timed_once();
            self.samples.push(d);
        }
        if self.samples.is_empty() {
            self.samples.push(timed_once());
        }
    }

    fn mean(&self) -> Duration {
        let total: Duration = self.samples.iter().sum();
        total / self.samples.len().max(1) as u32
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn report(id: &str, mean: Duration, samples: usize, throughput: Option<Throughput>) {
    let rate = throughput.map_or(String::new(), |t| {
        let secs = mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Bytes(b) => format!("  {:.1} MiB/s", b as f64 / secs / (1 << 20) as f64),
            Throughput::Elements(n) => format!("  {:.1} elem/s", n as f64 / secs),
        }
    });
    println!("{id:<48} time: {:>12}  ({samples} samples){rate}", format_duration(mean));
}

/// Top-level benchmark registry for one harness run.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // The real default (100 samples) makes whole-epoch benches take
        // minutes; the shim trades precision for wall-clock sanity.
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.default_sample_size);
        f(&mut b);
        report(&id, b.mean(), b.samples.len(), None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None, throughput: None }
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Reports throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.default_sample_size);
        let mut b = Bencher::new(samples);
        f(&mut b);
        report(&id, b.mean(), b.samples.len(), self.throughput);
        self
    }

    /// Ends the group (reporting is immediate in the shim; this is a
    /// no-op kept for API parity).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the harness `main`, mirroring criterion's macro. CLI
/// arguments (`--bench`, filters) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs >= 2, "warm-up plus at least one sample");
    }

    #[test]
    fn groups_apply_settings() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        let mut batches = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(|| 7u64, |x| x * 2, BatchSize::PerIteration)
        });
        group.bench_function("plain", |b| {
            b.iter(|| {
                batches += 1;
            })
        });
        group.finish();
        assert!(batches >= 2);
    }
}
