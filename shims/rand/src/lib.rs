//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the trait surface it uses: [`RngCore`], [`SeedableRng`], the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through a SplitMix64 expansion —
//! **not** stream-compatible with the real crate's ChaCha12-based `StdRng`.
//! Everything in this workspace that depends on exact streams derives them
//! from its own `AugmentRng`; `StdRng` consumers only need a deterministic,
//! statistically sound generator, which this is.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible `RngCore` operations (never produced by the
/// generators in this shim, but part of the trait signature).
pub struct Error {
    _private: (),
}

impl Error {
    /// Creates an opaque error (API parity; unused by shim generators).
    pub fn new<E: fmt::Display>(_cause: E) -> Error {
        Error { _private: () }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rand::Error")
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random generator error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fills `dest` with random bytes, reporting failure.
    ///
    /// # Errors
    ///
    /// Never fails for the generators in this shim.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator seedable from fixed-size entropy.
pub trait SeedableRng: Sized {
    /// Seed material type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it through
    /// SplitMix64 exactly once per seed byte block (deterministic across
    /// platforms).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types producible uniformly "at random" by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Scalars with a uniform range sampler.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn uniform_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn uniform_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

fn below<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    // Widening-multiply bound; bias is < 2^-64 * span, negligible here.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn uniform_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                lo + below(span, rng) as $t
            }

            fn uniform_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(span + 1, rng) as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_sint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn uniform_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                lo.wrapping_add(below(span, rng) as $t)
            }

            fn uniform_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(span + 1, rng) as $t)
            }
        }
    )*};
}

impl_uniform_sint!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn uniform_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                let v = lo + u * (hi - lo);
                // Guard against rounding up to the open bound.
                if v >= hi { lo } else { v }
            }

            fn uniform_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::uniform_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::uniform_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::draw(self) < p
    }

    /// Fills `dest` with random data (byte slices).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (xoshiro256++ in this shim; see crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0, 0, 0, 0] {
                // xoshiro must not start from the all-zero state.
                s = [0x9e37_79b9_7f4a_7c15, 0x6a09_e667_f3bc_c909, 1, 2];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&v[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(8u32..64);
            assert!((8..64).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0usize..=6);
            assert!(i <= 6);
            let n = rng.gen_range(8i64..48);
            assert!((8..48).contains(&n));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let heads = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = heads as f64 / f64::from(n);
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
