//! Cross-domain integration: SOPHON's engine planning over the **audio**
//! pipeline, proving the decision machinery is domain-agnostic (it consumes
//! only per-stage sizes and costs).

use audio::{profile_clip, AudioDatasetSpec, AudioPipeline};
use cluster::{simulate_epoch, ClusterConfig, EpochSpec, GpuModel};
use pipeline::{SampleKey, SampleProfile, SplitPoint};
use proptest::prelude::*;
use sophon::engine::{DecisionEngine, PlanningContext};
use sophon::prelude::*;

fn audio_profiles(n: u64, seed: u64) -> Vec<SampleProfile> {
    let ds = AudioDatasetSpec::speech_like(n, seed);
    let spec = AudioPipeline::standard_train();
    (0..n)
        .map(|id| profile_clip(&spec, ds.materialize(id), SampleKey::new(ds.seed, id, 0)).unwrap())
        .collect()
}

#[test]
fn audio_corpus_has_selective_structure() {
    let profiles = audio_profiles(48, 11);
    let benefiting = profiles.iter().filter(|p| p.efficiency() > 0.0).count();
    // Most clips benefit (mel features are far smaller than lossless audio),
    // and for audio the minimum usually sits at the END of the pipeline —
    // the opposite split structure from images.
    assert!(benefiting > 24, "only {benefiting} of 48 clips benefit");
    let deep_min = profiles.iter().filter(|p| p.min_stage().0 >= 4).count();
    assert!(
        deep_min * 2 > benefiting,
        "expected feature-stage minima to dominate: {deep_min} of {benefiting}"
    );
}

#[test]
fn sophon_engine_plans_audio_offloading_unchanged() {
    // 384 clips over a tight 50 Mbps link: I/O-bound, plenty of storage CPU.
    let profiles = audio_profiles(384, 7);
    let spec = AudioPipeline::standard_train();
    let config =
        ClusterConfig::paper_testbed(16).with_bandwidth(netsim::Bandwidth::from_mbps(50.0));
    let ctx = PlanningContext::new(
        &profiles,
        &spec,
        &config,
        GpuModel::Custom { seconds_per_image: 1.0 / 2000.0 },
        32,
    );
    assert!(ctx.baseline_costs().network_predominant(), "setup must be I/O-bound");
    let plan = DecisionEngine::new().plan(&ctx);
    assert!(plan.offloaded_samples() > 0);

    let summary = plan.summarize(&profiles).unwrap();
    assert!(
        summary.traffic_reduction() > 1.3,
        "audio traffic reduction {}",
        summary.traffic_reduction()
    );
    // The simulated epoch beats No-Off.
    let sophon_works = plan.to_sample_works(&profiles).unwrap();
    let baseline_works = OffloadPlan::none(profiles.len()).to_sample_works(&profiles).unwrap();
    let gpu = GpuModel::Custom { seconds_per_image: 1.0 / 2000.0 };
    let sophon = simulate_epoch(&config, &EpochSpec::new(sophon_works, 32, gpu)).unwrap();
    let baseline = simulate_epoch(&config, &EpochSpec::new(baseline_works, 32, gpu)).unwrap();
    assert!(
        sophon.epoch_seconds < baseline.epoch_seconds,
        "sophon {} vs baseline {}",
        sophon.epoch_seconds,
        baseline.epoch_seconds
    );
}

#[test]
fn audio_split_execution_is_exact_across_the_board() {
    // The same split-equivalence guarantee the image pipeline has: any
    // prefix near storage + suffix locally = unsplit execution, per epoch.
    let ds = AudioDatasetSpec::speech_like(6, 21);
    let spec = AudioPipeline::standard_train();
    for id in 0..6 {
        for epoch in [0u64, 3] {
            let key = SampleKey::new(ds.seed, id, epoch);
            let full = spec.run(ds.materialize(id), key).unwrap();
            for split in 0..=spec.len() {
                let split = SplitPoint::new(split);
                let mid = spec.run_prefix(ds.materialize(id), split, key).unwrap();
                let out = spec.run_suffix(mid, split, key).unwrap();
                assert_eq!(out, full, "clip {id} epoch {epoch} split {split:?}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Determinism, property-tested over corpus seeds: for any clip and
    /// epoch, the FNV digest of the final mel features is bit-identical
    /// no matter where the storage/compute split lands. This is the
    /// transparency invariant the golden stage-graph tests pin for
    /// imagery, checked here through [`ModalWorkload`]'s digest path.
    #[test]
    fn mel_digest_invariant_across_splits(
        seed in any::<u64>(),
        id in 0u64..2,
        epoch in 0u64..3,
    ) {
        let w = ModalWorkload::audio_standard(2, seed);
        let full = w.split_digest(id, epoch, SplitPoint::NONE).unwrap();
        for k in 1..=w.modality().op_count() {
            let d = w.split_digest(id, epoch, SplitPoint::new(k)).unwrap();
            prop_assert_eq!(d, full, "split {} diverged under seed {}", k, seed);
        }
    }

    /// The lossless audio codec roundtrips bit-exactly for arbitrary
    /// synthesized clips — the property split-point freedom rests on:
    /// shipping encoded bytes and decoding near compute must reproduce
    /// the PCM a storage-side decode would have produced.
    #[test]
    fn audio_codec_roundtrip_is_lossless(
        seed in any::<u64>(),
        tonality in 0f64..=1.0,
        secs in 0.05f64..0.5,
        rate in 4_000u32..32_000,
    ) {
        let w = audio::SynthAudioSpec::new(rate, secs).tonality(tonality).render(seed);
        let back = audio::codec::decode(&audio::codec::encode(&w)).unwrap();
        prop_assert_eq!(back, w);
    }
}
