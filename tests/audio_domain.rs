//! Cross-domain integration: SOPHON's engine planning over the **audio**
//! pipeline, proving the decision machinery is domain-agnostic (it consumes
//! only per-stage sizes and costs).

use audio::{profile_clip, AudioDatasetSpec, AudioPipeline};
use cluster::{simulate_epoch, ClusterConfig, EpochSpec, GpuModel};
use pipeline::{SampleKey, SampleProfile};
use sophon::engine::{DecisionEngine, PlanningContext};
use sophon::prelude::*;

fn audio_profiles(n: u64, seed: u64) -> Vec<SampleProfile> {
    let ds = AudioDatasetSpec::speech_like(n, seed);
    let spec = AudioPipeline::standard_train();
    (0..n)
        .map(|id| profile_clip(&spec, ds.materialize(id), SampleKey::new(ds.seed, id, 0)).unwrap())
        .collect()
}

#[test]
fn audio_corpus_has_selective_structure() {
    let profiles = audio_profiles(48, 11);
    let benefiting = profiles.iter().filter(|p| p.efficiency() > 0.0).count();
    // Most clips benefit (mel features are far smaller than lossless audio),
    // and for audio the minimum usually sits at the END of the pipeline —
    // the opposite split structure from images.
    assert!(benefiting > 24, "only {benefiting} of 48 clips benefit");
    let deep_min = profiles.iter().filter(|p| p.min_stage().0 >= 4).count();
    assert!(
        deep_min * 2 > benefiting,
        "expected feature-stage minima to dominate: {deep_min} of {benefiting}"
    );
}

#[test]
fn sophon_engine_plans_audio_offloading_unchanged() {
    // 384 clips over a tight 50 Mbps link: I/O-bound, plenty of storage CPU.
    let profiles = audio_profiles(384, 7);
    // The pipeline spec parameter exists for split bookkeeping only; reuse
    // the image PipelineSpec of the same length (the engine never reads op
    // identities).
    let nominal = pipeline::PipelineSpec::standard_train();
    let config =
        ClusterConfig::paper_testbed(16).with_bandwidth(netsim::Bandwidth::from_mbps(50.0));
    let ctx = PlanningContext::new(
        &profiles,
        &nominal,
        &config,
        GpuModel::Custom { seconds_per_image: 1.0 / 2000.0 },
        32,
    );
    assert!(ctx.baseline_costs().network_predominant(), "setup must be I/O-bound");
    let plan = DecisionEngine::new().plan(&ctx);
    assert!(plan.offloaded_samples() > 0);

    let summary = plan.summarize(&profiles).unwrap();
    assert!(
        summary.traffic_reduction() > 1.3,
        "audio traffic reduction {}",
        summary.traffic_reduction()
    );
    // The simulated epoch beats No-Off.
    let sophon_works = plan.to_sample_works(&profiles).unwrap();
    let baseline_works = OffloadPlan::none(profiles.len()).to_sample_works(&profiles).unwrap();
    let gpu = GpuModel::Custom { seconds_per_image: 1.0 / 2000.0 };
    let sophon = simulate_epoch(&config, &EpochSpec::new(sophon_works, 32, gpu)).unwrap();
    let baseline = simulate_epoch(&config, &EpochSpec::new(baseline_works, 32, gpu)).unwrap();
    assert!(
        sophon.epoch_seconds < baseline.epoch_seconds,
        "sophon {} vs baseline {}",
        sophon.epoch_seconds,
        baseline.epoch_seconds
    );
}

#[test]
fn audio_split_execution_is_exact_across_the_board() {
    // The same split-equivalence guarantee the image pipeline has: any
    // prefix near storage + suffix locally = unsplit execution, per epoch.
    let ds = AudioDatasetSpec::speech_like(6, 21);
    let spec = AudioPipeline::standard_train();
    for id in 0..6 {
        for epoch in [0u64, 3] {
            let key = SampleKey::new(ds.seed, id, epoch);
            let full = spec.run(ds.materialize(id), key).unwrap();
            for split in 0..=spec.len() {
                let split = pipeline::SplitPoint::new(split);
                let mid = spec.run_prefix(ds.materialize(id), split, key).unwrap();
                let out = spec.run_suffix(mid, split, key).unwrap();
                assert_eq!(out, full, "clip {id} epoch {epoch} split {split:?}");
            }
        }
    }
}
