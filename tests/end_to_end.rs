//! Whole-system integration tests spanning every crate: dataset →
//! profiling → SOPHON plan → (a) live execution through the real storage
//! server and throttled link, and (b) virtual-time simulation — checking
//! the two agree where they must.

use cluster::{ClusterConfig, GpuModel};
use datasets::DatasetSpec;
use netsim::Bandwidth;
use pipeline::{CostModel, PipelineSpec, SampleKey, SplitPoint, StageData};
use sophon::engine::PlanningContext;
use sophon::prelude::*;
use storage::{ObjectStore, ServerConfig, StorageServer};

const N: u64 = 12;

fn live_setup() -> (DatasetSpec, ObjectStore, PipelineSpec) {
    let ds = DatasetSpec::mini(N, 99);
    let store = ObjectStore::materialize_dataset(&ds, 0..N);
    (ds, store, PipelineSpec::standard_train())
}

#[test]
fn sophon_offloaded_tensors_equal_local_tensors() {
    // The core correctness claim: whatever split SOPHON chooses, the tensor
    // the GPU sees is bit-identical to unsplit local preprocessing.
    let (ds, store, pipeline) = live_setup();
    let model = CostModel::realistic();
    let profiles =
        sophon::profiler::stage2::profile_corpus_live(&ds, &pipeline, &model, 1).unwrap();
    let config = ClusterConfig::paper_testbed(2).with_bandwidth(Bandwidth::from_mbps(100.0));
    let ctx = PlanningContext::new(&profiles, &pipeline, &config, GpuModel::AlexNet, 4);
    let plan = SophonPolicy::without_stage1_gate().plan(&ctx).unwrap();
    assert!(plan.offloaded_samples() > 0, "mini corpus should offer offload candidates");

    let mut server = StorageServer::spawn(
        store.clone(),
        ServerConfig {
            cores: 2,
            bandwidth: Bandwidth::from_gbps(10.0),
            queue_depth: 16,
            ..ServerConfig::default()
        },
    );
    let mut client = server.client();
    client.configure(ds.seed, pipeline.clone()).unwrap();

    let epoch = 1u64;
    for id in 0..N {
        let split = plan.split(id as usize);
        let remote = client.fetch(id, epoch, split).unwrap();
        let key = SampleKey::new(ds.seed, id, epoch);
        let via_server = pipeline.run_suffix(remote, split, key).unwrap();
        let local = pipeline.run(StageData::Encoded(store.get(id).unwrap()), key).unwrap();
        assert_eq!(
            via_server.as_tensor().unwrap().to_le_bytes(),
            local.as_tensor().unwrap().to_le_bytes(),
            "sample {id} split {split:?} diverged"
        );
    }
    server.shutdown();
}

#[test]
fn wire_traffic_matches_plan_prediction() {
    // Bytes measured on the live link must match the plan's per-sample
    // `size_at(split)` prediction exactly (payload part; framing adds a
    // 17-byte header per response).
    let (ds, store, pipeline) = live_setup();
    let model = CostModel::realistic();
    let profiles =
        sophon::profiler::stage2::profile_corpus_live(&ds, &pipeline, &model, 0).unwrap();
    let plan = OffloadPlan::from_splits(
        (0..N as usize)
            .map(|i| if i % 2 == 0 { SplitPoint::new(2) } else { SplitPoint::NONE })
            .collect(),
    );
    let expected_payload: u64 =
        profiles.iter().zip(plan.iter()).map(|(p, s)| p.size_at(s.offloaded_ops())).sum();

    let mut server = StorageServer::spawn(
        store,
        ServerConfig {
            cores: 3,
            bandwidth: Bandwidth::from_gbps(10.0),
            queue_depth: 32,
            ..ServerConfig::default()
        },
    );
    let mut client = server.client();
    client.configure(ds.seed, pipeline).unwrap();
    let reqs: Vec<_> = (0..N).map(|id| (id, 0u64, plan.split(id as usize))).collect();
    let responses = client.fetch_many(&reqs).unwrap();
    assert_eq!(responses.len(), N as usize);

    let measured = server.response_bytes();
    let framing = measured - expected_payload;
    assert!(framing < N * 32, "framing overhead {framing} bytes is too large for {N} responses");
    server.shutdown();
}

#[test]
fn simulated_and_predicted_traffic_agree_at_scale() {
    let ds = DatasetSpec::openimages_like(4_096, 17);
    let scenario = Scenario::new(ds, ClusterConfig::paper_testbed(48), GpuModel::AlexNet, 256);
    for report in scenario.run_all().unwrap() {
        assert_eq!(
            report.epoch.traffic_bytes, report.summary.transfer_bytes,
            "{}: simulated vs planned traffic",
            report.policy
        );
        // The cost-vector makespan is a lower bound on the simulated epoch,
        // and a reasonably tight one for pipelined execution.
        assert!(
            report.epoch.epoch_seconds >= report.costs.makespan() * 0.98,
            "{}: epoch {} below makespan {}",
            report.policy,
            report.epoch.epoch_seconds,
            report.costs.makespan()
        );
        assert!(
            report.epoch.epoch_seconds <= report.costs.makespan() * 1.35 + 1.0,
            "{}: epoch {} far above makespan {}",
            report.policy,
            report.epoch.epoch_seconds,
            report.costs.makespan()
        );
    }
}

#[test]
fn augmentations_vary_across_epochs_through_the_server() {
    // §3.3: offloading must not freeze augmentations. Fetch the same sample
    // in two epochs with the same split; the crops must differ.
    let (ds, store, pipeline) = live_setup();
    let mut server = StorageServer::spawn(
        store,
        ServerConfig {
            cores: 1,
            bandwidth: Bandwidth::from_gbps(10.0),
            queue_depth: 8,
            ..ServerConfig::default()
        },
    );
    let mut client = server.client();
    client.configure(ds.seed, pipeline).unwrap();
    let a = client.fetch(3, 0, SplitPoint::new(2)).unwrap();
    let b = client.fetch(3, 1, SplitPoint::new(2)).unwrap();
    assert_eq!(a.byte_len(), b.byte_len());
    assert_ne!(
        a.as_image().unwrap().as_raw(),
        b.as_image().unwrap().as_raw(),
        "epoch 0 and 1 produced identical augmented crops"
    );
    server.shutdown();
}

#[test]
fn loader_over_tcp_with_retry_and_compression() {
    // The full adoption stack in one test: SOPHON plan → retrying TCP
    // transport → offloading loader with wire re-compression → collated
    // NCHW batches identical in shape to local preprocessing.
    use sophon::loader::{LoaderConfig, OffloadingLoader};
    use storage::{RetryingTransport, TcpStorageClient, TcpStorageServer};

    let ds = DatasetSpec::mini(8, 123);
    let store = ObjectStore::materialize_dataset(&ds, 0..8);
    let pipeline = PipelineSpec::standard_train();
    let model = CostModel::realistic();
    let plan = sophon::OffloadPlan::from_splits(
        ds.records().map(|r| r.analytic_profile(&pipeline, &model).best_split()).collect(),
    );

    let server = TcpStorageServer::bind(
        store,
        ServerConfig {
            cores: 2,
            bandwidth: Bandwidth::from_gbps(10.0),
            queue_depth: 16,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let transport =
        RetryingTransport::new(TcpStorageClient::connect(server.local_addr()).unwrap(), 2);
    let mut config = LoaderConfig::new(ds.seed, 3);
    config.reencode_quality = Some(85);
    let mut loader = OffloadingLoader::new(transport, pipeline, plan, config).unwrap();
    let mut total_samples = 0usize;
    let batches = loader
        .run_epoch(2, |b| {
            assert_eq!(b.shape(), (224, 224));
            total_samples += b.len();
        })
        .unwrap();
    assert_eq!(batches, 3);
    assert_eq!(total_samples, 8);
    server.shutdown();
}

#[test]
fn warm_cache_epochs_are_bit_identical_to_cold_fetches() {
    // The cache correctness claim: serving a sample's epoch-stable prefix
    // from the near-compute cache must yield bit-identical TensorBatches
    // to fetching it fresh — in *every* epoch, because the suffix (the
    // random ops) still reruns with that epoch's RNG. And caching must not
    // freeze augmentations: consecutive warm epochs still differ.
    use cache::{CachingTransport, SampleCache};
    use sophon::engine::PlanningContext;
    use sophon::ext::caching::{self, CacheSelection};
    use sophon::loader::{LoaderConfig, OffloadingLoader};

    let (ds, store, pipeline) = live_setup();
    let model = CostModel::realistic();
    let profiles =
        sophon::profiler::stage2::profile_corpus_live(&ds, &pipeline, &model, 0).unwrap();
    let config = ClusterConfig::paper_testbed(2).with_bandwidth(Bandwidth::from_mbps(100.0));
    let ctx = PlanningContext::new(&profiles, &pipeline, &config, GpuModel::AlexNet, 4);
    // Full budget: every sample is pinned at an epoch-stable split.
    let assign =
        caching::choose_cache_contents(&ctx, u64::MAX / 2, CacheSelection::EfficiencyAware);
    assert_eq!(assign.cached_samples(), N as usize);
    let (plan, _) = caching::plan_with_cache(&ctx, &assign);

    let run_epochs = |cache: Option<SampleCache>, epochs: &[u64]| {
        let mut server = StorageServer::spawn(
            store.clone(),
            ServerConfig {
                cores: 2,
                bandwidth: Bandwidth::from_gbps(10.0),
                queue_depth: 16,
                ..ServerConfig::default()
            },
        );
        let mut batches: Vec<Vec<pipeline::TensorBatch>> = Vec::new();
        let wire = match cache {
            Some(cache) => {
                let transport = CachingTransport::new(server.client(), cache);
                let mut loader = OffloadingLoader::new(
                    transport,
                    pipeline.clone(),
                    plan.clone(),
                    LoaderConfig::new(ds.seed, 4),
                )
                .unwrap();
                for &e in epochs {
                    let mut got = Vec::new();
                    loader.run_epoch(e, |b| got.push(b.clone())).unwrap();
                    batches.push(got);
                }
                server.response_bytes()
            }
            None => {
                let mut loader = OffloadingLoader::new(
                    server.client(),
                    pipeline.clone(),
                    plan.clone(),
                    LoaderConfig::new(ds.seed, 4),
                )
                .unwrap();
                for &e in epochs {
                    let mut got = Vec::new();
                    loader.run_epoch(e, |b| got.push(b.clone())).unwrap();
                    batches.push(got);
                }
                server.response_bytes()
            }
        };
        server.shutdown();
        (batches, wire)
    };

    // Cached run: epoch 0 cold (fills the cache), epochs 3 and 4 warm.
    let (cached, cached_wire) =
        run_epochs(Some(SampleCache::efficiency_aware(u64::MAX / 2)), &[0, 3, 4]);
    // Reference run without any cache, fetching epochs 3 and 4 fresh.
    let (fresh, fresh_wire) = run_epochs(None, &[3, 4]);

    assert_eq!(cached[1], fresh[0], "warm epoch 3 diverged from a fresh fetch");
    assert_eq!(cached[2], fresh[1], "warm epoch 4 diverged from a fresh fetch");
    assert_ne!(cached[1], cached[2], "caching must not freeze augmentations across epochs");
    assert!(
        cached_wire < fresh_wire,
        "two warm epochs ({cached_wire} wire bytes incl. cold fill) should move \
         less than two fresh epochs ({fresh_wire})"
    );
}

#[test]
fn caching_and_retrying_transports_compose_either_way() {
    // Compile-time check: the decorators stack in either order under the
    // loader's `FetchTransport` bound.
    use cache::CachingTransport;
    use storage::{FetchTransport, RetryingTransport, StorageClient, TcpStorageClient};

    fn assert_transport<X: FetchTransport>() {}
    assert_transport::<CachingTransport<RetryingTransport<StorageClient>>>();
    assert_transport::<RetryingTransport<CachingTransport<TcpStorageClient>>>();
}

#[test]
fn umbrella_crate_reexports_compile() {
    // The root crate's re-exports expose the whole workspace.
    let _ = sophon_repro::imagery::Rgb::BLACK;
    let _ = sophon_repro::codec::Quality::default();
    let _ = sophon_repro::pipeline::PipelineSpec::standard_train();
    let _ = sophon_repro::datasets::DatasetSpec::mini(1, 1);
    let _ = sophon_repro::netsim::Bandwidth::from_mbps(500.0);
    let _ = sophon_repro::cluster::ClusterConfig::paper_testbed(48);
    let _ = sophon_repro::storage::ObjectStore::new();
    let _ = sophon_repro::sophon::policy::standard_policies();
}
