//! End-to-end chaos: a replicated TCP fleet under an aggressive fault plan
//! (drops, delays, truncations, bit-flips, injected errors) still delivers
//! every sample, bit-identical to a fault-free run — and the injected fault
//! sequence reproduces exactly from the seed.
//!
//! CI runs this suite under several seeds via the `CHAOS_SEED` environment
//! variable (default 17); any failure reproduces locally with
//! `CHAOS_SEED=<seed> cargo test --test chaos_end_to_end`.

use std::time::Duration;

use cluster::{ClusterConfig, GpuModel};
use datasets::DatasetSpec;
use fleet::{FleetTransport, ShardMap};
use netsim::Bandwidth;
use pipeline::{CostModel, PipelineSpec, TensorBatch};
use sophon::engine::PlanningContext;
use sophon::ext::sharding;
use sophon::loader::{LoaderConfig, OffloadingLoader};
use sophon::OffloadPlan;
use storage::{
    BackoffConfig, Deadline, FaultKind, FaultPlan, FaultRecord, MultiServerHarness, ObjectStore,
    RetryingTransport, ServerConfig,
};

const N: u64 = 16;
const BATCH: usize = 4;
const NODES: usize = 3;
const REPLICATION: usize = 2;

/// Seed for the fault schedule; CI sweeps this via the environment.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(17)
}

fn server_config() -> ServerConfig {
    ServerConfig {
        cores: 2,
        bandwidth: Bandwidth::from_gbps(10.0),
        queue_depth: 16,
        ..ServerConfig::default()
    }
}

/// Runs one epoch over a live fleet, optionally under chaos, and returns
/// the collated batches plus the fleet-wide fault log.
fn run_epoch(
    store: &ObjectStore,
    map: &ShardMap,
    plan: &OffloadPlan,
    ds_seed: u64,
    chaos: Option<&FaultPlan>,
) -> (Vec<TensorBatch>, Vec<FaultRecord>) {
    let harness = match chaos {
        Some(p) => MultiServerHarness::spawn_with_chaos(
            store,
            NODES,
            server_config(),
            |id| map.owners(id),
            p,
        )
        .unwrap(),
        None => {
            MultiServerHarness::spawn(store, NODES, server_config(), |id| map.owners(id)).unwrap()
        }
    };
    // The production resilience stack per node: a finite deadline turns a
    // dropped response frame into `DeadlineExceeded`, and the retry layer
    // re-issues the batch until the fault plan's attempt bound clears it.
    // The budget is generous because offloaded fetches run the real
    // preprocessing pipeline server-side, which is slow in debug builds.
    let transports: Vec<_> = harness
        .clients()
        .unwrap()
        .into_iter()
        .map(|client| {
            RetryingTransport::with_backoff(
                client.with_deadline(Deadline::after(Duration::from_secs(2))),
                10,
                BackoffConfig::none(),
            )
        })
        .collect();
    let fleet = FleetTransport::new(transports, map.clone(), None);
    let mut loader = OffloadingLoader::new(
        fleet,
        PipelineSpec::standard_train(),
        plan.clone(),
        LoaderConfig::new(ds_seed, BATCH),
    )
    .unwrap();
    let mut batches: Vec<TensorBatch> = Vec::new();
    loader.run_epoch(0, |b| batches.push(b)).unwrap();
    let log = harness.fault_logs();
    harness.shutdown();
    (batches, log)
}

#[test]
fn aggressive_chaos_loses_nothing_and_reproduces_per_seed() {
    let seed = chaos_seed();
    let ds = DatasetSpec::mini(N, 88);
    let store = ObjectStore::materialize_dataset(&ds, 0..N);
    let pipeline = PipelineSpec::standard_train();
    let model = CostModel::realistic();
    let profiles =
        sophon::profiler::stage2::profile_corpus_live(&ds, &pipeline, &model, 0).unwrap();
    let config = ClusterConfig::paper_testbed(2).with_bandwidth(Bandwidth::from_mbps(100.0));
    let ctx = PlanningContext::new(&profiles, &pipeline, &config, GpuModel::AlexNet, BATCH);
    let map = ShardMap::new(NODES, REPLICATION, 17);
    let sharded = sharding::plan_for_fleet(&ctx, &map).unwrap();
    assert!(
        sharded.plan.offloaded_samples() > 0,
        "the chaos run must exercise offloaded fetches, not just raw reads"
    );

    // The scripted bit-flip pins at least one corruption regardless of the
    // seed's random schedule, so the CRC detection path always runs.
    let chaos = FaultPlan::aggressive(seed).script(0, 0, 0, FaultKind::BitFlip);

    let (chaos_batches, log_a) = run_epoch(&store, &map, &sharded.plan, ds.seed, Some(&chaos));
    let delivered: usize = chaos_batches.iter().map(TensorBatch::len).sum();
    assert_eq!(delivered as u64, N, "chaos lost samples (seed {seed})");
    assert!(!log_a.is_empty(), "the aggressive plan injected nothing (seed {seed})");
    assert!(
        log_a.iter().any(|r| r.sample_id == 0 && r.attempt == 0 && r.kind == "bit-flip"),
        "the scripted bit-flip never fired (seed {seed})"
    );

    // Bit-identity: chaos may delay, reorder retries, and corrupt frames,
    // but every surviving tensor must equal the fault-free run's.
    let (clean_batches, clean_log) = run_epoch(&store, &map, &sharded.plan, ds.seed, None);
    assert!(clean_log.is_empty());
    assert_eq!(chaos_batches, clean_batches, "chaos perturbed tensor contents (seed {seed})");

    // Determinism: the same seed injects the identical fault sequence.
    let (_, log_b) = run_epoch(&store, &map, &sharded.plan, ds.seed, Some(&chaos));
    assert_eq!(log_a, log_b, "fault sequence did not reproduce (seed {seed})");
}
