//! Fleet integration tests over live TCP: a corpus sharded across four
//! real storage servers with replication survives a mid-epoch node kill
//! without losing a sample or perturbing a single tensor bit, and hedged
//! fetches bound the tail latency a straggler node would otherwise impose.

use std::time::{Duration, Instant};

use cluster::{ClusterConfig, GpuModel};
use datasets::DatasetSpec;
use fleet::{FleetTransport, ShardMap};
use netsim::Bandwidth;
use pipeline::{CostModel, PipelineSpec, SplitPoint, TensorBatch};
use sophon::engine::PlanningContext;
use sophon::ext::sharding;
use sophon::loader::{LoaderConfig, OffloadingLoader};
use storage::{
    ClientError, FetchRequest, FetchResponse, FetchTransport, MultiServerHarness, ObjectStore,
    ServerConfig, StorageServer,
};

const N: u64 = 32;
const BATCH: usize = 4;

fn server_config() -> ServerConfig {
    ServerConfig {
        cores: 2,
        bandwidth: Bandwidth::from_gbps(10.0),
        queue_depth: 16,
        ..ServerConfig::default()
    }
}

#[test]
fn killed_node_mid_epoch_loses_nothing_and_tensors_match_single_node() {
    // The fleet correctness claim: 4 shards, 2-way replication, one node
    // killed while the epoch is in flight — every sample is still
    // delivered, and the collated batches are bit-identical to the same
    // plan served by a single storage node.
    let ds = DatasetSpec::mini(N, 88);
    let store = ObjectStore::materialize_dataset(&ds, 0..N);
    let pipeline = PipelineSpec::standard_train();
    let model = CostModel::realistic();
    let profiles =
        sophon::profiler::stage2::profile_corpus_live(&ds, &pipeline, &model, 0).unwrap();
    let config = ClusterConfig::paper_testbed(2).with_bandwidth(Bandwidth::from_mbps(100.0));
    let ctx = PlanningContext::new(&profiles, &pipeline, &config, GpuModel::AlexNet, BATCH);
    let map = ShardMap::new(4, 2, 17);
    let sharded = sharding::plan_for_fleet(&ctx, &map).unwrap();
    assert!(sharded.plan.offloaded_samples() > 0);

    let mut harness =
        MultiServerHarness::spawn(&store, 4, server_config(), |id| map.owners(id)).unwrap();
    let fleet = FleetTransport::new(harness.clients().unwrap(), map.clone(), None);
    let victim = map.primary(0);
    let mut loader = OffloadingLoader::new(
        fleet,
        pipeline.clone(),
        sharded.plan.clone(),
        LoaderConfig::new(ds.seed, BATCH),
    )
    .unwrap();
    let mut fleet_batches: Vec<TensorBatch> = Vec::new();
    loader
        .run_epoch(0, |b| {
            fleet_batches.push(b);
            if fleet_batches.len() == 2 {
                harness.kill(victim);
            }
        })
        .unwrap();
    assert!(!harness.is_alive(victim));
    let delivered: usize = fleet_batches.iter().map(TensorBatch::len).sum();
    assert_eq!(delivered as u64, N, "fleet lost samples across the kill");
    harness.shutdown();

    // Single-node baseline with the identical plan.
    let mut server = StorageServer::spawn(store, server_config());
    let mut single = OffloadingLoader::new(
        server.client(),
        pipeline,
        sharded.plan,
        LoaderConfig::new(ds.seed, BATCH),
    )
    .unwrap();
    let mut single_batches: Vec<TensorBatch> = Vec::new();
    single.run_epoch(0, |b| single_batches.push(b)).unwrap();
    server.shutdown();

    assert_eq!(
        fleet_batches, single_batches,
        "fleet batches diverged from the single-node baseline"
    );
}

/// A transport that sleeps before serving — a deterministic straggler.
struct SlowTransport<T> {
    inner: T,
    delay: Duration,
}

impl<T: FetchTransport> FetchTransport for SlowTransport<T> {
    fn configure(&mut self, seed: u64, pipeline: PipelineSpec) -> Result<(), ClientError> {
        self.inner.configure(seed, pipeline)
    }

    fn fetch_many_requests(
        &mut self,
        requests: &[FetchRequest],
    ) -> Result<Vec<FetchResponse>, ClientError> {
        std::thread::sleep(self.delay);
        self.inner.fetch_many_requests(requests)
    }
}

fn percentile(mut samples: Vec<Duration>, p: f64) -> Duration {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    let rank = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[rank]
}

#[test]
fn hedging_cuts_the_tail_latency_of_a_straggler_node() {
    // One of two replicated nodes is slowed by 80 ms per request. Without
    // hedging, every fetch whose primary is the straggler eats the full
    // delay; with a 10 ms hedge deadline the replica answers first and the
    // p99 drops well below the straggler's floor.
    let ds = DatasetSpec::mini(N, 21);
    let store = ObjectStore::materialize_dataset(&ds, 0..N);
    let map = ShardMap::new(2, 2, 13);
    let slow_node = map.primary(0);
    let delay = Duration::from_millis(80);

    let run = |hedge: Option<Duration>| -> (Vec<Duration>, u64) {
        let harness =
            MultiServerHarness::spawn(&store, 2, server_config(), |id| map.owners(id)).unwrap();
        let transports: Vec<SlowTransport<_>> = harness
            .clients()
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(n, client)| SlowTransport {
                inner: client,
                delay: if n == slow_node { delay } else { Duration::ZERO },
            })
            .collect();
        let mut fleet = FleetTransport::new(transports, map.clone(), hedge);
        fleet.configure(ds.seed, PipelineSpec::standard_train()).unwrap();
        let mut latencies = Vec::new();
        for id in 0..N {
            let req = [FetchRequest::new(id, 0, SplitPoint::NONE)];
            let start = Instant::now();
            let out = fleet.fetch_many_requests(&req).unwrap();
            latencies.push(start.elapsed());
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].sample_id, id);
        }
        let wins = fleet.stats().hedge_wins;
        drop(fleet);
        harness.shutdown();
        (latencies, wins)
    };

    let (unhedged, no_hedge_wins) = run(None);
    let (hedged, hedge_wins) = run(Some(Duration::from_millis(10)));
    assert_eq!(no_hedge_wins, 0);
    assert!(hedge_wins > 0, "the straggler's fetches should lose the race to the replica");

    let p99_unhedged = percentile(unhedged, 0.99);
    let p99_hedged = percentile(hedged, 0.99);
    assert!(p99_unhedged >= delay, "some fetch must have hit the straggler: p99 {p99_unhedged:?}");
    assert!(
        p99_hedged < p99_unhedged,
        "hedged p99 {p99_hedged:?} not below unhedged p99 {p99_unhedged:?}"
    );
}
