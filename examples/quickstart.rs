//! Quickstart: evaluate all five offloading policies on an OpenImages-like
//! corpus over the paper's testbed (48-core storage node, 500 Mbps link).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cluster::{ClusterConfig, GpuModel};
use datasets::DatasetSpec;
use sophon::prelude::*;

fn main() -> Result<(), SophonError> {
    let dataset = DatasetSpec::openimages_like(8_192, 42);
    println!(
        "corpus: {} ({} samples, {:.2} GB encoded)",
        dataset.name,
        dataset.len,
        dataset.total_encoded_bytes() as f64 / 1e9
    );

    let scenario = Scenario::new(dataset, ClusterConfig::paper_testbed(48), GpuModel::AlexNet, 256);

    println!(
        "\n{:<12} {:>12} {:>14} {:>10} {:>12}",
        "policy", "epoch (s)", "traffic (GB)", "offloaded", "GPU util"
    );
    let reports = scenario.run_all()?;
    let no_off_time = reports[0].epoch.epoch_seconds;
    for r in &reports {
        println!(
            "{:<12} {:>12.1} {:>14.2} {:>10} {:>11.1}%",
            r.policy,
            r.epoch.epoch_seconds,
            r.epoch.traffic_bytes as f64 / 1e9,
            r.summary.offloaded_samples,
            r.epoch.gpu_utilization() * 100.0
        );
    }
    let sophon = reports.iter().find(|r| r.policy == "sophon").expect("sophon ran");
    println!(
        "\nSOPHON: {:.2}x less traffic, {:.2}x faster than No-Off",
        reports[0].epoch.traffic_bytes as f64 / sophon.epoch.traffic_bytes as f64,
        no_off_time / sophon.epoch.epoch_seconds
    );
    Ok(())
}
