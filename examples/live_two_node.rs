//! Live two-node demo: real bytes through a real bandwidth-throttled link.
//!
//! A storage server thread pool executes offloaded preprocessing prefixes
//! over a materialized corpus and streams results through a 40 Mbps
//! [`netsim::ThrottledPipe`]; the "compute node" (this thread) finishes the
//! pipeline. Compares No-Off against the SOPHON plan on wall-clock time and
//! measured wire bytes — the end-to-end path of the paper's Figure 2.
//!
//! ```sh
//! cargo run --release --example live_two_node
//! ```

use std::time::Instant;

use cluster::{ClusterConfig, GpuModel};
use datasets::DatasetSpec;
use netsim::Bandwidth;
use pipeline::{CostModel, PipelineSpec, SampleKey, SplitPoint};
use sophon::engine::PlanningContext;
use sophon::prelude::*;
use storage::{ObjectStore, ServerConfig, StorageServer};

const SAMPLES: u64 = 48;
const EPOCH: u64 = 0;

fn run_epoch(
    ds: &DatasetSpec,
    store: ObjectStore,
    plan: &OffloadPlan,
    label: &str,
) -> Result<(f64, u64), Box<dyn std::error::Error>> {
    let pipeline = PipelineSpec::standard_train();
    let mut server = StorageServer::spawn(
        store,
        ServerConfig {
            cores: 4,
            bandwidth: Bandwidth::from_mbps(40.0),
            queue_depth: 32,
            ..ServerConfig::default()
        },
    );
    let mut client = server.client();
    client.configure(ds.seed, pipeline.clone())?;

    let start = Instant::now();
    let requests: Vec<_> = (0..SAMPLES).map(|id| (id, EPOCH, plan.split(id as usize))).collect();
    let responses = client.fetch_many(&requests)?;
    // Finish the remaining pipeline suffix locally and "feed the GPU".
    let mut tensor_bytes = 0u64;
    for resp in responses {
        let split = SplitPoint::new(resp.ops_applied as usize);
        let key = SampleKey::new(ds.seed, resp.sample_id, EPOCH);
        let tensor = pipeline.run_suffix(resp.data, split, key)?;
        tensor_bytes += tensor.byte_len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let wire = server.response_bytes();
    println!(
        "{label:<8} wall {elapsed:>6.2}s   wire {:>8.2} MB   tensors {:>8.2} MB",
        wire as f64 / 1e6,
        tensor_bytes as f64 / 1e6
    );
    server.shutdown();
    Ok((elapsed, wire))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = DatasetSpec::mini(SAMPLES, 2024);
    println!("materializing {SAMPLES} samples through the real codec...");
    let store = ObjectStore::materialize_dataset(&ds, 0..SAMPLES);
    println!("corpus: {:.1} MB encoded\n", store.total_bytes() as f64 / 1e6);

    // Plan with SOPHON over live profiles of the materialized corpus.
    let pipeline = PipelineSpec::standard_train();
    let model = CostModel::realistic();
    let profiles = sophon::profiler::stage2::profile_corpus_live(&ds, &pipeline, &model, EPOCH)?;
    let config = ClusterConfig::paper_testbed(4).with_bandwidth(Bandwidth::from_mbps(40.0));
    let ctx = PlanningContext::new(&profiles, &pipeline, &config, GpuModel::AlexNet, 8);
    let plan = SophonPolicy::without_stage1_gate().plan(&ctx)?;
    println!("SOPHON plan: offloading {} of {SAMPLES} samples\n", plan.offloaded_samples());

    let (t_none, wire_none) = run_epoch(
        &ds,
        ObjectStore::materialize_dataset(&ds, 0..SAMPLES),
        &OffloadPlan::none(SAMPLES as usize),
        "no-off",
    )?;
    let (t_sophon, wire_sophon) =
        run_epoch(&ds, ObjectStore::materialize_dataset(&ds, 0..SAMPLES), &plan, "sophon")?;

    println!(
        "\nSOPHON moved {:.2}x fewer bytes and finished {:.2}x faster (wall clock, real transfer)",
        wire_none as f64 / wire_sophon as f64,
        t_none / t_sophon
    );
    Ok(())
}
