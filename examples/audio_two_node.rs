//! Audio on the two-node topology: selective offloading, executed for
//! real, composed with the epoch-stable cache and a sharded fleet.
//!
//! Where `audio_offloading` *plans* the speech workload, this example
//! *executes* the plan clip by clip: the storage side runs each clip's
//! offloaded prefix, the intermediate crosses the (counted) wire, and the
//! compute side finishes the suffix. Every clip's final features are
//! FNV-digested and checked bit-identical to a no-offload run — the
//! transparency property that makes split choice a pure performance knob
//! — and the corpus digest is pinned so regressions in any layer
//! (codec, resampler, FFT, augmentation keying) show up as a diff here.
//!
//! On top of the split execution:
//!
//! * **cache** — audio's deterministic prefix is *two* ops deep (decode +
//!   resample; the random crop comes later), so the resampled PCM is
//!   epoch-stable and [`cache::CacheKey`] accepts it (it rejects the same
//!   split for imagery, whose prefix is one op). Warm epochs replay the
//!   cached PCM and re-run only the augmented tail, moving zero bytes.
//! * **fleet** — the same plan sharded across two storage nodes with
//!   replicated placement, each node shipping only its residual.
//!
//! ```sh
//! cargo run --release --example audio_two_node
//! ```

use audio::{codec, AudioData, AudioDatasetSpec, AudioPipeline};
use cache::{AdmissionHint, CacheKey, SampleCache};
use cluster::{ClusterConfig, GpuModel};
use netsim::Bandwidth;
use pipeline::{SplitPoint, StageData};
use sophon::engine::{DecisionEngine, PlanningContext};
use sophon::prelude::*;

const CLIPS: u64 = 192;
const SEED: u64 = 2025;
const BATCH: usize = 32;

/// Pinned FNV-1a fold of every clip's epoch-0 feature digest. Any change
/// to the audio stack's bytes — codec, resampler, window, FFT, mel, or
/// augmentation keying — lands here.
const EXPECTED_CORPUS_DIGEST: u64 = 0x9f97_6d3b_8b9b_da67;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(digest: u64, value: u64) -> u64 {
    let mut d = digest;
    for byte in value.to_le_bytes() {
        d ^= u64::from(byte);
        d = d.wrapping_mul(FNV_PRIME);
    }
    d
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = ModalWorkload::audio_standard(CLIPS, SEED);
    let ds = AudioDatasetSpec::speech_like(CLIPS, SEED);
    let pipeline = AudioPipeline::standard_train();
    println!("profiling {CLIPS} clips through the audio pipeline...");
    let profiles = workload.profiles()?;

    let gpu = GpuModel::Custom { seconds_per_image: 1.0 / 2000.0 };
    let config = ClusterConfig::paper_testbed(16).with_bandwidth(Bandwidth::from_mbps(50.0));
    let ctx = PlanningContext::new(&profiles, workload.modality(), &config, gpu, BATCH);
    let plan = DecisionEngine::new().plan(&ctx);
    let summary = plan.summarize(&profiles)?;

    // --- Execute the plan: prefix on storage, suffix on compute. -------
    let mut shipped = 0u64;
    let mut raw = 0u64;
    let mut corpus_digest = FNV_OFFSET;
    for id in 0..CLIPS {
        let split = plan.split(id as usize);
        let key = workload.sample_key(id, 0);
        let storage_out = pipeline.run_prefix(ds.materialize(id), split, key)?;
        shipped += storage_out.byte_len();
        raw += ds.materialize(id).byte_len();
        let _features = pipeline.run_suffix(storage_out, split, key)?;

        let offloaded = workload.split_digest(id, 0, split)?;
        let local = workload.split_digest(id, 0, SplitPoint::NONE)?;
        assert_eq!(offloaded, local, "clip {id}: split {split:?} changed the features");
        corpus_digest = fnv_fold(corpus_digest, offloaded);
    }
    println!(
        "\nsplit execution: {}/{CLIPS} clips offloaded; {:.1} MB shipped vs {:.1} MB raw \
         ({:.2}x); every clip bit-identical to local preprocessing",
        summary.offloaded_samples,
        shipped as f64 / 1e6,
        raw as f64 / 1e6,
        raw as f64 / shipped as f64,
    );
    println!("corpus digest: {corpus_digest:#018x}");
    assert_eq!(corpus_digest, EXPECTED_CORPUS_DIGEST, "audio stack bytes drifted");

    // --- Cache the epoch-stable prefix, replay it warm. ----------------
    // Decode + resample is deterministic; the random crop is not. So the
    // 16 kHz PCM at split 2 caches across epochs (the cache crate proves
    // this per-modality — imagery's prefix is only one op deep).
    let stable = SplitPoint::new(2);
    let mut cache = SampleCache::lru(u64::MAX / 2);
    for id in 0..CLIPS {
        let key = CacheKey::try_new(ds.seed, id, stable, None, &pipeline)?;
        let pcm = pipeline.run_prefix(ds.materialize(id), stable, workload.sample_key(id, 0))?;
        let encoded = codec::encode(pcm.as_pcm().expect("split 2 is PCM"));
        cache.insert(
            key,
            stable.offloaded_ops() as u32,
            StageData::Encoded(encoded.into()),
            AdmissionHint::from_payload_bytes(pcm.byte_len()),
        );
    }
    let mut warm_wire = 0u64;
    for id in 0..CLIPS {
        let key = CacheKey::try_new(ds.seed, id, stable, None, &pipeline)?;
        let features = match cache.get(&key) {
            Some((_, StageData::Encoded(bytes))) => {
                let pcm = AudioData::Pcm(codec::decode(&bytes)?);
                pipeline.run_suffix(pcm, stable, workload.sample_key(id, 1))?
            }
            _ => {
                warm_wire += ds.materialize(id).byte_len();
                pipeline.run(ds.materialize(id), workload.sample_key(id, 1))?
            }
        };
        let mut digest = FNV_OFFSET;
        if let AudioData::Features(s) = &features {
            for v in s.as_slice() {
                for byte in v.to_le_bytes() {
                    digest ^= u64::from(byte);
                    digest = digest.wrapping_mul(FNV_PRIME);
                }
            }
        }
        let fresh = workload.split_digest(id, 1, SplitPoint::NONE)?;
        assert_eq!(digest, fresh, "clip {id}: cached PCM replay diverged in epoch 1");
    }
    let stats = cache.stats();
    println!(
        "\ncache: {} entries ({:.1} MB of 16 kHz PCM); warm epoch hit {:.0}% and moved \
         {warm_wire} bytes over the wire",
        cache.len(),
        cache.used_bytes() as f64 / 1e6,
        stats.hit_rate() * 100.0,
    );

    // --- The same plan over a two-node storage fleet. ------------------
    let map = fleet::ShardMap::new(2, 2, SEED);
    let sharded = sophon::ext::sharding::plan_for_fleet(&ctx, &map)?;
    println!("\nfleet: 2 storage nodes, 2-way replication");
    println!("{:<8} {:>8} {:>11} {:>13}", "shard", "clips", "offloaded", "ships (MB)");
    for s in &sharded.per_shard {
        println!(
            "{:<8} {:>8} {:>11} {:>13.2}",
            format!("node{}", s.shard),
            s.samples,
            s.offloaded_samples,
            s.transfer_bytes as f64 / 1e6,
        );
    }
    let fleet_bytes: u64 = sharded.per_shard.iter().map(|s| s.transfer_bytes).sum();
    println!(
        "fleet ships {:.1} MB total — {:.2}x under raw, planned per node",
        fleet_bytes as f64 / 1e6,
        raw as f64 / fleet_bytes as f64,
    );
    Ok(())
}
