//! Multi-tenant extension demo: split a storage node's cores among three
//! concurrent training jobs by marginal epoch-time gain.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use cluster::{ClusterConfig, GpuModel};
use datasets::DatasetSpec;
use pipeline::{CostModel, PipelineSpec};
use sophon::ext::multitenant::{allocate_storage_cores, TenantJob};

fn job(name: &str, ds: DatasetSpec, gpu: GpuModel) -> TenantJob {
    let pipeline = PipelineSpec::standard_train();
    let model = CostModel::realistic();
    let profiles = ds.records().map(|r| r.analytic_profile(&pipeline, &model)).collect();
    TenantJob {
        name: name.to_string(),
        profiles,
        pipeline,
        gpu,
        batch_size: 256,
        config: ClusterConfig::paper_testbed(0),
    }
}

fn main() -> Result<(), sophon::SophonError> {
    let jobs = vec![
        job("vision-alexnet", DatasetSpec::openimages_like(4_096, 1), GpuModel::AlexNet),
        job("vision-resnet18", DatasetSpec::openimages_like(4_096, 2), GpuModel::ResNet18),
        job("vision-resnet50", DatasetSpec::imagenet_like(4_096, 3), GpuModel::ResNet50),
    ];
    let budget = 16;
    println!("allocating {budget} storage cores among {} jobs...\n", jobs.len());
    let allocations = allocate_storage_cores(&jobs, budget)?;
    println!(
        "{:<18} {:>6} {:>14} {:>14} {:>9}",
        "job", "cores", "baseline (s)", "with plan (s)", "speedup"
    );
    for (alloc, plan) in &allocations {
        println!(
            "{:<18} {:>6} {:>14.1} {:>14.1} {:>8.2}x   ({} samples offloaded)",
            alloc.name,
            alloc.cores,
            alloc.baseline_epoch_seconds,
            alloc.predicted_epoch_seconds,
            alloc.baseline_epoch_seconds / alloc.predicted_epoch_seconds,
            plan.offloaded_samples(),
        );
    }
    let used: usize = allocations.iter().map(|(a, _)| a.cores).sum();
    println!("\ncores used: {used}/{budget} (the scheduler stops at diminishing returns)");

    // Joint cores + egress-bandwidth allocation (the cluster-level view:
    // many jobs share one egress pipe).
    println!("\njoint allocation of 16 cores + 2 Gbps egress (100 Mbps units):");
    let joint = sophon::ext::multitenant::allocate_cores_and_bandwidth(&jobs, 16, 2_000e6, 100e6)?;
    println!("{:<18} {:>6} {:>12} {:>14}", "job", "cores", "bandwidth", "epoch (s)");
    for a in &joint {
        println!(
            "{:<18} {:>6} {:>9.0} Mbps {:>14.1}",
            a.name,
            a.cores,
            a.bandwidth_bps / 1e6,
            a.predicted_epoch_seconds
        );
    }
    Ok(())
}
