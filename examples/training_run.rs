//! Multi-epoch training runs: SOPHON's un-offloaded profiling epoch (its
//! stage-2 profiler runs "on the fly" during epoch 0) amortized over a
//! 50-epoch job, versus every baseline.
//!
//! ```sh
//! cargo run --release --example training_run
//! ```

use cluster::{ClusterConfig, GpuModel};
use datasets::DatasetSpec;
use sophon::policy::standard_policies;
use sophon::prelude::*;

fn main() -> Result<(), SophonError> {
    let scenario = Scenario::new(
        DatasetSpec::openimages_like(8_192, 42),
        ClusterConfig::paper_testbed(48),
        GpuModel::AlexNet,
        256,
    );
    let epochs = 50;
    println!("50-epoch training run, OpenImages-like corpus, 48 storage cores\n");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>20}",
        "policy", "epoch 0 (s)", "steady (s)", "total (s)", "profiling overhead"
    );
    for policy in standard_policies() {
        let r = scenario.run_training(policy.as_ref(), epochs)?;
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>12.1} {:>19.2}%",
            r.policy,
            r.stats.first_epoch.epoch_seconds,
            r.stats.steady_epoch.epoch_seconds,
            r.stats.total_seconds,
            r.profiling_overhead() * 100.0
        );
    }
    println!("\nSOPHON pays one un-offloaded epoch for profiling; over 50 epochs the");
    println!("overhead is ~2% while the run finishes ~2x sooner than No-Off.");
    Ok(())
}
