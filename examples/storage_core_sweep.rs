//! Figure-4-style sweep: epoch time of every policy as the storage node's
//! preprocessing cores vary, on the OpenImages-like corpus.
//!
//! ```sh
//! cargo run --release --example storage_core_sweep
//! ```

use cluster::{ClusterConfig, GpuModel};
use datasets::DatasetSpec;
use sophon::policy::standard_policies;
use sophon::prelude::*;

fn main() -> Result<(), SophonError> {
    let dataset = DatasetSpec::openimages_like(8_192, 42);
    let policies = standard_policies();
    print!("{:<7}", "cores");
    for p in &policies {
        print!(" {:>11}", p.name());
    }
    println!();
    for cores in [0usize, 1, 2, 3, 4, 5, 8] {
        let scenario = Scenario::new(
            dataset.clone(),
            ClusterConfig::paper_testbed(cores),
            GpuModel::AlexNet,
            256,
        );
        let profiles = scenario.profiles();
        print!("{cores:<7}");
        for p in &policies {
            // A uniform-offload policy cannot run on a zero-core storage
            // node; the simulator rejects it and we print a dash.
            match scenario.run_with_profiles(p.as_ref(), &profiles) {
                Ok(report) => print!(" {:>10.1}s", report.epoch.epoch_seconds),
                Err(_) => print!(" {:>11}", "-"),
            }
        }
        println!();
    }
    println!(
        "\nShapes to observe (paper Figure 4): All-Off worst everywhere and terrible at 1 core;"
    );
    println!("Resize-Off slower than No-Off at <=2 cores; SOPHON fastest at every core count,");
    println!("with diminishing returns as cores grow.");
    Ok(())
}
