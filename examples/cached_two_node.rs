//! Live two-node demo of the near-compute sample cache.
//!
//! Real bytes, real codec, real bandwidth-throttled link: a storage server
//! streams a mini corpus to a loader whose transport is wrapped in a
//! [`cache::CachingTransport`] holding ~30% of the corpus. Epoch 0 runs
//! cold (every sample crosses the wire, the cache fills); later epochs run
//! warm, fetching only the uncached residual. Two cache configurations are
//! compared at the same budget:
//!
//! * **LRU** — admit everything, evict the coldest (arrival-order
//!   selection in the planner);
//! * **efficiency-aware** — admission ranked by wire bytes saved per cache
//!   byte spent, seeded with the decision engine's per-sample hints.
//!
//! The efficiency-aware cache ends each warm epoch with less residual
//! wire traffic than LRU at the same budget — the cache-aware analogue of
//! SOPHON's data-selective offloading argument.
//!
//! ```sh
//! cargo run --release --example cached_two_node
//! ```

use cache::{AdmissionHint, CachingTransport, SampleCache};
use cluster::{ClusterConfig, GpuModel};
use datasets::DatasetSpec;
use netsim::Bandwidth;
use pipeline::{CostModel, PipelineSpec, SampleProfile};
use sophon::engine::PlanningContext;
use sophon::ext::caching::{self, CacheSelection};
use sophon::loader::{LoaderConfig, OffloadingLoader};
use sophon::OffloadPlan;
use storage::{ObjectStore, ServerConfig, StorageServer};

const SAMPLES: u64 = 48;
const BATCH: usize = 8;
const WARM_EPOCHS: u64 = 2;

struct CacheRun {
    label: &'static str,
    cold_wire: u64,
    warm_wire: u64,
    hit_rate: f64,
    cached_entries: usize,
}

fn run_with_cache(
    ds: &DatasetSpec,
    profiles: &[SampleProfile],
    plan: &OffloadPlan,
    cache: SampleCache,
    hints: bool,
    label: &'static str,
) -> Result<CacheRun, Box<dyn std::error::Error>> {
    let pipeline = PipelineSpec::standard_train();
    let store = ObjectStore::materialize_dataset(ds, 0..SAMPLES);
    let server = StorageServer::spawn(
        store,
        ServerConfig {
            cores: 4,
            bandwidth: Bandwidth::from_mbps(40.0),
            queue_depth: 32,
            ..ServerConfig::default()
        },
    );
    let mut server = server;

    let mut transport = CachingTransport::new(server.client(), cache);
    if hints {
        transport.set_hints(profiles.iter().enumerate().map(|(i, p)| {
            let shipped = p.size_at(plan.split(i).offloaded_ops());
            (p.sample_id, AdmissionHint { saved_bytes: shipped, efficiency: p.efficiency() })
        }));
    }
    let mut loader = OffloadingLoader::new(
        transport,
        pipeline,
        plan.clone(),
        LoaderConfig::new(ds.seed, BATCH),
    )?;

    // Cold epoch: everything crosses the wire, the cache fills.
    loader.run_epoch(0, |_| {})?;
    let cold_wire = server.response_bytes();

    // Warm epochs: only the uncached residual is fetched.
    for epoch in 1..=WARM_EPOCHS {
        loader.run_epoch(epoch, |_| {})?;
    }
    let warm_wire = (server.response_bytes() - cold_wire) / WARM_EPOCHS;

    let stats = loader.transport().cache_stats();
    let run = CacheRun {
        label,
        cold_wire,
        warm_wire,
        hit_rate: stats.hit_rate(),
        cached_entries: loader.transport().cache().len(),
    };
    server.shutdown();
    Ok(run)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = DatasetSpec::mini(SAMPLES, 2024);
    println!("materializing {SAMPLES} samples through the real codec...");
    let store = ObjectStore::materialize_dataset(&ds, 0..SAMPLES);
    let corpus_bytes = store.total_bytes();
    let budget = corpus_bytes * 30 / 100;
    println!(
        "corpus: {:.1} MB encoded; cache budget {:.1} MB (30%)\n",
        corpus_bytes as f64 / 1e6,
        budget as f64 / 1e6
    );

    let pipeline = PipelineSpec::standard_train();
    let model = CostModel::realistic();
    let profiles = sophon::profiler::stage2::profile_corpus_live(&ds, &pipeline, &model, 0)?;
    let config = ClusterConfig::paper_testbed(4).with_bandwidth(Bandwidth::from_mbps(40.0));
    let ctx = PlanningContext::new(&profiles, &pipeline, &config, GpuModel::AlexNet, BATCH);

    // Plan once per selection policy; the plan pins cached samples at
    // their cached (epoch-stable) split so every warm fetch is a hit.
    let lru_assign = caching::choose_cache_contents(&ctx, budget, CacheSelection::Arrival);
    let (lru_plan, _) = caching::plan_with_cache(&ctx, &lru_assign);
    let eff_assign = caching::choose_cache_contents(&ctx, budget, CacheSelection::EfficiencyAware);
    let (eff_plan, _) = caching::plan_with_cache(&ctx, &eff_assign);
    println!(
        "planner pinned {} (lru) vs {} (efficiency-aware) of {SAMPLES} samples\n",
        lru_assign.cached_samples(),
        eff_assign.cached_samples()
    );

    let lru = run_with_cache(&ds, &profiles, &lru_plan, SampleCache::lru(budget), false, "lru")?;
    let eff = run_with_cache(
        &ds,
        &profiles,
        &eff_plan,
        SampleCache::efficiency_aware(budget),
        true,
        "efficiency",
    )?;

    println!(
        "{:<12} {:>14} {:>16} {:>10} {:>9}",
        "cache", "cold wire (MB)", "warm wire (MB)", "hit rate", "entries"
    );
    for run in [&lru, &eff] {
        println!(
            "{:<12} {:>14.2} {:>16.2} {:>9.1}% {:>9}",
            run.label,
            run.cold_wire as f64 / 1e6,
            run.warm_wire as f64 / 1e6,
            run.hit_rate * 100.0,
            run.cached_entries
        );
    }
    println!(
        "\nefficiency-aware admission cut residual warm traffic {:.2}x vs LRU at the same budget",
        lru.warm_wire as f64 / eff.warm_wire.max(1) as f64
    );
    Ok(())
}
