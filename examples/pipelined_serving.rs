//! Pipelined, multiplexed serving on one TCP connection.
//!
//! One storage server, one client socket. The same batch of fetches runs
//! twice: serially (await each response before submitting the next — the
//! pre-multiplexing protocol) and pipelined (the whole batch submitted in
//! one batched write, responses claimed out of order by request id).
//!
//! ```sh
//! cargo run --release --example pipelined_serving
//! ```

use std::time::Instant;

use datasets::DatasetSpec;
use netsim::Bandwidth;
use pipeline::{PipelineSpec, SplitPoint};
use storage::{FetchRequest, ObjectStore, ServerConfig, TcpStorageClient, TcpStorageServer};

const SAMPLES: u64 = 16;
const FETCHES: usize = 96;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = DatasetSpec::mini(SAMPLES, 512);
    println!("materializing {SAMPLES} samples...");
    let store = ObjectStore::materialize_dataset(&ds, 0..SAMPLES);
    let server = TcpStorageServer::bind(
        store,
        ServerConfig {
            cores: 4,
            bandwidth: Bandwidth::from_gbps(10.0),
            queue_depth: 64,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )?;
    let mut client = TcpStorageClient::connect(server.local_addr())?;
    client.configure(ds.seed, PipelineSpec::standard_train())?;
    let requests: Vec<FetchRequest> =
        (0..FETCHES).map(|i| FetchRequest::new(i as u64 % SAMPLES, 0, SplitPoint::NONE)).collect();

    // Serial: one exchange in flight, a full round trip per sample.
    let start = Instant::now();
    for req in &requests {
        client.fetch_request(*req)?;
    }
    let serial = start.elapsed();

    // Pipelined: every request on the wire before the first await; the
    // odd ids are claimed first to show muxing is by id, not arrival.
    let start = Instant::now();
    let ids = client.submit_all(&requests)?;
    println!("submitted {} fetches in one write, {} in flight", ids.len(), client.in_flight());
    for id in ids.iter().skip(1).step_by(2).chain(ids.iter().step_by(2)) {
        client.await_response(*id)?;
    }
    let pipelined = start.elapsed();

    let rps = |d: std::time::Duration| FETCHES as f64 / d.as_secs_f64();
    println!("serial    {serial:>8.2?}   {:>7.0} req/s", rps(serial));
    println!("pipelined {pipelined:>8.2?}   {:>7.0} req/s", rps(pipelined));
    println!("speedup   {:>8.2}x", serial.as_secs_f64() / pipelined.as_secs_f64());
    server.shutdown();
    Ok(())
}
