//! SOPHON on a second domain: audio.
//!
//! Speech-like clips stored as Rice-coded lossless audio, preprocessed with
//! Decode → Resample → RandomCrop → MelSpectrogram → Normalize. The mel
//! features are far *smaller* than the PCM, so — unlike images — the
//! per-clip minimum usually sits at the **end** of the pipeline and SOPHON
//! offloads the whole front-end (quiet tonal clips, which compress below
//! their feature size, are the keep-raw exception — see the audio crate's
//! tests). Same engine, opposite split structure.
//!
//! ```sh
//! cargo run --release --example audio_offloading
//! ```

use audio::{profile_clip, AudioDatasetSpec, AudioPipeline};
use cluster::{simulate_epoch, ClusterConfig, EpochSpec, GpuModel};
use netsim::Bandwidth;
use pipeline::SampleKey;
use sophon::engine::{DecisionEngine, PlanningContext};
use sophon::prelude::*;

const CLIPS: u64 = 256;

fn main() -> Result<(), SophonError> {
    let ds = AudioDatasetSpec::speech_like(CLIPS, 2025);
    let spec = AudioPipeline::standard_train();
    println!("profiling {CLIPS} clips through the audio pipeline...");
    let profiles: Vec<_> = (0..CLIPS)
        .map(|id| {
            profile_clip(&spec, ds.materialize(id), SampleKey::new(ds.seed, id, 0))
                .expect("clips profile cleanly")
        })
        .collect();

    let raw: u64 = profiles.iter().map(|p| p.raw_bytes).sum();
    let benefiting = profiles.iter().filter(|p| p.efficiency() > 0.0).count();
    let tail_min = profiles.iter().filter(|p| p.min_stage().0 >= 4).count();
    println!(
        "corpus: {:.1} MB encoded; {benefiting}/{CLIPS} clips benefit from offloading, \
         {tail_min} of them at the feature stage\n",
        raw as f64 / 1e6
    );

    let gpu = GpuModel::Custom { seconds_per_image: 1.0 / 2000.0 };
    let config = ClusterConfig::paper_testbed(16).with_bandwidth(Bandwidth::from_mbps(50.0));
    let ctx = PlanningContext::new(&profiles, &spec, &config, gpu, 32);
    let plan = DecisionEngine::new().plan(&ctx);
    let summary = plan.summarize(&profiles)?;

    let run = |plan: &OffloadPlan| -> Result<cluster::EpochStats, SophonError> {
        let works = plan.to_sample_works(&profiles)?;
        Ok(simulate_epoch(&config, &EpochSpec::new(works, 32, gpu))?)
    };
    let baseline = run(&OffloadPlan::none(profiles.len()))?;
    let sophon = run(&plan)?;

    println!("{:<10} {:>12} {:>14}", "policy", "epoch (s)", "traffic (MB)");
    println!(
        "{:<10} {:>12.1} {:>14.1}",
        "no-off",
        baseline.epoch_seconds,
        baseline.traffic_bytes as f64 / 1e6
    );
    println!(
        "{:<10} {:>12.1} {:>14.1}",
        "sophon",
        sophon.epoch_seconds,
        sophon.traffic_bytes as f64 / 1e6
    );
    println!(
        "\n{} clips offloaded; {:.2}x less traffic, {:.2}x faster — same engine, new domain",
        summary.offloaded_samples,
        summary.traffic_reduction(),
        baseline.epoch_seconds / sophon.epoch_seconds
    );
    Ok(())
}
