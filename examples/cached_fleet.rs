//! Cache × fleet composition demo: a near-compute sample cache in front
//! of a sharded storage fleet, planned per shard on the uncached residual.
//!
//! The fleet is *scale-matched on bandwidth*: four storage nodes split the
//! trainer's 500 Mbps ingress link evenly, so sharding buys aggregate
//! preprocessing CPU (4 × 2 cores) rather than aggregate bandwidth. Under
//! that fleet each shard's `T_Net` stays as predominant as the single
//! node's while its `T_CS` guard relaxes fourfold — so the composed plan
//! offloads the residual strictly deeper than cache-only planning, and the
//! cache removes whole samples fleet-only planning still ships. The demo
//! verifies the strict inequality both ways on the same seeded corpus,
//! then simulates the full cold + warm training run.
//!
//! ```sh
//! cargo run --release --example cached_fleet
//! ```

use cluster::{simulate_fleet_cached_training, ClusterConfig, EpochSpec, GpuModel};
use datasets::DatasetSpec;
use fleet::ShardMap;
use pipeline::{CostModel, PipelineSpec, SampleProfile};
use sophon::engine::PlanningContext;
use sophon::ext::caching::{self, CacheSelection};
use sophon::ext::{fleet_caching, sharding};
use sophon::OffloadPlan;

const SAMPLES: u64 = 1_600;
const SEED: u64 = 11;
const SHARDS: usize = 4;
const REPLICATION: usize = 2;
const PLACEMENT_SEED: u64 = 7;
const STORAGE_CORES: usize = 2;
const BATCH: usize = 256;
const BUDGET_PCT: u64 = 30;
const EPOCHS: u64 = 10;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = DatasetSpec::openimages_like(SAMPLES, SEED);
    let pipeline = PipelineSpec::standard_train();
    let model = CostModel::realistic();
    let profiles: Vec<SampleProfile> =
        ds.records().map(|r| r.analytic_profile(&pipeline, &model)).collect();
    let config = ClusterConfig::paper_testbed(STORAGE_CORES);
    let ctx = PlanningContext::new(&profiles, &pipeline, &config, GpuModel::AlexNet, BATCH);
    let corpus_bytes: u64 = profiles.iter().map(|p| p.raw_bytes).sum();
    let budget = corpus_bytes * BUDGET_PCT / 100;

    let map = ShardMap::new(SHARDS, REPLICATION, PLACEMENT_SEED);
    let nodes = sharding::fleet_nodes_sharing_link(&config, SHARDS);
    println!(
        "corpus: {SAMPLES} samples, {:.2} GB | cache budget: {:.2} GB ({BUDGET_PCT}%)",
        corpus_bytes as f64 / 1e9,
        budget as f64 / 1e9,
    );
    println!(
        "fleet: {SHARDS} nodes x {STORAGE_CORES} cores, {:.0} Mbps each \
         (sharing the single node's {:.0} Mbps)\n",
        nodes[0].link_bps / 1e6,
        config.link_bps / 1e6,
    );

    // Baseline 1 — cache-only: one storage node, same cache budget.
    let assignment = caching::choose_cache_contents(&ctx, budget, CacheSelection::EfficiencyAware);
    let (cache_plan, _) = caching::plan_with_cache(&ctx, &assignment);
    let cache_works = caching::warm_sample_works(&ctx, &cache_plan, &assignment)?;
    let cache_only: u64 = cache_works.iter().map(|w| w.transfer_bytes).sum();

    // Baseline 2 — fleet-only: the same fleet hardware, no cache.
    let fleet_only =
        sharding::plan_for_fleet_with_nodes(&ctx, &map, &nodes)?.total_transfer_bytes();

    // The composition: global cache selection, then per-shard residual
    // planning against each node's own cores and link.
    let fc = fleet_caching::plan_for_fleet_with_cache(
        &ctx,
        &map,
        &nodes,
        budget,
        CacheSelection::EfficiencyAware,
    )?;
    let composed = fc.warm_transfer_bytes();

    println!("warm-epoch traffic on the same seeded corpus:");
    println!("  {:<28} {:>10.2} MB", "cache-only (1 node)", cache_only as f64 / 1e6);
    println!("  {:<28} {:>10.2} MB", "fleet-only (4 nodes)", fleet_only as f64 / 1e6);
    println!("  {:<28} {:>10.2} MB", "cache x fleet (composed)", composed as f64 / 1e6);
    assert!(composed < cache_only, "composed {composed} must beat cache-only {cache_only}");
    assert!(composed < fleet_only, "composed {composed} must beat fleet-only {fleet_only}");
    println!(
        "  -> composed saves {:.1}% vs cache-only, {:.1}% vs fleet-only\n",
        (1.0 - composed as f64 / cache_only as f64) * 100.0,
        (1.0 - composed as f64 / fleet_only as f64) * 100.0,
    );
    for s in &fc.per_shard {
        println!(
            "  node{}: {} residual ({} offloaded) + {} cached, {:.2} MB warm",
            s.residual.shard,
            s.residual.samples,
            s.residual.offloaded_samples,
            s.cached_samples,
            s.residual.transfer_bytes as f64 / 1e6,
        );
    }

    // Full training run: cold epoch fetches everything raw through the
    // fleet and fills the cache, warm epochs ship only each shard's
    // residual.
    let cold_works = OffloadPlan::none(profiles.len()).to_sample_works(&profiles)?;
    let warm_works = caching::warm_sample_works(&ctx, &fc.plan, &fc.assignment)?;
    let stats = simulate_fleet_cached_training(
        &config,
        &nodes,
        &EpochSpec::new(cold_works, BATCH, GpuModel::AlexNet),
        &EpochSpec::new(warm_works, BATCH, GpuModel::AlexNet),
        &sharding::owner_lists(&map, profiles.len()),
        &[],
        EPOCHS,
    )?;
    assert_eq!(stats.warm().total.traffic_bytes, composed, "simulation must match the plan");
    println!(
        "\n{EPOCHS}-epoch run: cold {:.1} s / {:.2} GB, warm {:.1} s / {:.2} GB \
         ({:.1}% of cold traffic avoided)",
        stats.cold().total.epoch_seconds,
        stats.cold().total.traffic_bytes as f64 / 1e9,
        stats.warm().total.epoch_seconds,
        stats.warm().total.traffic_bytes as f64 / 1e9,
        stats.warm_traffic_reduction() * 100.0,
    );
    Ok(())
}
