//! Chaos demo over **real TCP sockets**: two replicated storage nodes serve
//! an epoch while a seeded [`storage::FaultPlan`] drops, delays, truncates,
//! bit-flips, and errors their responses on the wire. The client stack —
//! per-request [`storage::Deadline`] budgets, CRC32 frame verification, and
//! a bounded [`storage::RetryingTransport`] — absorbs every fault: all
//! samples arrive, bit-identical to a fault-free run, and the injected
//! fault sequence is a pure function of the seed.
//!
//! ```sh
//! cargo run --release --example chaos_two_node [seed]
//! ```

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use cluster::{ClusterConfig, GpuModel};
use datasets::DatasetSpec;
use fleet::{FleetTransport, ShardMap};
use netsim::Bandwidth;
use pipeline::{CostModel, PipelineSpec, TensorBatch};
use sophon::engine::PlanningContext;
use sophon::ext::sharding;
use sophon::loader::{LoaderConfig, OffloadingLoader};
use storage::{
    BackoffConfig, Deadline, FaultKind, FaultPlan, MultiServerHarness, ObjectStore,
    RetryingTransport, ServerConfig,
};

const SAMPLES: u64 = 32;
const NODES: usize = 2;
const REPLICATION: usize = 2;
const BATCH: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let ds = DatasetSpec::mini(SAMPLES, 1234);
    println!("materializing {SAMPLES} samples...");
    let store = ObjectStore::materialize_dataset(&ds, 0..SAMPLES);

    let pipeline = PipelineSpec::standard_train();
    let model = CostModel::realistic();
    let profiles = sophon::profiler::stage2::profile_corpus_live(&ds, &pipeline, &model, 0)?;
    let config = ClusterConfig::paper_testbed(2).with_bandwidth(Bandwidth::from_mbps(100.0));
    let ctx = PlanningContext::new(&profiles, &pipeline, &config, GpuModel::AlexNet, BATCH);
    let map = ShardMap::new(NODES, REPLICATION, 7);
    let sharded = sharding::plan_for_fleet(&ctx, &map)?;
    println!(
        "fleet plan: {} of {SAMPLES} samples offloaded across {NODES} replicated shards",
        sharded.plan.offloaded_samples()
    );

    // The aggressive preset fires every fault kind at rates that make
    // multi-fault batches routine; the scripted bit-flip guarantees the CRC
    // path is exercised whatever the seed.
    let chaos = FaultPlan::aggressive(seed).script(0, 0, 0, FaultKind::BitFlip);
    println!("chaos: aggressive fault plan, seed {seed}\n");

    let server_config = ServerConfig {
        cores: 2,
        bandwidth: Bandwidth::from_gbps(10.0),
        queue_depth: 16,
        ..ServerConfig::default()
    };
    let run = |plan: Option<&FaultPlan>| -> Result<_, Box<dyn std::error::Error>> {
        let harness = match plan {
            Some(p) => MultiServerHarness::spawn_with_chaos(
                &store,
                NODES,
                server_config,
                |id| map.owners(id),
                p,
            )?,
            None => MultiServerHarness::spawn(&store, NODES, server_config, |id| map.owners(id))?,
        };
        // The resilience stack: a finite deadline turns dropped frames into
        // retryable timeouts; CRC32 turns corrupted frames into retryable
        // wire errors; the retry layer re-issues until the plan's attempt
        // bound lets the batch through. The budget covers server-side
        // preprocessing of a whole batch even in debug builds.
        let transports: Vec<_> = harness
            .clients()?
            .into_iter()
            .map(|c| {
                RetryingTransport::with_backoff(
                    c.with_deadline(Deadline::after(Duration::from_secs(2))),
                    10,
                    BackoffConfig::none(),
                )
            })
            .collect();
        let fleet = FleetTransport::new(transports, map.clone(), None);
        let mut loader = OffloadingLoader::new(
            fleet,
            pipeline.clone(),
            sharded.plan.clone(),
            LoaderConfig::new(ds.seed, BATCH),
        )?;
        let mut batches: Vec<TensorBatch> = Vec::new();
        let start = Instant::now();
        loader.run_epoch(0, |b| batches.push(b))?;
        let elapsed = start.elapsed();
        let log = harness.fault_logs();
        harness.shutdown();
        Ok((batches, log, elapsed))
    };

    let (chaos_batches, fault_log, chaos_elapsed) = run(Some(&chaos))?;
    let mut by_kind: BTreeMap<&str, usize> = BTreeMap::new();
    for record in &fault_log {
        *by_kind.entry(record.kind).or_insert(0) += 1;
    }
    println!("epoch under chaos: {chaos_elapsed:?}, {} faults injected:", fault_log.len());
    for (kind, count) in &by_kind {
        println!("  {kind:<10} x{count}");
    }

    let (clean_batches, _, clean_elapsed) = run(None)?;
    println!("fault-free epoch:  {clean_elapsed:?}");

    let delivered: usize = chaos_batches.iter().map(TensorBatch::len).sum();
    assert_eq!(delivered as u64, SAMPLES, "chaos lost samples");
    assert_eq!(chaos_batches, clean_batches, "chaos perturbed tensor contents");
    println!(
        "\nall {SAMPLES} samples delivered through {} injected faults; \
         batches bit-identical to the fault-free run",
        fault_log.len()
    );
    println!("rerun with the same seed to see the identical fault sequence.");
    Ok(())
}
