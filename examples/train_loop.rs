//! A complete training loop on the public API: SOPHON plans offloading,
//! an [`sophon::loader::OffloadingLoader`] streams collated NCHW batches
//! from a real TCP storage server, and a toy "model" consumes them.
//!
//! ```sh
//! cargo run --release --example train_loop
//! ```

use std::time::Instant;

use cluster::{ClusterConfig, GpuModel};
use datasets::DatasetSpec;
use netsim::Bandwidth;
use pipeline::{CostModel, PipelineSpec};
use sophon::engine::PlanningContext;
use sophon::loader::{LoaderConfig, OffloadingLoader};
use sophon::prelude::*;
use storage::{ObjectStore, ServerConfig, TcpStorageClient, TcpStorageServer};

const SAMPLES: u64 = 24;
const BATCH: usize = 8;
const EPOCHS: u64 = 2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = DatasetSpec::mini(SAMPLES, 7777);
    println!("materializing {SAMPLES} samples and starting the TCP storage server...");
    let store = ObjectStore::materialize_dataset(&ds, 0..SAMPLES);
    let server = TcpStorageServer::bind(
        store,
        ServerConfig {
            cores: 4,
            bandwidth: Bandwidth::from_mbps(80.0),
            queue_depth: 32,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )?;

    // Plan with SOPHON over live profiles.
    let pipeline = PipelineSpec::standard_train();
    let model = CostModel::realistic();
    let profiles = sophon::profiler::stage2::profile_corpus_live(&ds, &pipeline, &model, 0)?;
    let config = ClusterConfig::paper_testbed(4).with_bandwidth(Bandwidth::from_mbps(80.0));
    let ctx = PlanningContext::new(&profiles, &pipeline, &config, GpuModel::AlexNet, BATCH);
    let plan = SophonPolicy::without_stage1_gate().plan(&ctx)?;
    println!("plan: {} of {SAMPLES} samples offloaded\n", plan.offloaded_samples());

    let transport = TcpStorageClient::connect(server.local_addr())?;
    let mut loader_config = LoaderConfig::new(ds.seed, BATCH);
    loader_config.reencode_quality = Some(85); // selective compression on the wire
    let mut loader = OffloadingLoader::new(transport, pipeline, plan, loader_config)?;

    // The "model": track a running mean activation as a stand-in for a
    // forward pass, proving the batches carry real data.
    let mut running_mean = 0.0f64;
    let mut seen = 0usize;
    let start = Instant::now();
    for epoch in 0..EPOCHS {
        let mut batches = 0usize;
        loader.run_epoch(epoch, |batch| {
            let sum: f64 = batch.as_slice().iter().map(|&v| f64::from(v)).sum();
            running_mean =
                (running_mean * seen as f64 + sum) / (seen as f64 + batch.element_count() as f64);
            seen += batch.element_count();
            batches += 1;
        })?;
        println!("epoch {epoch}: {batches} batches, running activation mean {running_mean:+.4}");
    }
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "\ntrained {EPOCHS} epochs x {SAMPLES} samples in {elapsed:.2}s wall; \
         {:.2} MB over the wire",
        server.response_bytes() as f64 / 1e6
    );
    server.shutdown();
    Ok(())
}
