//! Four-node fleet demo over **real TCP sockets**, with a mid-epoch node
//! kill: the corpus is sharded across four storage servers by a
//! consistent-hash [`fleet::ShardMap`] with 2-way replication, planned
//! shard-by-shard with SOPHON, and fetched through a scatter-gather
//! [`fleet::FleetTransport`]. One node is killed while the epoch is
//! running — every sample still arrives, served by its replica, and the
//! collated batches are bit-identical to a single-node run.
//!
//! ```sh
//! cargo run --release --example fleet_four_node
//! ```

use cluster::{ClusterConfig, GpuModel};
use datasets::DatasetSpec;
use fleet::{FleetTransport, ShardMap};
use netsim::Bandwidth;
use pipeline::{CostModel, PipelineSpec, TensorBatch};
use sophon::engine::PlanningContext;
use sophon::ext::sharding;
use sophon::loader::{LoaderConfig, OffloadingLoader};
use storage::{MultiServerHarness, ObjectStore, ServerConfig, StorageServer};

const SAMPLES: u64 = 32;
const NODES: usize = 4;
const REPLICATION: usize = 2;
const BATCH: usize = 4;
const PLACEMENT_SEED: u64 = 7;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = DatasetSpec::mini(SAMPLES, 1234);
    println!("materializing {SAMPLES} samples...");
    let store = ObjectStore::materialize_dataset(&ds, 0..SAMPLES);

    // Shard-aware SOPHON plan: each shard's samples are planned against its
    // own storage node.
    let pipeline = PipelineSpec::standard_train();
    let model = CostModel::realistic();
    let profiles = sophon::profiler::stage2::profile_corpus_live(&ds, &pipeline, &model, 0)?;
    let config = ClusterConfig::paper_testbed(2).with_bandwidth(Bandwidth::from_mbps(100.0));
    let ctx = PlanningContext::new(&profiles, &pipeline, &config, GpuModel::AlexNet, BATCH);
    let map = ShardMap::new(NODES, REPLICATION, PLACEMENT_SEED);
    let sharded = sharding::plan_for_fleet(&ctx, &map)?;
    println!(
        "fleet plan: {} of {SAMPLES} samples offloaded across {NODES} shards\n",
        sharded.plan.offloaded_samples()
    );
    for s in &sharded.per_shard {
        println!(
            "  node{}: {} samples ({} offloaded), {:.1} MB planned transfer",
            s.shard,
            s.samples,
            s.offloaded_samples,
            s.transfer_bytes as f64 / 1e6
        );
    }

    // Four live TCP servers, each storing its primaries plus replicas.
    let server_config = ServerConfig {
        cores: 2,
        bandwidth: Bandwidth::from_gbps(10.0),
        queue_depth: 16,
        ..ServerConfig::default()
    };
    let mut harness = MultiServerHarness::spawn(&store, NODES, server_config, |id| map.owners(id))?;
    let transports = harness.clients()?;
    let fleet = FleetTransport::new(transports, map.clone(), None);

    // Kill one node after the second batch; replication 2 means every one
    // of its samples has a surviving replica.
    let victim = map.primary(0);
    println!("\nrunning the epoch; killing node{victim} mid-epoch...");
    let mut loader = OffloadingLoader::new(
        fleet,
        pipeline.clone(),
        sharded.plan.clone(),
        LoaderConfig::new(ds.seed, BATCH),
    )?;
    let mut fleet_batches: Vec<TensorBatch> = Vec::new();
    loader.run_epoch(0, |b| {
        fleet_batches.push(b);
        if fleet_batches.len() == 2 {
            harness.kill(victim);
        }
    })?;
    for t in harness.traffic() {
        println!("  {}: {:.2} MB in {} responses", t.label, t.bytes as f64 / 1e6, t.messages);
    }
    let total = harness.traffic_total();
    println!("  fleet total: {:.2} MB", total.bytes as f64 / 1e6);
    harness.shutdown();

    // Reference: the same plan through one storage server.
    let mut server = StorageServer::spawn(store, server_config);
    let mut single = OffloadingLoader::new(
        server.client(),
        pipeline,
        sharded.plan,
        LoaderConfig::new(ds.seed, BATCH),
    )?;
    let mut single_batches: Vec<TensorBatch> = Vec::new();
    single.run_epoch(0, |b| single_batches.push(b))?;
    server.shutdown();

    let delivered: usize = fleet_batches.iter().map(TensorBatch::len).sum();
    assert_eq!(delivered as u64, SAMPLES, "fleet lost samples");
    assert_eq!(fleet_batches, single_batches, "fleet batches diverged from single-node");
    println!(
        "\nall {SAMPLES} samples delivered despite the kill; \
         batches bit-identical to the single-node run"
    );
    Ok(())
}
