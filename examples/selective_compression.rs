//! Selective-compression extension demo: re-encode offloaded crops before
//! transfer when the CPU budget allows, stacking on SOPHON's plan.
//!
//! ```sh
//! cargo run --release --example selective_compression
//! ```

use cluster::{simulate_epoch, ClusterConfig, EpochSpec, GpuModel};
use datasets::DatasetSpec;
use pipeline::{CostModel, PipelineSpec};
use sophon::engine::{DecisionEngine, PlanningContext};
use sophon::ext::compression::CompressionExt;
use sophon::OffloadPlan;

fn main() -> Result<(), sophon::SophonError> {
    let ds = DatasetSpec::openimages_like(8_192, 42);
    let records: Vec<_> = ds.records().collect();
    let pipeline = PipelineSpec::standard_train();
    let model = CostModel::realistic();
    let profiles: Vec<_> = records.iter().map(|r| r.analytic_profile(&pipeline, &model)).collect();
    let config = ClusterConfig::paper_testbed(48);
    let ctx = PlanningContext::new(&profiles, &pipeline, &config, GpuModel::AlexNet, 256);

    let no_off = OffloadPlan::none(profiles.len());
    let plan = DecisionEngine::new().plan(&ctx);
    let (compressed_works, report) = CompressionExt::default().apply(&ctx, &records, &plan)?;

    let run =
        |works: Vec<cluster::SampleWork>| -> Result<cluster::EpochStats, sophon::SophonError> {
            Ok(simulate_epoch(&config, &EpochSpec::new(works, 256, GpuModel::AlexNet))?)
        };
    let base = run(no_off.to_sample_works(&profiles)?)?;
    let sophon = run(plan.to_sample_works(&profiles)?)?;
    let stacked = run(compressed_works)?;

    println!("{:<22} {:>12} {:>14}", "configuration", "epoch (s)", "traffic (GB)");
    for (name, s) in [("no-off", &base), ("sophon", &sophon), ("sophon+compress", &stacked)] {
        println!("{:<22} {:>12.1} {:>14.2}", name, s.epoch_seconds, s.traffic_bytes as f64 / 1e9);
    }
    println!(
        "\ncompression re-encoded {} samples, shrinking SOPHON's traffic another {:.2}x",
        report.compressed_samples,
        report.compression_gain()
    );
    println!(
        "extra CPU: {:.1} core-seconds on the storage node, {:.1} on the compute node",
        report.extra_storage_cpu_seconds, report.extra_compute_cpu_seconds
    );
    Ok(())
}
