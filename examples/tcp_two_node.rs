//! Two-node demo over **real TCP sockets**: a storage server bound to
//! 127.0.0.1 executes offloaded preprocessing prefixes; this process is the
//! compute node, fetching over the loopback with a 40 Mbps token-bucket cap
//! and finishing the pipeline locally.
//!
//! ```sh
//! cargo run --release --example tcp_two_node
//! ```

use std::time::Instant;

use cluster::{ClusterConfig, GpuModel};
use datasets::DatasetSpec;
use netsim::Bandwidth;
use pipeline::{CostModel, PipelineSpec, SampleKey, SplitPoint};
use sophon::engine::PlanningContext;
use sophon::prelude::*;
use storage::{ObjectStore, ServerConfig, TcpStorageClient, TcpStorageServer};

const SAMPLES: u64 = 32;

fn run_epoch(
    ds: &DatasetSpec,
    plan: &OffloadPlan,
    label: &str,
) -> Result<(f64, u64), Box<dyn std::error::Error>> {
    let pipeline = PipelineSpec::standard_train();
    let store = ObjectStore::materialize_dataset(ds, 0..SAMPLES);
    let server = TcpStorageServer::bind(
        store,
        ServerConfig {
            cores: 4,
            bandwidth: Bandwidth::from_mbps(40.0),
            queue_depth: 32,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )?;
    let mut client = TcpStorageClient::connect(server.local_addr())?;
    client.configure(ds.seed, pipeline.clone())?;

    let start = Instant::now();
    let requests: Vec<_> = (0..SAMPLES).map(|id| (id, 0u64, plan.split(id as usize))).collect();
    let responses = client.fetch_many(&requests)?;
    for resp in responses {
        let split = SplitPoint::new(resp.ops_applied as usize);
        let key = SampleKey::new(ds.seed, resp.sample_id, 0);
        let _tensor = pipeline.run_suffix(resp.data, split, key)?;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let wire = server.response_bytes();
    println!("{label:<8} wall {elapsed:>6.2}s   wire {:>8.2} MB", wire as f64 / 1e6);
    server.shutdown();
    Ok((elapsed, wire))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = DatasetSpec::mini(SAMPLES, 404);
    println!("materializing {SAMPLES} samples...");

    let pipeline = PipelineSpec::standard_train();
    let model = CostModel::realistic();
    let profiles = sophon::profiler::stage2::profile_corpus_live(&ds, &pipeline, &model, 0)?;
    let config = ClusterConfig::paper_testbed(4).with_bandwidth(Bandwidth::from_mbps(40.0));
    let ctx = PlanningContext::new(&profiles, &pipeline, &config, GpuModel::AlexNet, 8);
    let plan = SophonPolicy::without_stage1_gate().plan(&ctx)?;
    println!("SOPHON offloads {} of {SAMPLES} samples over TCP\n", plan.offloaded_samples());

    let (t_none, wire_none) = run_epoch(&ds, &OffloadPlan::none(SAMPLES as usize), "no-off")?;
    let (t_sophon, wire_sophon) = run_epoch(&ds, &plan, "sophon")?;
    println!(
        "\nover real sockets: {:.2}x fewer bytes, {:.2}x faster",
        wire_none as f64 / wire_sophon as f64,
        t_none / t_sophon
    );
    Ok(())
}
