//! Umbrella crate re-exporting the entire SOPHON reproduction workspace.
//!
//! See the individual crates for details:
//! [`sophon`] (the contribution), [`pipeline`], [`datasets`], [`cluster`],
//! [`storage`], [`netsim`], [`codec`], [`imagery`], and [`audio`] (the
//! second-domain demonstration).
#![forbid(unsafe_code)]

pub use audio;
pub use cluster;
pub use codec;
pub use datasets;
pub use imagery;
pub use netsim;
pub use pipeline;
pub use sophon;
pub use storage;
